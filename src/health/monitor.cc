#include "health/monitor.hh"

#include "telemetry/flight.hh"
#include "telemetry/metrics.hh"

namespace chisel::health {

const char *
healthStateName(HealthState s)
{
    switch (s) {
      case HealthState::Healthy: return "healthy";
      case HealthState::Stressed: return "stressed";
      case HealthState::Degraded: return "degraded";
      case HealthState::Quarantined: return "quarantined";
      case HealthState::Recovering: return "recovering";
      case HealthState::kCount: break;
    }
    return "?";
}

const char *
recoveryActionName(RecoveryAction a)
{
    switch (a) {
      case RecoveryAction::None: return "none";
      case RecoveryAction::PurgeDirty: return "purge_dirty";
      case RecoveryAction::Scrub: return "scrub";
      case RecoveryAction::Resetup: return "resetup";
      case RecoveryAction::SnapshotRestore: return "snapshot_restore";
      case RecoveryAction::Resize: return "resize";
      case RecoveryAction::FailedOver: return "failed_over";
      case RecoveryAction::kCount: break;
    }
    return "?";
}

// ---- Watchdog --------------------------------------------------------------

void
HealthMonitor::beginUpdate(Clock::time_point now)
{
    updateStartNs_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count(),
        std::memory_order_release);
}

void
HealthMonitor::endUpdate()
{
    updateStartNs_.store(0, std::memory_order_release);
}

bool
HealthMonitor::watchdogExpired(Clock::time_point now) const
{
    int64_t start = updateStartNs_.load(std::memory_order_acquire);
    if (start == 0)
        return false;
    int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count();
    return now_ns - start >
           std::chrono::duration_cast<std::chrono::nanoseconds>(
               config_.updateDeadline)
               .count();
}

// ---- Sampling --------------------------------------------------------------

HealthMonitor::Severity
HealthMonitor::classify(const HealthSignals &s) const
{
    // Hard losses and watchdog overruns are critical outright; the
    // occupancy signals carry warn and critical thresholds; isolated
    // fallback-tier events (overflow, retry, shed) only warn — they
    // are the ladder working as designed.
    if (s.watchdogExpired || s.slowPathRejected > 0 ||
        s.parityRecoveries > 0 ||
        s.queueOccupancy >= config_.queueCritical ||
        s.slowPathOccupancy >= config_.slowPathCritical ||
        s.spillOccupancy >= config_.spillCritical ||
        s.dirtyOccupancy >= config_.dirtyCritical)
        return Severity::Critical;
    if (s.tcamOverflows > 0 || s.setupRetries > 0 ||
        s.shedEvents > 0 ||
        s.queueOccupancy >= config_.queueWarn ||
        s.slowPathOccupancy >= config_.slowPathWarn ||
        s.spillOccupancy >= config_.spillWarn ||
        s.dirtyOccupancy >= config_.dirtyWarn)
        return Severity::Warn;
    return Severity::Ok;
}

void
HealthMonitor::transition(HealthState to)
{
    HealthState from = state();
    state_.store(static_cast<uint8_t>(to), std::memory_order_release);
    ++transitions_;
    CHISEL_FLIGHT_EVENT(HealthTransition, to,
                        static_cast<uint64_t>(from), transitions_);
    ++entered_[static_cast<size_t>(to)];
    warnStreak_ = critStreak_ = okStreak_ = stateCrit_ = 0;

    switch (to) {
      case HealthState::Stressed:
        pending_ = RecoveryAction::PurgeDirty;
        break;
      case HealthState::Degraded:
        pending_ = RecoveryAction::Scrub;
        break;
      case HealthState::Quarantined:
        pending_ = RecoveryAction::Resetup;
        quarantineRung_ = 1;
        break;
      case HealthState::Healthy:
      case HealthState::Recovering:
        pending_ = RecoveryAction::None;
        quarantineRung_ = 0;
        break;
      case HealthState::kCount:
        break;
    }
}

HealthState
HealthMonitor::sample(const HealthSignals &signals)
{
    ++samples_;
    if (signals.watchdogExpired)
        ++watchdogTrips_;

    Severity sev = classify(signals);
    warnStreak_ = sev != Severity::Ok ? warnStreak_ + 1 : 0;
    critStreak_ = sev == Severity::Critical ? critStreak_ + 1 : 0;
    okStreak_ = sev == Severity::Ok ? okStreak_ + 1 : 0;
    if (sev == Severity::Critical)
        ++stateCrit_;

    HealthState s = state();

    // A watchdog overrun is unambiguous — the update path itself is
    // wedged — so it bypasses the streak hysteresis.
    if (signals.watchdogExpired && s != HealthState::Quarantined) {
        transition(HealthState::Quarantined);
        return state();
    }

    switch (s) {
      case HealthState::Healthy:
        if (critStreak_ >= config_.degradeAfter)
            transition(HealthState::Degraded);
        else if (warnStreak_ >= config_.stressAfter)
            transition(HealthState::Stressed);
        break;
      case HealthState::Stressed:
        if (critStreak_ >= config_.degradeAfter)
            transition(HealthState::Degraded);
        else if (okStreak_ >= 1)
            transition(HealthState::Recovering);
        break;
      case HealthState::Degraded:
        if (stateCrit_ >= config_.quarantineAfter)
            transition(HealthState::Quarantined);
        else if (okStreak_ >= 1)
            transition(HealthState::Recovering);
        break;
      case HealthState::Quarantined:
        if (okStreak_ >= 1) {
            transition(HealthState::Recovering);
        } else if (stateCrit_ >= config_.quarantineAfter) {
            // Still critical after the last action: escalate to the
            // next rung (resetup, then snapshot restore; the ladder
            // then repeats from resetup rather than giving up).
            stateCrit_ = 0;
            pending_ = quarantineRung_ == 1
                           ? RecoveryAction::SnapshotRestore
                           : RecoveryAction::Resetup;
            quarantineRung_ = quarantineRung_ == 1 ? 0 : 1;
        }
        break;
      case HealthState::Recovering:
        if (critStreak_ >= config_.degradeAfter)
            transition(HealthState::Degraded);
        else if (okStreak_ >= config_.recoverAfter)
            transition(HealthState::Healthy);
        break;
      case HealthState::kCount:
        break;
    }

    // Capacity pressure runs orthogonally to the severity ladder: the
    // tables being *full* (spill/slow-path residency, setup-retry
    // exhaustion) is growth, which no scrub or purge relieves.  After
    // resizeAfter consecutive pressure samples a Resize is armed,
    // overriding whatever rung the ladder chose — growing the engine
    // also clears the symptoms the ladder was reacting to.
    bool capacity_pressure =
        signals.spillOccupancy >= config_.spillWarn ||
        signals.slowPathOccupancy >= config_.slowPathWarn ||
        signals.setupRetries > 0;
    capacityStreak_ = capacity_pressure ? capacityStreak_ + 1 : 0;
    if (capacityCooldown_ > 0) {
        --capacityCooldown_;
    } else if (config_.resizeAfter > 0 &&
               capacityStreak_ >= config_.resizeAfter) {
        capacityStreak_ = 0;
        capacityCooldown_ = config_.resizeCooldown;
        pending_ = RecoveryAction::Resize;
    }

    return state();
}

// ---- Recovery actions ------------------------------------------------------

RecoveryAction
HealthMonitor::takeAction()
{
    RecoveryAction a = pending_;
    pending_ = RecoveryAction::None;
    if (a != RecoveryAction::None)
        ++actions_[static_cast<size_t>(a)];
    return a;
}

void
HealthMonitor::actionCompleted(RecoveryAction action, bool success)
{
    CHISEL_FLIGHT_EVENT(RecoveryAction, action, success ? 1 : 0, 0);
    if (success || state() != HealthState::Quarantined)
        return;
    // A failed/skipped quarantine action arms the next rung at once
    // rather than waiting out another critical streak.
    if (action == RecoveryAction::Resetup && quarantineRung_ == 1) {
        pending_ = RecoveryAction::SnapshotRestore;
        quarantineRung_ = 0;
    } else if (action == RecoveryAction::SnapshotRestore) {
        pending_ = RecoveryAction::Resetup;
        quarantineRung_ = 1;
    }
}

void
HealthMonitor::recordFailover()
{
    ++actions_[static_cast<size_t>(RecoveryAction::FailedOver)];
    CHISEL_FLIGHT_EVENT(RecoveryAction, RecoveryAction::FailedOver, 1,
                        0);
    // A promoted standby serves immediately, but on probation: it
    // must produce recoverAfter clean samples before claiming
    // Healthy, exactly like a node leaving Quarantined.
    if (state() != HealthState::Recovering)
        transition(HealthState::Recovering);
    // transition() arms no action for Recovering; clear anything a
    // prior state left pending — the failover superseded it.
    pending_ = RecoveryAction::None;
}

// ---- Introspection ---------------------------------------------------------

uint64_t
HealthMonitor::entered(HealthState s) const
{
    return entered_[static_cast<size_t>(s)];
}

uint64_t
HealthMonitor::actionsTaken(RecoveryAction a) const
{
    return actions_[static_cast<size_t>(a)];
}

void
HealthMonitor::publish(telemetry::MetricRegistry &registry,
                       const std::string &prefix) const
{
    registry.gauge(prefix + ".state")
        .set(static_cast<double>(state_.load(std::memory_order_acquire)));
    registry.gauge(prefix + ".transitions")
        .set(static_cast<double>(transitions_));
    registry.gauge(prefix + ".samples")
        .set(static_cast<double>(samples_));
    registry.gauge(prefix + ".watchdog_trips")
        .set(static_cast<double>(watchdogTrips_));
    for (size_t i = 0; i < kHealthStateCount; ++i) {
        auto s = static_cast<HealthState>(i);
        registry.gauge(prefix + ".entered." + healthStateName(s))
            .set(static_cast<double>(entered_[i]));
    }
    for (size_t i = 1; i < kRecoveryActionCount; ++i) {
        auto a = static_cast<RecoveryAction>(i);
        registry.gauge(prefix + ".actions." + recoveryActionName(a))
            .set(static_cast<double>(actions_[i]));
    }
}

} // namespace chisel::health
