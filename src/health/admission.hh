/**
 * @file
 * Admission control for the concurrent update queue.
 *
 * ConcurrentChisel's SPSC queue decouples the BGP feed from the apply
 * path, but a feed in storm mode can outrun the control thread
 * indefinitely: post() starts failing, and the producer's only
 * options are to block or to drop — both wrong for a routing table.
 *
 * AdmissionController gives the producer a third option: *coalesce*.
 * Updates are filtered through per-class token buckets (announces and
 * withdraws meter independently) and a high/low-watermark check on
 * the queue depth.  An update that cannot be admitted is parked in a
 * staging buffer keyed by prefix; a newer update for the same prefix
 * REPLACES the staged one (last-writer-wins — an announce/withdraw
 * pair collapses to the withdraw, a superseded next-hop change
 * vanishes).  When the queue drains below the low watermark the
 * staged survivors flush out in arrival order.
 *
 * The policy is semantics-preserving by construction: per prefix, the
 * final routing state depends only on the last update, and that is
 * exactly the update the stage retains.  Nothing is ever silently
 * dropped — shedding only removes updates whose effect a later update
 * already overwrote.  The chaos harness (bench/chaos_soak.cc) audits
 * this against a trie oracle.
 *
 * Single-threaded by contract: all methods are called by the one
 * SPSC producer thread (docs/concurrency.md).
 */

#ifndef CHISEL_HEALTH_ADMISSION_HH
#define CHISEL_HEALTH_ADMISSION_HH

#include <chrono>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "concurrent/relaxed.hh"
#include "route/updates.hh"

namespace chisel::health {

/** Admission-control knobs (all deterministic except token refill). */
struct AdmissionOptions
{
    /** Master switch; disabled, offer() admits everything. */
    bool enabled = false;

    /**
     * Queue depth at which shedding (stage instead of enqueue)
     * begins; 0 derives 3/4 of the queue capacity.
     */
    size_t highWatermark = 0;

    /**
     * Queue depth at which staged updates flush back out and direct
     * enqueueing resumes; 0 derives 1/4 of the queue capacity.
     */
    size_t lowWatermark = 0;

    /**
     * Token-bucket rates per update class, in updates/second; 0
     * disables metering for that class.  Bursts up to tokenBurst are
     * admitted at line rate.
     */
    double announceTokensPerSec = 0.0;
    double withdrawTokensPerSec = 0.0;

    /** Bucket depth (maximum burst admitted without shedding). */
    double tokenBurst = 256.0;
};

/** What offer() decided for one update. */
enum class AdmissionDecision : uint8_t
{
    Enqueue,    ///< Admit now: push to the queue.
    Deferred,   ///< Parked in the staging buffer (new prefix entry).
    Coalesced,  ///< Replaced a staged update for the same prefix.
};

/**
 * Monotonic shed/coalesce statistics.  Relaxed atomics: written by
 * the producer thread only, but read from the health tick on the
 * control thread, so plain fields would race.
 */
struct AdmissionCounters
{
    concurrent::RelaxedU64 admitted;    ///< Passed straight through.
    concurrent::RelaxedU64 deferred;    ///< Parked in the stage.
    concurrent::RelaxedU64 coalesced;   ///< Overwritten in place.
    concurrent::RelaxedU64 flushed;     ///< Released to the queue.
    concurrent::RelaxedU64 shedEvents;  ///< Entries into shed mode.
};

/**
 * The producer-side admission filter.  See file comment for policy.
 */
class AdmissionController
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param options Policy knobs.
     * @param queue_capacity Capacity of the queue being protected
     *        (derives default watermarks).
     */
    AdmissionController(const AdmissionOptions &options,
                        size_t queue_capacity);

    bool enabled() const { return options_.enabled; }

    /**
     * Decide one update.  On Enqueue the caller pushes it to the
     * queue; on Deferred/Coalesced the controller holds it until
     * drain().  @p queue_depth is the current queue occupancy.
     */
    AdmissionDecision offer(const Update &update, size_t queue_depth,
                            Clock::time_point now = Clock::now());

    /**
     * Fail-fast admission probe for callers with no staging buffer —
     * the RPC front end (src/net/server.hh), which must answer
     * Overloaded *now* rather than park an update it has already
     * promised a reply for.  Refills the buckets and takes one token
     * for @p kind; @return false when the class is out of tokens
     * (counted as a deferral).  Watermarks do not apply: the caller
     * has no queue, only buckets.  Same single-caller contract as
     * offer().
     */
    bool tryAdmit(UpdateKind kind, Clock::time_point now = Clock::now());

    /**
     * Park @p update unconditionally (coalescing with any staged
     * entry for the same prefix) — the escape hatch for a push that
     * raced the queue to full.
     */
    void stage(const Update &update);

    /**
     * Release staged updates, oldest first, when the queue has
     * drained to the low watermark (or unconditionally when @p force,
     * used by flush before an audit).  At most @p room updates are
     * returned so the caller's pushes cannot fail.
     */
    std::vector<Update> drain(size_t queue_depth, size_t room,
                              bool force);

    /** Updates currently parked. */
    size_t stagedCount() const { return order_.size(); }

    /** True while the high-watermark shed mode is latched. */
    bool shedding() const { return shedding_; }

    const AdmissionCounters &counters() const { return counters_; }

    size_t highWatermark() const { return high_; }
    size_t lowWatermark() const { return low_; }

  private:
    /** Refill both buckets from elapsed wall time. */
    void refill(Clock::time_point now);

    /** Take one token for @p kind; true if the class is unmetered. */
    bool takeToken(UpdateKind kind);

    AdmissionOptions options_;
    size_t high_ = 0;
    size_t low_ = 0;
    bool shedding_ = false;

    double tokens_[2] = {0.0, 0.0};     ///< [Announce, Withdraw].
    Clock::time_point lastRefill_{};
    bool refilled_ = false;

    /** Staged updates in arrival order, with per-prefix index. */
    std::list<Update> order_;
    std::unordered_map<Prefix, std::list<Update>::iterator,
                       PrefixHasher>
        staged_;

    AdmissionCounters counters_;
};

} // namespace chisel::health

#endif // CHISEL_HEALTH_ADMISSION_HH
