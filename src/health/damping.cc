#include "health/damping.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "persist/codec.hh"

namespace chisel::health {

double
FlapDamper::decayed(const Entry &e) const
{
    if (config_.halfLifeTicks <= 0.0)
        return e.penalty;
    double dt = static_cast<double>(tick_ - e.stamp);
    return e.penalty * std::exp2(-dt / config_.halfLifeTicks);
}

double
FlapDamper::penalize(const Key128 &key)
{
    Entry &e = entries_[key];
    e.penalty = decayed(e) + config_.penaltyPerFlap;
    e.stamp = tick_;
    // Hysteresis: rise across suppressThreshold to enter, fall below
    // the (lower) reuseThreshold to leave.
    e.suppressed = e.suppressed
                       ? e.penalty > config_.reuseThreshold
                       : e.penalty > config_.suppressThreshold;
    if (entries_.size() > config_.maxEntries)
        prune();
    return e.penalty;
}

double
FlapDamper::penalty(const Key128 &key) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? 0.0 : decayed(it->second);
}

bool
FlapDamper::suppressed(const Key128 &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    double p = decayed(it->second);
    return it->second.suppressed ? p > config_.reuseThreshold
                                 : p > config_.suppressThreshold;
}

size_t
FlapDamper::suppressedCount() const
{
    size_t n = 0;
    for (const auto &[key, e] : entries_) {
        (void)e;
        if (suppressed(key))
            ++n;
    }
    return n;
}

void
FlapDamper::prune()
{
    // Sweep entries whose penalty has decayed below one unit — they
    // carry no signal any more.  If everything is still hot the map
    // may transiently exceed maxEntries; the next quiet period drains
    // it (bounded by flap-event rate, not by route count).
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (decayed(it->second) < 1.0)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
FlapDamper::saveState(persist::Encoder &enc) const
{
    enc.u64(tick_);

    std::vector<const Key128 *> keys;
    keys.reserve(entries_.size());
    for (const auto &[key, e] : entries_) {
        (void)e;
        keys.push_back(&key);
    }
    std::sort(keys.begin(), keys.end(),
              [](const Key128 *a, const Key128 *b) { return *a < *b; });

    enc.u64(entries_.size());
    for (const Key128 *key : keys) {
        const Entry &e = entries_.at(*key);
        enc.key(*key);
        enc.f64(e.penalty);
        enc.u64(e.stamp);
        enc.boolean(e.suppressed);
    }
}

void
FlapDamper::loadState(persist::Decoder &dec)
{
    tick_ = dec.u64();
    entries_.clear();
    uint64_t n = dec.count(26);
    for (uint64_t i = 0; i < n; ++i) {
        Key128 key = dec.key();
        Entry e;
        e.penalty = dec.f64();
        e.stamp = dec.u64();
        e.suppressed = dec.boolean();
        if (!(e.penalty >= 0.0) || !std::isfinite(e.penalty))
            throw persist::DecodeError("damper: penalty not finite");
        if (e.stamp > tick_)
            throw persist::DecodeError("damper: stamp after clock");
        if (!entries_.emplace(key, e).second)
            throw persist::DecodeError("damper: duplicate key");
    }
}

} // namespace chisel::health
