#include "obs/introspect.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "net/socket.hh"
#include "concurrent/concurrent_engine.hh"
#include "health/monitor.hh"
#include "replica/follower.hh"
#include "shard/sharded.hh"
#include "telemetry/flight.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/prometheus.hh"

namespace chisel::obs {

namespace {

constexpr size_t kDefaultFlightEvents = 256;
constexpr size_t kMaxRequestBytes = 4096;

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 503: return "Service Unavailable";
      default: return "Error";
    }
}

/** ?n=<count> from a query string; @p fallback when absent/garbled. */
size_t
parseCountParam(const std::string &query, size_t fallback)
{
    size_t pos = 0;
    while (pos < query.size()) {
        size_t amp = query.find('&', pos);
        std::string param = query.substr(
            pos, amp == std::string::npos ? std::string::npos
                                          : amp - pos);
        if (param.size() > 2 && param.compare(0, 2, "n=") == 0) {
            size_t value = 0;
            bool digits = false;
            for (size_t i = 2; i < param.size(); ++i) {
                if (param[i] < '0' || param[i] > '9')
                    return fallback;
                value = value * 10 + static_cast<size_t>(param[i] - '0');
                digits = true;
                if (value > (size_t(1) << 30))
                    break;
            }
            if (digits)
                return value;
        }
        if (amp == std::string::npos)
            break;
        pos = amp + 1;
    }
    return fallback;
}

} // anonymous namespace

IntrospectionServer::~IntrospectionServer()
{
    stop();
}

bool
IntrospectionServer::start(uint16_t port)
{
    if (running()) {
        warn("introspection server already running on port " +
             std::to_string(port_));
        return false;
    }
    int fd = net::listenLoopback(port, 16, &port_);
    if (fd < 0) {
        warn("introspection: cannot listen on 127.0.0.1:" +
             std::to_string(port) + ": " +
             std::string(std::strerror(errno)));
        return false;
    }

    stopRequested_.store(false, std::memory_order_release);
    listenFd_ = fd;
    thread_ = std::thread([this] { serveLoop(); });
    inform("introspection server listening on 127.0.0.1:" +
           std::to_string(port_));
    return true;
}

void
IntrospectionServer::stop()
{
    if (!running())
        return;
    stopRequested_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    port_ = 0;
}

void
IntrospectionServer::serveLoop()
{
    while (!stopRequested_.load(std::memory_order_acquire)) {
        int conn = net::acceptOn(listenFd_, 100, /*nodelay=*/false);
        if (conn < 0)
            continue;
        serveConnection(conn);
        net::closeFd(conn);
    }
}

void
IntrospectionServer::serveConnection(int fd)
{
    // One bounded read burst is enough for any GET we serve; a
    // straggling request header past the first packet just means the
    // target was already parseable or the request is oversized.
    std::string request;
    char buf[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n") == std::string::npos) {
        int r = net::recvSome(fd, buf, sizeof(buf), 500);
        if (r <= 0)
            break;
        request.append(buf, static_cast<size_t>(r));
    }
    size_t eol = request.find("\r\n");
    if (eol == std::string::npos)
        eol = request.size();
    std::istringstream line(request.substr(0, eol));
    std::string method, target;
    line >> method >> target;

    IntrospectResponse res = handle(method, target);
    std::ostringstream out;
    out << "HTTP/1.0 " << res.status << " "
        << statusReason(res.status) << "\r\n"
        << "Content-Type: " << res.contentType << "\r\n"
        << "Content-Length: " << res.body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << res.body;
    std::string reply = out.str();
    net::sendAll(fd, reply.data(), reply.size());
}

IntrospectResponse
IntrospectionServer::handle(const std::string &method,
                            const std::string &target) const
{
    if (method != "GET")
        return {405, "text/plain; charset=utf-8",
                "only GET is supported\n"};
    std::string path = target;
    std::string query;
    if (size_t q = target.find('?'); q != std::string::npos) {
        path = target.substr(0, q);
        query = target.substr(q + 1);
    }
    if (path == "/" || path.empty())
        return index();
    if (path == "/metrics")
        return metrics();
    if (path == "/healthz")
        return healthz();
    if (path == "/vars")
        return vars();
    if (path == "/flight")
        return flight(query);
    return {404, "text/plain; charset=utf-8",
            "unknown endpoint " + path + "\n"};
}

IntrospectResponse
IntrospectionServer::index() const
{
    return {200, "text/plain; charset=utf-8",
            "chisel introspection\n"
            "  /metrics  Prometheus text exposition\n"
            "  /healthz  health state + engine gauges (JSON)\n"
            "  /vars     metrics JSON snapshot\n"
            "  /flight   recent flight events (JSON, ?n=<count>)\n"};
}

IntrospectResponse
IntrospectionServer::metrics() const
{
    const telemetry::MetricRegistry *registry =
        registry_.load(std::memory_order_acquire);
    if (registry == nullptr)
        return {404, "text/plain; charset=utf-8",
                "no metric registry attached\n"};
    std::ostringstream os;
    telemetry::writePrometheus(*registry, os);
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            os.str()};
}

IntrospectResponse
IntrospectionServer::healthz() const
{
    const concurrent::ConcurrentChisel *engine =
        engine_.load(std::memory_order_acquire);
    const shard::ShardedChisel *sharded =
        sharded_.load(std::memory_order_acquire);
    std::ostringstream os;
    telemetry::JsonWriter w(os, true);
    w.beginObject();
    int status = 200;
    if (sharded != nullptr) {
        // Containment rule: a single sick shard sheds only its own
        // keyspace slice (at the RPC layer), so the node-level probe
        // goes red only when a majority of shards are sick and the
        // node as a whole can no longer do useful work.
        bool majority = sharded->majoritySick();
        status = majority ? 503 : 200;
        w.member("state",
                 health::healthStateName(sharded->aggregateHealth()));
        w.member("attached", true);
        w.member("serving", !majority);
        w.member("shard_count", uint64_t(sharded->shards()));
        w.member("sick_shards", uint64_t(sharded->sickShards()));
        w.member("routes", uint64_t(sharded->routeCount()));
        w.key("shards");
        w.beginArray();
        for (size_t i = 0; i < sharded->shards(); ++i) {
            shard::ShardStatus st = sharded->status(i);
            w.beginObject();
            w.member("shard", uint64_t(i));
            w.member("state", health::healthStateName(st.state));
            w.member("induced", st.induced);
            w.member("serving", st.serving);
            w.member("routes", uint64_t(st.routes));
            w.member("generation", st.generation);
            w.member("pending_updates", uint64_t(st.pendingUpdates));
            w.member("updates_applied", st.updatesApplied);
            w.member("quarantine_entries", st.quarantineEntries);
            w.member("last_seq", st.lastSeq);
            w.endObject();
        }
        w.endArray();
    } else if (engine == nullptr) {
        w.member("state", "unknown");
        w.member("attached", false);
    } else {
        health::HealthState state = engine->healthState();
        bool serving = state != health::HealthState::Degraded &&
                       state != health::HealthState::Quarantined;
        status = serving ? 200 : 503;
        w.member("state", health::healthStateName(state));
        w.member("attached", true);
        w.member("serving", serving);
        w.member("generation", engine->generation());
        w.member("updates_applied", engine->updatesApplied());
        w.member("pending_updates",
                 uint64_t(engine->pendingUpdates()));
        w.member("scrub_passes", engine->scrubPasses());
        w.member("routes", uint64_t(engine->routeCount()));
        w.member("dirty_groups", uint64_t(engine->dirtyCount()));
        w.member("dirty_peak", uint64_t(engine->dirtyPeak()));
    }
    if (const replica::Follower *follower =
            follower_.load(std::memory_order_acquire)) {
        replica::FollowerStats rs = follower->stats();
        // A standby that has not caught up must not take traffic; a
        // promoted follower is the leader now and serves on its own
        // engine health.
        if (!rs.caughtUp)
            status = 503;
        w.key("replica");
        w.beginObject();
        w.member("caught_up", rs.caughtUp);
        w.member("connected", rs.connected);
        w.member("promoted", rs.promoted);
        w.member("last_applied_seq", rs.lastAppliedSeq);
        w.member("leader_last_seq", rs.leaderLastSeq);
        w.member("lag_records", rs.lagRecords);
        w.member("records_applied", rs.recordsApplied);
        w.member("snapshots_installed", rs.snapshotsInstalled);
        w.member("fence_rejects", rs.fenceRejects);
        w.member("max_epoch_seen", rs.maxEpochSeen);
        w.member("promoted_epoch", rs.promotedEpoch);
        w.endObject();
    }
    w.endObject();
    return {status, "application/json", os.str()};
}

IntrospectResponse
IntrospectionServer::vars() const
{
    const telemetry::MetricRegistry *registry =
        registry_.load(std::memory_order_acquire);
    if (registry == nullptr)
        return {404, "application/json",
                "{\"error\": \"no metric registry attached\"}\n"};
    return {200, "application/json", registry->toJson()};
}

IntrospectResponse
IntrospectionServer::flight(const std::string &query) const
{
    const telemetry::FlightRecorder *flight =
        flight_.load(std::memory_order_acquire);
    if (flight == nullptr)
        return {404, "application/json",
                "{\"error\": \"no flight recorder attached\"}\n"};
    size_t n = parseCountParam(query, kDefaultFlightEvents);
    std::ostringstream os;
    flight->writeJson(os, n);
    return {200, "application/json", os.str()};
}

} // namespace chisel::obs
