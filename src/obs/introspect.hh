/**
 * @file
 * Live introspection endpoint: a minimal, dependency-free HTTP/1.0
 * server that makes a running engine observable from the outside
 * (docs/observability.md).
 *
 * Endpoints:
 *
 *     /          plain-text index of the endpoints below
 *     /metrics   MetricRegistry, Prometheus text exposition 0.0.4
 *     /healthz   health state + live engine gauges, JSON; the HTTP
 *                status degrades with the engine (200 while the
 *                state is Healthy/Stressed/Recovering, 503 once
 *                Degraded or Quarantined) so a plain HTTP check
 *                doubles as the liveness probe.  With a sharded
 *                dataplane attached the body adds a per-shard
 *                breakdown and the status follows the containment
 *                rule: 503 only when a majority of shards are sick
 *                (docs/sharding.md)
 *     /vars      MetricRegistry JSON snapshot (same schema as
 *                --metrics-json)
 *     /flight    recent flight-recorder events, JSON; ?n=<count>
 *                bounds the event count (default 256)
 *
 * Scope is deliberately small: HTTP/1.0, GET only, loopback binding
 * by default, one request per connection, Connection: close.  This is
 * an operator port, not a web server — but it is exactly the seam the
 * ROADMAP's network front end (item 4) needs, and the handler core
 * (handle()) is callable without any socket for tests.
 *
 * Thread-safety: the server thread only reads through the attached
 * sources' own thread-safe surfaces (atomic metric reads, seqlock'd
 * flight snapshots, ConcurrentChisel's serialized accessors), so it
 * can run while writer and reader threads hammer the engine.
 */

#ifndef CHISEL_OBS_INTROSPECT_HH
#define CHISEL_OBS_INTROSPECT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace chisel::telemetry {
class MetricRegistry;
class FlightRecorder;
} // namespace chisel::telemetry

namespace chisel::concurrent { class ConcurrentChisel; }
namespace chisel::replica { class Follower; }
namespace chisel::shard { class ShardedChisel; }

namespace chisel::obs {

/** One parsed-and-handled request, socket-free for tests. */
struct IntrospectResponse
{
    int status = 200;
    std::string contentType;
    std::string body;
};

class IntrospectionServer
{
  public:
    IntrospectionServer() = default;

    /** stop()s if still running. */
    ~IntrospectionServer();

    IntrospectionServer(const IntrospectionServer &) = delete;
    IntrospectionServer &operator=(const IntrospectionServer &) = delete;

    // ---- Sources (attach before or while serving; nullptr detaches) --

    void attachRegistry(const telemetry::MetricRegistry *registry)
    {
        registry_.store(registry, std::memory_order_release);
    }

    void attachFlight(const telemetry::FlightRecorder *flight)
    {
        flight_.store(flight, std::memory_order_release);
    }

    void attachEngine(const concurrent::ConcurrentChisel *engine)
    {
        engine_.store(engine, std::memory_order_release);
    }

    /**
     * Expose a warm standby through /healthz: adds a "replica"
     * section and degrades the HTTP status to 503 until the follower
     * is caughtUp() — so a load balancer health check keeps traffic
     * off a standby that is still replaying.
     */
    void attachFollower(const replica::Follower *follower)
    {
        follower_.store(follower, std::memory_order_release);
    }

    /**
     * Expose a sharded dataplane through /healthz: adds a "shards"
     * array with one entry per shard (state, serving, routes,
     * generation, quarantine entries) and replaces the single-engine
     * status rule with the containment rule — the HTTP status is 503
     * only when a MAJORITY of shards are sick.  One quarantined shard
     * keeps the probe green; its keyspace slice sheds at the RPC
     * layer instead of the whole node being drained.
     */
    void attachShards(const shard::ShardedChisel *sharded)
    {
        sharded_.store(sharded, std::memory_order_release);
    }

    // ---- Serving -----------------------------------------------------

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-chosen ephemeral port) and
     * start the serving thread.  @return false (with a warn) if the
     * socket cannot be set up; observability must never take down
     * the workload.
     */
    bool start(uint16_t port);

    /** Join the serving thread and close the socket.  Idempotent. */
    void stop();

    bool running() const { return listenFd_ >= 0; }

    /** The bound port (resolves port 0); 0 when not running. */
    uint16_t port() const { return port_; }

    // ---- Request handling (used by the thread AND by tests) ----------

    /**
     * Handle one request line's worth of routing: @p method ("GET")
     * and @p target ("/metrics", "/flight?n=10").
     */
    IntrospectResponse handle(const std::string &method,
                              const std::string &target) const;

  private:
    void serveLoop();
    void serveConnection(int fd);

    IntrospectResponse index() const;
    IntrospectResponse metrics() const;
    IntrospectResponse healthz() const;
    IntrospectResponse vars() const;
    IntrospectResponse flight(const std::string &query) const;

    std::atomic<const telemetry::MetricRegistry *> registry_{nullptr};
    std::atomic<const telemetry::FlightRecorder *> flight_{nullptr};
    std::atomic<const concurrent::ConcurrentChisel *> engine_{nullptr};
    std::atomic<const replica::Follower *> follower_{nullptr};
    std::atomic<const shard::ShardedChisel *> sharded_{nullptr};

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stopRequested_{false};
    std::thread thread_;
};

} // namespace chisel::obs

#endif // CHISEL_OBS_INTROSPECT_HH
