/**
 * @file
 * Controlled Prefix Expansion (Srinivasan & Varghese, SIGMETRICS 1998)
 * — the prior-art wildcard solution Chisel's prefix collapsing is
 * evaluated against (Sections 2, 4.3, 6.2).
 *
 * CPE converts a prefix of length x into 2^l prefixes of length x+l
 * (the next length in a chosen target set), replacing l wildcard bits
 * by all their possible values.  Expansion multiplies the number of
 * prefixes — worst case 2^(distance to the next target length) — and
 * that inflation is exactly what the Figure 9/10/11 experiments
 * measure.  When expanded prefixes collide (a host of an expanded
 * short prefix equals a longer original prefix), longest-prefix-match
 * semantics keep the entry descending from the longest original.
 */

#ifndef CHISEL_CPE_CPE_HH
#define CHISEL_CPE_CPE_HH

#include <cstdint>
#include <vector>

#include "route/table.hh"

namespace chisel {

/** Outcome of expanding a table. */
struct CpeResult
{
    /** The expanded table (unique prefixes, LPM-resolved next hops). */
    RoutingTable expanded;

    /** Number of prefixes before expansion. */
    size_t originalCount = 0;

    /** Number of prefixes after expansion and deduplication. */
    size_t expandedCount = 0;

    /** expandedCount / originalCount. */
    double expansionFactor() const;
};

/**
 * Build the target length set for a uniform stride: lengths
 * {stride, 2*stride, ...} up to @p max_length, plus max_length.
 * Length 0 (default route) is never a target.
 */
std::vector<unsigned> uniformTargetLengths(unsigned stride,
                                           unsigned max_length);

/**
 * Target lengths that mirror a Chisel collapse plan over the same
 * table: one target at the *top* of each collapse interval, so both
 * schemes reduce to the same number of unique lengths.  Used by the
 * like-for-like comparison of Section 6.2.
 */
std::vector<unsigned> targetsForPopulatedLengths(
    const std::vector<unsigned> &populated, unsigned stride);

/**
 * Optimal target-length selection by dynamic programming, as in the
 * original CPE paper: choose @p levels target lengths minimising the
 * total number of expanded prefixes for this table's length
 * histogram.  The longest populated length is always a target.
 */
std::vector<unsigned> optimalTargetLengths(const RoutingTable &table,
                                           unsigned levels);

/**
 * Expand @p table so every prefix length lands in @p target_lengths
 * (each original length is raised to the smallest target >= it).
 * Lengths above the largest target are a configuration error.
 */
CpeResult expand(const RoutingTable &table,
                 const std::vector<unsigned> &target_lengths);

/**
 * Worst-case expansion factor of a target set: 2^(largest gap), the
 * factor a deterministic design must provision for (Section 4.3).
 */
uint64_t worstCaseExpansionFactor(
    const std::vector<unsigned> &target_lengths, unsigned max_length);

} // namespace chisel

#endif // CHISEL_CPE_CPE_HH
