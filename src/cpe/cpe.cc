#include "cpe/cpe.hh"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/logging.hh"

namespace chisel {

double
CpeResult::expansionFactor() const
{
    if (originalCount == 0)
        return 1.0;
    return static_cast<double>(expandedCount) /
           static_cast<double>(originalCount);
}

std::vector<unsigned>
uniformTargetLengths(unsigned stride, unsigned max_length)
{
    if (stride == 0)
        fatalError("CPE stride must be >= 1");
    std::vector<unsigned> targets;
    for (unsigned l = stride; l < max_length; l += stride)
        targets.push_back(l);
    if (targets.empty() || targets.back() != max_length)
        targets.push_back(max_length);
    return targets;
}

std::vector<unsigned>
targetsForPopulatedLengths(const std::vector<unsigned> &populated,
                           unsigned stride)
{
    if (stride == 0)
        fatalError("CPE stride must be >= 1");
    std::vector<unsigned> targets;
    size_t i = 0;
    while (i < populated.size()) {
        unsigned base = populated[i];
        unsigned top = base;
        while (i < populated.size() && populated[i] <= base + stride) {
            top = populated[i];
            ++i;
        }
        targets.push_back(top);
    }
    return targets;
}

std::vector<unsigned>
optimalTargetLengths(const RoutingTable &table, unsigned levels)
{
    if (levels == 0)
        fatalError("CPE needs at least one target level");
    auto hist = table.lengthHistogram();
    unsigned max_len = table.maxLength();
    if (max_len == 0)
        return {1};

    // cost(s, t): prefixes created by raising lengths (s, t] to t.
    // Prefixes longer than ~20 levels of expansion are clamped; the
    // DP never picks such gaps when better options exist.
    auto seg_cost = [&](unsigned s, unsigned t) -> double {
        double c = 0.0;
        for (unsigned l = s + 1; l <= t; ++l) {
            unsigned gap = t - l;
            double factor = gap >= 40 ? 1e12
                                      : static_cast<double>(
                                            uint64_t(1) << gap);
            c += static_cast<double>(hist[l]) * factor;
        }
        return c;
    };

    const double inf = 1e300;
    // f[i][t]: min cost covering lengths 1..t with i targets, the
    // last at t.  choice[i][t]: previous target.
    std::vector<std::vector<double>> f(
        levels + 1, std::vector<double>(max_len + 1, inf));
    std::vector<std::vector<unsigned>> choice(
        levels + 1, std::vector<unsigned>(max_len + 1, 0));

    for (unsigned t = 1; t <= max_len; ++t)
        f[1][t] = seg_cost(0, t);
    for (unsigned i = 2; i <= levels; ++i) {
        for (unsigned t = i; t <= max_len; ++t) {
            for (unsigned s = i - 1; s < t; ++s) {
                if (f[i - 1][s] >= inf)
                    continue;
                double c = f[i - 1][s] + seg_cost(s, t);
                if (c < f[i][t]) {
                    f[i][t] = c;
                    choice[i][t] = s;
                }
            }
        }
    }

    // Fewer levels than requested may already be optimal (e.g. a
    // table with few populated lengths); pick the best level count
    // whose last target is max_len.
    unsigned best_i = 1;
    for (unsigned i = 1; i <= levels; ++i) {
        if (f[i][max_len] <= f[best_i][max_len])
            best_i = i;
    }

    std::vector<unsigned> targets;
    unsigned t = max_len;
    for (unsigned i = best_i; i >= 1; --i) {
        targets.push_back(t);
        t = choice[i][t];
    }
    std::sort(targets.begin(), targets.end());
    return targets;
}

CpeResult
expand(const RoutingTable &table,
       const std::vector<unsigned> &target_lengths)
{
    std::vector<unsigned> targets = target_lengths;
    std::sort(targets.begin(), targets.end());
    if (targets.empty())
        fatalError("CPE requires at least one target length");

    CpeResult result;
    result.originalCount = table.size();

    // Expanded prefixes can collide; LPM semantics say the entry
    // descending from the *longest* original prefix wins.  Track the
    // originating length per expanded prefix to arbitrate.
    std::unordered_map<Prefix, std::pair<unsigned, NextHop>,
                       PrefixHasher> winners;

    for (const auto &route : table.routes()) {
        unsigned len = route.prefix.length();
        auto it = std::lower_bound(targets.begin(), targets.end(), len);
        if (it == targets.end()) {
            fatalError("CPE: prefix longer than largest target length");
        }
        unsigned target = *it;
        unsigned extra = target - len;
        if (extra > 30)
            fatalError("CPE: expansion of 2^" + std::to_string(extra) +
                       " is impractical; choose closer targets");

        uint64_t count = uint64_t(1) << extra;
        for (uint64_t suffix = 0; suffix < count; ++suffix) {
            Prefix expanded = route.prefix.extended(suffix, extra);
            auto [wit, inserted] = winners.try_emplace(
                expanded, std::make_pair(len, route.nextHop));
            if (!inserted && wit->second.first < len)
                wit->second = std::make_pair(len, route.nextHop);
        }
    }

    for (const auto &[prefix, lennh] : winners)
        result.expanded.add(prefix, lennh.second);
    result.expandedCount = result.expanded.size();
    return result;
}

uint64_t
worstCaseExpansionFactor(const std::vector<unsigned> &target_lengths,
                         unsigned max_length)
{
    std::vector<unsigned> targets = target_lengths;
    std::sort(targets.begin(), targets.end());
    if (targets.empty())
        fatalError("CPE requires at least one target length");

    // A prefix of length l expands by 2^(next_target - l); the worst
    // length is one past the previous target (or length 1).
    unsigned worst_gap = targets[0] >= 1 ? targets[0] - 1 : 0;
    for (size_t i = 1; i < targets.size(); ++i) {
        unsigned gap = targets[i] - targets[i - 1] - 1;
        worst_gap = std::max(worst_gap, gap);
    }
    (void)max_length;
    return uint64_t(1) << std::min(worst_gap, 63u);
}

} // namespace chisel
