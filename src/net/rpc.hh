/**
 * @file
 * RPC wire protocol for the lookup service (docs/service.md).
 *
 * The service speaks the same self-framing byte discipline as the
 * on-disk journal and the replication wire:
 *
 *     frame   := u32 payload length | u32 CRC(payload) | payload
 *     payload := u8 type | u64 id | type-specific fields
 *
 * so a torn frame at a connection reset is detected exactly like a
 * torn tail at a crash: the CRC fails or the length overruns the
 * received bytes, the reader poisons, and the connection is dropped.
 * The id echoes from request to reply, letting a client pipeline
 * requests and match replies after a reconnect discarded the stream.
 *
 * Message types and their fields (all integers little-endian):
 *
 *     LookupRequest (client -> server)
 *         u32 n | n x Key128 (hi, lo)
 *     LookupReply (server -> client)
 *         u64 generation | u32 n
 *         | n x { u8 found | u32 nextHop | u8 matchedLength }
 *     UpdateRequest (client -> server)
 *         u32 n | n x { u8 kind | prefix | u32 nextHop | u32 ttlMs }
 *     UpdateReply (server -> client)
 *         u64 durableSeq | u32 n
 *         | n x { u8 acked | u8 status | u8 cls | u64 seq }
 *     Ping (client -> server)
 *         (no fields)
 *     Pong (server -> client)
 *         u8 health | u8 draining | u64 generation | u64 routes
 *     Status (server -> client, instead of the typed reply)
 *         u8 code | u64 retryAfterMs
 *
 * A Status reply is the structured fail-fast path: Overloaded when
 * load shedding refuses the request, Draining during graceful
 * shutdown, BadRequest when the request decoded but violated a
 * protocol rule (empty batch, oversized batch, Expire from a client).
 * An ack in an UpdateReply is the durability promise: acked = 1 is
 * only ever sent once UpdateJournal::lastDurableSeq() covers that
 * update's seq (docs/service.md, "no acked-but-lost window").
 */

#ifndef CHISEL_NET_RPC_HH
#define CHISEL_NET_RPC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/key128.hh"
#include "route/updates.hh"

namespace chisel::net {

/** Message types (u8 on the wire; values are part of the protocol). */
enum class MsgType : uint8_t
{
    LookupRequest = 1,
    LookupReply = 2,
    UpdateRequest = 3,
    UpdateReply = 4,
    Ping = 5,
    Pong = 6,
    Status = 7,
};

const char *msgTypeName(MsgType t);

/** Status-reply codes (u8 on the wire). */
enum class StatusCode : uint8_t
{
    Overloaded = 1,  ///< Shed by health state or admission tokens.
    Draining = 2,    ///< Graceful shutdown in progress.
    BadRequest = 3,  ///< Well-framed but protocol-violating request.
};

const char *statusCodeName(StatusCode c);

/** One per-key result inside a LookupReply. */
struct WireLookup
{
    bool found = false;
    uint32_t nextHop = 0;
    uint8_t matchedLength = 0;
};

/** One per-update result inside an UpdateReply. */
struct WireAck
{
    /** 1 = journaled, applied AND fsync-covered; 0 = refused. */
    bool acked = false;
    uint8_t status = 0;  ///< UpdateStatus of the apply (when acked).
    uint8_t cls = 0;     ///< UpdateClass of the apply (when acked).
    uint64_t seq = 0;    ///< Journal sequence (0 when not journaled).
};

/** One decoded message (the union of all types' fields). */
struct RpcMessage
{
    MsgType type = MsgType::Ping;
    uint64_t id = 0;

    std::vector<Key128> keys;         ///< LookupRequest.
    uint64_t generation = 0;          ///< LookupReply, Pong.
    std::vector<WireLookup> lookups;  ///< LookupReply.
    std::vector<Update> updates;      ///< UpdateRequest.
    uint64_t durableSeq = 0;          ///< UpdateReply.
    std::vector<WireAck> acks;        ///< UpdateReply.
    uint8_t health = 0;               ///< Pong (HealthState).
    bool draining = false;            ///< Pong.
    uint64_t routes = 0;              ///< Pong.
    uint8_t statusCode = 0;           ///< Status (StatusCode).
    uint64_t retryAfterMs = 0;        ///< Status.
};

/**
 * Upper bound a peer will accept for one message payload.  Far above
 * anything kMaxRpcBatch can produce; a length past it poisons the
 * reader immediately instead of waiting for bytes that may never
 * come.
 */
constexpr uint32_t kMaxRpcPayload = 4u << 20;

/** Maximum keys/updates in one batched request (or results in a reply). */
constexpr uint32_t kMaxRpcBatch = 4096;

/** Encode @p msg as one wire frame (length | crc | payload). */
std::vector<uint8_t> encodeMessage(const RpcMessage &msg);

// Convenience constructors.
RpcMessage makeLookupRequest(uint64_t id, std::vector<Key128> keys);
RpcMessage makeLookupReply(uint64_t id, uint64_t generation,
                           std::vector<WireLookup> results);
RpcMessage makeUpdateRequest(uint64_t id, std::vector<Update> updates);
RpcMessage makeUpdateReply(uint64_t id, uint64_t durable_seq,
                           std::vector<WireAck> acks);
RpcMessage makePing(uint64_t id);
RpcMessage makePong(uint64_t id, uint8_t health, bool draining,
                    uint64_t generation, uint64_t routes);
RpcMessage makeStatus(uint64_t id, StatusCode code,
                      uint64_t retry_after_ms);

/**
 * Incremental message parser with the journal's poison discipline:
 * feed arbitrary byte chunks as they arrive, poll next() for
 * completed messages.  Any framing violation — oversized length, CRC
 * mismatch, unknown type, truncated or trailing payload bytes, a
 * batch past kMaxRpcBatch — poisons the reader permanently (bad()
 * turns true, next() returns false forever): framing cannot be
 * trusted past the first violation, so the owner drops the
 * connection.  This is the decoder the fuzz harness
 * (fuzz/fuzz_wire.cc) hammers.
 */
class MessageReader
{
  public:
    /** Append @p len received bytes. */
    void feed(const uint8_t *data, size_t len);

    /**
     * Decode the next completed message into @p out.  @return false
     * when no complete message is buffered (or the reader is bad()).
     */
    bool next(RpcMessage &out);

    /** True once the stream violated framing; unrecoverable. */
    bool bad() const { return bad_; }

    /** Why bad() turned true (empty while the stream is healthy). */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    void poison(const std::string &why);

    std::vector<uint8_t> buf_;
    size_t pos_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
    bool bad_ = false;
    std::string error_;
};

} // namespace chisel::net

#endif // CHISEL_NET_RPC_HH
