/**
 * @file
 * Shared loopback-socket plumbing (docs/service.md).
 *
 * Three subsystems talk TCP on 127.0.0.1 — the introspection endpoint
 * (src/obs/introspect.cc), the replication transport
 * (src/replica/transport.cc) and the RPC service (src/net/server.cc)
 * — and before this header each carried its own copy of the same
 * dozen lines of socket/bind/listen/poll boilerplate.  These helpers
 * are that boilerplate, written once:
 *
 *  - listener setup with SO_REUSEADDR, loopback-only binding and
 *    ephemeral-port resolution via getsockname;
 *  - poll-gated accept and connect;
 *  - sendAll / recvSome with the ByteStream return convention
 *    (> 0 bytes, 0 timeout, -1 closed or failed) used everywhere a
 *    deadline loop sits above a socket.
 *
 * Everything here is dependency-free POSIX; errors are reported
 * through return values (never exceptions) because every caller has
 * its own recovery policy — drop the connection, retry, or warn and
 * serve without the endpoint.
 */

#ifndef CHISEL_NET_SOCKET_HH
#define CHISEL_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>

namespace chisel::net {

/**
 * Create a loopback listening socket bound to 127.0.0.1:@p port
 * (0 = kernel-chosen ephemeral port) with SO_REUSEADDR.
 *
 * @param backlog listen(2) backlog.
 * @param resolved_port When non-null receives the actually bound
 *        port (resolves port 0 via getsockname).
 * @return the listening fd, or -1 on any failure (errno is left for
 *         the caller's diagnostics).
 */
int listenLoopback(uint16_t port, int backlog,
                   uint16_t *resolved_port = nullptr);

/**
 * Accept one connection from @p listen_fd, waiting at most
 * @p timeout_ms in poll.  TCP_NODELAY is set on the accepted socket
 * when @p nodelay (RPC and replication frames are latency-bound;
 * plain HTTP does not care but does not mind).
 *
 * @return the connected fd, or -1 on timeout or error.
 */
int acceptOn(int listen_fd, int timeout_ms, bool nodelay = true);

/**
 * Connect to 127.0.0.1:@p port with TCP_NODELAY.  Loopback connects
 * complete or fail immediately, so @p timeout_ms only bounds the
 * rare in-kernel stall.  @return the fd, or -1 on refusal/failure.
 */
int connectLoopback(uint16_t port, int timeout_ms = 1000);

/** Switch @p fd in or out of O_NONBLOCK.  @return success. */
bool setNonBlocking(int fd, bool nonblocking = true);

/** Set TCP_NODELAY on @p fd.  @return success. */
bool setNoDelay(int fd);

/**
 * Poll @p fd for readability.  @return 1 when readable, 0 on
 * timeout, -1 on poll failure (EINTR reads as a timeout: callers sit
 * in deadline loops and simply come back).
 */
int pollIn(int fd, int timeout_ms);

/**
 * Blocking send of the whole buffer (EINTR retried, SIGPIPE
 * suppressed via MSG_NOSIGNAL).  @return false once the peer is
 * gone; bytes already accepted may or may not have been delivered —
 * exactly the guarantee TCP gives.
 */
bool sendAll(int fd, const void *data, size_t len);

/**
 * Receive up to @p len bytes, waiting at most @p timeout_ms for the
 * first byte.  @return bytes read (> 0), 0 on timeout, -1 once the
 * peer closed or the socket failed — the ByteStream convention.
 */
int recvSome(int fd, void *data, size_t len, int timeout_ms);

/** close(2) if @p fd is valid; tolerates -1. */
void closeFd(int fd);

} // namespace chisel::net

#endif // CHISEL_NET_SOCKET_HH
