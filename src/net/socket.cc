#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace chisel::net {

int
listenLoopback(uint16_t port, int backlog, uint16_t *resolved_port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }

    if (resolved_port != nullptr) {
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0)
            *resolved_port = ntohs(addr.sin_port);
        else
            *resolved_port = port;
    }
    return fd;
}

int
acceptOn(int listen_fd, int timeout_ms, bool nodelay)
{
    if (listen_fd < 0)
        return -1;
    if (pollIn(listen_fd, timeout_ms) <= 0)
        return -1;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return -1;
    if (nodelay)
        setNoDelay(fd);
    return fd;
}

int
connectLoopback(uint16_t port, int timeout_ms)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    // Loopback connects resolve immediately; timeout_ms only bounds a
    // pathological in-kernel stall, so a plain blocking connect is
    // correct (the nonblocking + poll dance would add states for a
    // case loopback cannot produce).
    (void)timeout_ms;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

bool
setNonBlocking(int fd, bool nonblocking)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    if (nonblocking)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    return ::fcntl(fd, F_SETFL, flags) == 0;
}

bool
setNoDelay(int fd)
{
    int one = 1;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                        sizeof(one)) == 0;
}

int
pollIn(int fd, int timeout_ms)
{
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0)
        return errno == EINTR ? 0 : -1;
    return ready > 0 ? 1 : 0;
}

bool
sendAll(int fd, const void *data, size_t len)
{
    if (fd < 0)
        return false;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

int
recvSome(int fd, void *data, size_t len, int timeout_ms)
{
    if (fd < 0)
        return -1;
    int ready = pollIn(fd, timeout_ms);
    if (ready <= 0)
        return ready;
    ssize_t n = ::recv(fd, data, len, 0);
    if (n == 0)
        return -1;   // Orderly close.
    if (n < 0)
        return errno == EINTR ? 0 : -1;
    return static_cast<int>(n);
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace chisel::net
