#include "net/client.hh"

#include <algorithm>
#include <thread>

#include "common/clock.hh"
#include "net/socket.hh"

namespace chisel::net {

namespace {

constexpr uint64_t kMsNs = 1000000ull;

} // anonymous namespace

const char *
callStatusName(CallStatus s)
{
    switch (s) {
      case CallStatus::Ok: return "ok";
      case CallStatus::Overloaded: return "overloaded";
      case CallStatus::Draining: return "draining";
      case CallStatus::Timeout: return "timeout";
      case CallStatus::Disconnected: return "disconnected";
      case CallStatus::BadReply: return "bad_reply";
      case CallStatus::Rejected: return "rejected";
    }
    return "?";
}

ServiceClient::ServiceClient(const ClientOptions &options)
    : options_(options), rng_(options.seed)
{}

ServiceClient::~ServiceClient()
{
    disconnect();
}

void
ServiceClient::disconnect()
{
    if (fd_ >= 0) {
        closeFd(fd_);
        fd_ = -1;
    }
    // The stream restarts clean after a reconnect: any half-received
    // reply dies with the old reader, so ids can never cross streams.
    reader_ = MessageReader();
}

bool
ServiceClient::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    fd_ = connectLoopback(options_.port);
    if (fd_ < 0)
        return false;
    ++stats_.reconnects;
    return true;
}

void
ServiceClient::backoff(int attempt, uint64_t server_hint_ms,
                       uint64_t deadline_ns)
{
    // Exponential with full jitter; a server retry-after hint sets
    // the floor of the window instead of replacing it.
    uint64_t cap = static_cast<uint64_t>(options_.backoffMaxMs);
    uint64_t window = static_cast<uint64_t>(options_.backoffBaseMs)
                      << std::min(attempt, 16);
    window = std::min(window, cap);
    uint64_t delay_ms = window > 0 ? rng_.nextBelow(window + 1) : 0;
    delay_ms = std::max(delay_ms, server_hint_ms);
    delay_ms = std::min(delay_ms, cap);

    uint64_t now = monotonicNowNs();
    if (now >= deadline_ns)
        return;
    uint64_t budget_ms = (deadline_ns - now) / kMsNs;
    delay_ms = std::min(delay_ms, budget_ms);
    if (delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
}

CallStatus
ServiceClient::awaitReply(uint64_t request_id, MsgType expected_reply,
                          uint64_t deadline_ns, RpcMessage &reply)
{
    while (true) {
        RpcMessage msg;
        while (reader_.next(msg)) {
            if (msg.id != request_id) {
                // A leftover reply from a request this stream never
                // made — only possible if framing went wrong.
                disconnect();
                return CallStatus::BadReply;
            }
            if (msg.type == MsgType::Status) {
                switch (static_cast<StatusCode>(msg.statusCode)) {
                  case StatusCode::Overloaded:
                    reply = msg;
                    return CallStatus::Overloaded;
                  case StatusCode::Draining:
                    reply = msg;
                    return CallStatus::Draining;
                  case StatusCode::BadRequest:
                    return CallStatus::Rejected;
                }
                disconnect();
                return CallStatus::BadReply;
            }
            if (msg.type != expected_reply) {
                disconnect();
                return CallStatus::BadReply;
            }
            reply = std::move(msg);
            return CallStatus::Ok;
        }
        if (reader_.bad()) {
            disconnect();
            return CallStatus::Disconnected;
        }

        uint64_t now = monotonicNowNs();
        if (now >= deadline_ns) {
            // The deadline fired with a reply possibly still in
            // flight.  Keeping the stream would desynchronise ids, so
            // the connection goes too.
            disconnect();
            return CallStatus::Timeout;
        }
        int wait_ms = static_cast<int>(std::min<uint64_t>(
            (deadline_ns - now) / kMsNs + 1,
            static_cast<uint64_t>(options_.recvTimeoutMs)));
        uint8_t buf[4096];
        int n = recvSome(fd_, buf, sizeof(buf), wait_ms);
        if (n > 0)
            reader_.feed(buf, static_cast<size_t>(n));
        else if (n < 0) {
            disconnect();
            return CallStatus::Disconnected;
        }
        // n == 0: poll timeout; loop re-checks the deadline.
    }
}

CallStatus
ServiceClient::call(const RpcMessage &request, MsgType expected_reply,
                    RpcMessage &reply)
{
    ++stats_.calls;
    uint64_t deadline_ns =
        monotonicNowNs() +
        static_cast<uint64_t>(options_.requestTimeoutMs) * kMsNs;
    CallStatus last = CallStatus::Timeout;

    for (int attempt = 0; attempt < options_.maxAttempts; ++attempt) {
        if (monotonicNowNs() >= deadline_ns) {
            ++stats_.timeouts;
            return CallStatus::Timeout;
        }
        if (attempt > 0)
            ++stats_.retries;
        if (!ensureConnected()) {
            last = CallStatus::Disconnected;
            backoff(attempt, 0, deadline_ns);
            continue;
        }

        RpcMessage req = request;
        req.id = nextId_++;
        std::vector<uint8_t> wire = encodeMessage(req);
        if (!sendAll(fd_, wire.data(), wire.size())) {
            disconnect();
            last = CallStatus::Disconnected;
            backoff(attempt, 0, deadline_ns);
            continue;
        }

        last = awaitReply(req.id, expected_reply, deadline_ns, reply);
        switch (last) {
          case CallStatus::Ok:
          case CallStatus::Rejected:
          case CallStatus::BadReply:
            return last;  // Retrying cannot change these.
          case CallStatus::Timeout:
            ++stats_.timeouts;
            return last;  // The deadline is gone; no retry budget.
          case CallStatus::Overloaded:
            ++stats_.overloaded;
            backoff(attempt, reply.retryAfterMs, deadline_ns);
            break;
          case CallStatus::Draining:
            ++stats_.draining;
            // A draining server never un-drains; reconnect to find
            // its successor after the restart.
            disconnect();
            backoff(attempt, reply.retryAfterMs, deadline_ns);
            break;
          case CallStatus::Disconnected:
            backoff(attempt, 0, deadline_ns);
            break;
        }
    }
    if (monotonicNowNs() >= deadline_ns &&
        last != CallStatus::Overloaded && last != CallStatus::Draining)
        last = CallStatus::Timeout;
    return last;
}

LookupCallResult
ServiceClient::lookup(const std::vector<Key128> &keys)
{
    LookupCallResult out;
    RpcMessage reply;
    out.status = call(makeLookupRequest(0, keys),
                      MsgType::LookupReply, reply);
    if (out.status != CallStatus::Ok)
        return out;
    if (reply.lookups.size() != keys.size()) {
        disconnect();
        out.status = CallStatus::BadReply;
        return out;
    }
    out.generation = reply.generation;
    out.results = std::move(reply.lookups);
    return out;
}

UpdateCallResult
ServiceClient::update(const std::vector<Update> &updates)
{
    UpdateCallResult out;
    RpcMessage reply;
    out.status = call(makeUpdateRequest(0, updates),
                      MsgType::UpdateReply, reply);
    if (out.status != CallStatus::Ok)
        return out;
    if (reply.acks.size() != updates.size()) {
        disconnect();
        out.status = CallStatus::BadReply;
        return out;
    }
    out.durableSeq = reply.durableSeq;
    out.acks = std::move(reply.acks);
    return out;
}

PingCallResult
ServiceClient::ping()
{
    PingCallResult out;
    RpcMessage reply;
    out.status = call(makePing(0), MsgType::Pong, reply);
    if (out.status != CallStatus::Ok)
        return out;
    out.health = reply.health;
    out.draining = reply.draining;
    out.generation = reply.generation;
    out.routes = reply.routes;
    return out;
}

} // namespace chisel::net
