/**
 * @file
 * ServiceClient: deadline-aware client for ChiselService
 * (docs/service.md).
 *
 * Each call carries a deadline (requestTimeoutMs from the moment the
 * call starts, spanning every retry) and runs a bounded retry loop:
 *
 *  - transport failures (connect refused, connection reset, torn
 *    reply frame) reconnect and retry with exponential backoff plus
 *    full jitter, capped at backoffMaxMs;
 *  - structured Overloaded/Draining replies back off by the server's
 *    retryAfterMs hint (still jittered, still under the deadline);
 *  - a reply that decodes but violates the protocol (wrong type,
 *    mismatched id, wrong result count) drops the connection — after
 *    a reconnect the stream restarts clean, so a stale in-flight
 *    reply can never be matched to the wrong request;
 *  - when attempts or the deadline run out, the call returns the
 *    last failure (Timeout when the clock ran out first).
 *
 * The client is deliberately synchronous and single-stream: one
 * request in flight per client.  Soaks drive N clients from N
 * threads; the class itself is not thread-safe.
 */

#ifndef CHISEL_NET_CLIENT_HH
#define CHISEL_NET_CLIENT_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "net/rpc.hh"

namespace chisel::net {

struct ClientOptions
{
    /** Loopback port of the service. */
    uint16_t port = 0;

    /** Whole-call deadline, spanning every retry (ms). */
    int requestTimeoutMs = 1000;

    /** Per-socket receive timeout while waiting for a reply (ms). */
    int recvTimeoutMs = 250;

    /** Attempts per call (1 = no retry). */
    int maxAttempts = 4;

    /** First backoff delay (ms); doubles per failed attempt. */
    int backoffBaseMs = 10;

    /** Backoff ceiling (ms). */
    int backoffMaxMs = 500;

    /** Jitter seed (calls are deterministic given a seed). */
    uint64_t seed = 1;
};

/** How a call ended. */
enum class CallStatus : uint8_t
{
    Ok = 0,
    Overloaded,    ///< Structured shed reply; retries exhausted.
    Draining,      ///< Server shutting down; retries exhausted.
    Timeout,       ///< Deadline elapsed before a usable reply.
    Disconnected,  ///< Transport failed and retries exhausted.
    BadReply,      ///< Reply violated the protocol; connection dropped.
    Rejected,      ///< Server answered BadRequest (not retried).
};

const char *callStatusName(CallStatus s);

/** Result of a batched lookup call. */
struct LookupCallResult
{
    CallStatus status = CallStatus::Timeout;
    uint64_t generation = 0;
    std::vector<WireLookup> results;  ///< One per key when Ok.
};

/** Result of a batched update call. */
struct UpdateCallResult
{
    CallStatus status = CallStatus::Timeout;
    uint64_t durableSeq = 0;
    std::vector<WireAck> acks;  ///< One per update when Ok.
};

/** Result of a ping. */
struct PingCallResult
{
    CallStatus status = CallStatus::Timeout;
    uint8_t health = 0;
    bool draining = false;
    uint64_t generation = 0;
    uint64_t routes = 0;
};

/** Client-side wear counters (monotonic since construction). */
struct ClientStats
{
    uint64_t calls = 0;
    uint64_t retries = 0;
    uint64_t reconnects = 0;
    uint64_t timeouts = 0;
    uint64_t overloaded = 0;  ///< Overloaded replies seen (pre-retry).
    uint64_t draining = 0;    ///< Draining replies seen (pre-retry).
};

class ServiceClient
{
  public:
    explicit ServiceClient(const ClientOptions &options);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    LookupCallResult lookup(const std::vector<Key128> &keys);
    UpdateCallResult update(const std::vector<Update> &updates);
    PingCallResult ping();

    /** Drop the connection; the next call reconnects. */
    void disconnect();

    bool connected() const { return fd_ >= 0; }

    const ClientStats &stats() const { return stats_; }

  private:
    /**
     * One call: (re)connect as needed, send @p request, wait for the
     * reply whose id matches, retrying under the deadline.  @return
     * the reply via @p reply; the CallStatus says how it ended.
     * Overloaded/Draining replies surface as their status with the
     * reply left untouched.
     */
    CallStatus call(const RpcMessage &request, MsgType expected_reply,
                    RpcMessage &reply);

    bool ensureConnected();
    /** Receive until a full message or @p deadline_ns; transport and
     * framing failures drop the connection. */
    CallStatus awaitReply(uint64_t request_id, MsgType expected_reply,
                          uint64_t deadline_ns, RpcMessage &reply);
    void backoff(int attempt, uint64_t server_hint_ms,
                 uint64_t deadline_ns);

    ClientOptions options_;
    Rng rng_;
    int fd_ = -1;
    MessageReader reader_;
    uint64_t nextId_ = 1;
    ClientStats stats_;
};

} // namespace chisel::net

#endif // CHISEL_NET_CLIENT_HH
