/**
 * @file
 * ChiselService: the overload-hardened RPC front end
 * (docs/service.md; ROADMAP item 4's serving half).
 *
 * A dependency-free, nonblocking epoll server on one thread, serving
 * batched lookup and update RPCs (src/net/rpc.hh) over loopback TCP.
 * The engine stays wait-free under it — lookups run on the serving
 * thread against ConcurrentChisel's epoch-protected read path, so a
 * slow client can never stall a reader or the writer.
 *
 * Robustness rules, in the order they are applied:
 *
 *  - Accept gate: past maxConnections the connection is closed
 *    immediately (a refusal the client's backoff absorbs), and the
 *    NetAcceptStorm fault point can force the same refusal.
 *  - Backpressure: each connection's output queue is bounded by
 *    maxOutputBytes.  When a connection's queued replies exceed the
 *    bound the server STOPS READING from it (EPOLLIN off) until the
 *    queue drains — pipelined requests wait in the kernel socket
 *    buffer, and memory per connection stays bounded no matter how
 *    fast the client asks or how slowly it reads.
 *  - Write-stall deadline: output pending with no byte accepted for
 *    writeStallMs means the peer is stuck (zero receive window, dead
 *    host); the connection is dropped.
 *  - Idle deadline: no traffic in either direction for idleTimeoutMs
 *    drops the connection (half-open peers otherwise leak fds).
 *  - Load shedding (HealthMonitor wiring): while the engine is
 *    Stressed, updates are answered with a structured Overloaded
 *    status (lookups still serve — shed writes before reads); while
 *    Degraded or Quarantined, every request fails fast with
 *    Overloaded instead of queuing behind a sick engine.  A token
 *    bucket (AdmissionController::tryAdmit) additionally meters
 *    update admission even while Healthy.
 *  - Durable acks: an update is acked only after the journal's
 *    lastDurableSeq() covers its record
 *    (UpdateJournal::ensureDurable) — there is no window where a
 *    client saw an ack for bytes an fsync never covered.
 *  - Graceful drain (SIGTERM path): requestDrain() is async-signal
 *    safe; the serving thread then stops accepting, stops reading,
 *    finishes requests already received, flushes every queued reply
 *    under drainDeadlineMs, optionally writes a final snapshot, and
 *    exits the loop.
 *  - Shard-aware shedding (the ShardedChisel constructor;
 *    docs/sharding.md): the health matrix above is evaluated against
 *    the TARGET shard of each request, so one Quarantined shard
 *    fails fast for its keyspace slice only while siblings serve;
 *    the whole-plane matrix trips only when a majority of shards are
 *    sick, and acks gate on the owning shard's durable head.
 *
 * Threading: one serving thread owns every connection; start() /
 * stop() / stats() may be called from any thread; requestDrain() from
 * any thread or a signal handler.  The engine and journal must
 * outlive the service.  The service is the journal's only writer
 * while serving — do not also wire engine-level journal hooks to the
 * same journal, or updates would be journaled twice.
 */

#ifndef CHISEL_NET_SERVER_HH
#define CHISEL_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "health/admission.hh"
#include "health/monitor.hh"
#include "net/rpc.hh"

namespace chisel::concurrent { class ConcurrentChisel; }
namespace chisel::persist { class UpdateJournal; }
namespace chisel::fault { class FaultInjector; }
namespace chisel::shard { class ShardedChisel; }
namespace chisel::telemetry { class MetricRegistry; }

namespace chisel::net {

/** Tuning knobs (docs/service.md has the tuning table). */
struct ServiceOptions
{
    /** Loopback port to bind (0 = kernel-chosen ephemeral port). */
    uint16_t port = 0;

    /** Connections past this are refused at accept. */
    size_t maxConnections = 64;

    /** Per-connection queued-reply bound; past it, reading pauses. */
    size_t maxOutputBytes = 1 << 20;

    /** Drop a connection idle in both directions this long. */
    int idleTimeoutMs = 30000;

    /** Drop a connection whose pending writes make no progress. */
    int writeStallMs = 2000;

    /** Reply-flush budget of a graceful drain. */
    int drainDeadlineMs = 2000;

    /** Retry-after hint stamped into Overloaded/Draining replies. */
    uint64_t retryAfterMs = 50;

    /**
     * Final-snapshot path written at the end of a graceful drain
     * (with a SnapshotMark when a journal is attached); empty skips
     * the snapshot.
     */
    std::string drainSnapshotPath;

    /**
     * Update-admission metering for the RPC path (tryAdmit token
     * buckets; watermarks are unused — the service has no queue).
     * Disabled by default: health-state shedding alone governs.
     */
    health::AdmissionOptions admission;

    /**
     * Installed thread-locally on the serving thread, arming the
     * connection-level fault points (NetStalledPeer, NetPartialWrite,
     * NetMidFrameReset, NetAcceptStorm) for chaos harnesses.
     */
    fault::FaultInjector *faultInjector = nullptr;

    /** When non-null, service counters/gauges register here. */
    telemetry::MetricRegistry *metrics = nullptr;
};

/** Why a connection was closed (flight subcode, stats attribution). */
enum class DisconnectReason : uint8_t
{
    PeerClosed = 1,    ///< Orderly close or transport error.
    Protocol = 2,      ///< MessageReader poisoned.
    IdleTimeout = 3,   ///< idleTimeoutMs with no traffic.
    WriteStall = 4,    ///< writeStallMs with output stuck.
    Refused = 5,       ///< maxConnections or NetAcceptStorm.
    MidFrameReset = 6, ///< NetMidFrameReset fault fired.
    Drained = 7,       ///< Graceful drain completed.
    Stopped = 8,       ///< Hard stop().
};

/** Monotonic service counters (stats(); all since start()). */
struct ServiceStats
{
    uint64_t accepted = 0;
    uint64_t refused = 0;
    uint64_t disconnects = 0;
    uint64_t activeConnections = 0;
    uint64_t requests = 0;
    uint64_t lookupKeys = 0;
    uint64_t updatesApplied = 0;
    uint64_t acked = 0;
    uint64_t unacked = 0;       ///< Journal refused / sync failed.
    uint64_t overloaded = 0;    ///< Requests answered Overloaded.
    uint64_t shedUpdates = 0;   ///< Updates inside those requests.
    uint64_t badRequests = 0;
    uint64_t drainingReplies = 0;
    uint64_t idleDisconnects = 0;
    uint64_t stallDisconnects = 0;
    uint64_t backpressurePauses = 0;
    bool drained = false;       ///< A graceful drain ran to the end.
};

class ChiselService
{
  public:
    /**
     * @param engine  Serves lookups and applies updates.
     * @param journal Durability gate for update acks; nullptr serves
     *        lookups fine but answers every update un-acked (there
     *        is no durable history to promise).
     */
    ChiselService(concurrent::ConcurrentChisel &engine,
                  persist::UpdateJournal *journal,
                  const ServiceOptions &options = {});

    /**
     * Shard-aware service (docs/sharding.md): lookups and updates
     * route through @p sharded, the shedding matrix consults the
     * TARGET shard's health per request (one quarantined shard fails
     * fast for its slice only; requests touching healthy shards keep
     * serving), and the whole-plane matrix trips only past the
     * majority-sick threshold.  Durability is per shard: the sharded
     * layer's journal hooks append inside each shard's writer lock,
     * and an update is acked only once ITS shard's durable head
     * covers it (every shard, for a broadcast) — so do not pass a
     * journal here; ShardedChisel owns them.
     */
    ChiselService(shard::ShardedChisel &sharded,
                  const ServiceOptions &options = {});

    /** stop()s if still running. */
    ~ChiselService();

    ChiselService(const ChiselService &) = delete;
    ChiselService &operator=(const ChiselService &) = delete;

    /**
     * Bind and start the serving thread.  @return false (with a
     * warn) when the socket or epoll setup fails.
     */
    bool start();

    /**
     * Hard stop: close every connection (queued replies are
     * discarded) and join the serving thread.  Idempotent.
     */
    void stop();

    /**
     * Begin a graceful drain: async-signal-safe (an atomic store and
     * a pipe write), so a SIGTERM handler may call it directly.  The
     * serving thread stops accepting, finishes requests already
     * received, flushes queued replies under drainDeadlineMs, writes
     * the drain snapshot if configured, then exits; running() turns
     * false when the drain completes.  Call stop() to join.
     */
    void requestDrain();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    bool draining() const
    {
        return drainRequested_.load(std::memory_order_acquire);
    }

    /** The bound port (resolves port 0); 0 when never started. */
    uint16_t port() const { return port_; }

    ServiceStats stats() const;

    /**
     * Health-state override for tests and chaos drills: for the next
     * @p duration_ms the shedding rules see @p state instead of the
     * engine's own health.  The induced Degraded window of the
     * service soak's shed demo uses this.
     */
    void induceHealth(health::HealthState state, int duration_ms);

    /** The shedding rules' current view (induced or engine). */
    health::HealthState effectiveHealth() const;

  private:
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;
        MessageReader reader;
        std::vector<uint8_t> out;
        size_t outPos = 0;
        uint64_t lastActivityNs = 0;
        /** First ns output sat pending with no byte accepted; 0 = no
         * output pending or progress was just made. */
        uint64_t stallSinceNs = 0;
        bool readPaused = false;
        bool wantWrite = false;
    };

    void serveLoop();
    void acceptReady(uint64_t now_ns);
    void readReady(Conn &conn, uint64_t now_ns);
    void writeReady(Conn &conn, uint64_t now_ns);
    void processBuffered(Conn &conn, uint64_t now_ns);
    void dispatch(Conn &conn, RpcMessage &msg);
    void enqueueReply(Conn &conn, const RpcMessage &msg);
    void updateInterest(Conn &conn);
    void disconnect(int fd, DisconnectReason reason);
    void sweepDeadlines(uint64_t now_ns);
    void drainLoop();
    size_t pendingOut(const Conn &conn) const
    {
        return conn.out.size() - conn.outPos;
    }

    RpcMessage serveLookup(const RpcMessage &req);
    RpcMessage serveUpdate(const RpcMessage &req);
    RpcMessage serveShardedUpdate(const RpcMessage &req);

    /** Plane-wide generation (sharded: summed over shards). */
    uint64_t engineGeneration() const;
    /** Plane-wide route count (sharded: summed over shards). */
    size_t engineRouteCount() const;

    /** Exactly one of these is non-null. */
    concurrent::ConcurrentChisel *engine_;
    shard::ShardedChisel *sharded_;
    persist::UpdateJournal *journal_;
    ServiceOptions options_;

    health::AdmissionController admission_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_[2] = {-1, -1};  ///< Self-pipe: [0] read, [1] write.
    uint16_t port_ = 0;
    uint64_t nextConnId_ = 1;

    std::unordered_map<int, Conn> conns_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> drainRequested_{false};
    std::thread thread_;

    /** Health override (induceHealth): state and expiry. */
    std::atomic<uint8_t> inducedState_{
        static_cast<uint8_t>(health::HealthState::kCount)};
    std::atomic<uint64_t> inducedUntilNs_{0};

    // Stats (relaxed atomics: serving thread writes, any thread reads).
    std::atomic<uint64_t> accepted_{0}, refused_{0}, disconnects_{0};
    std::atomic<uint64_t> requests_{0}, lookupKeys_{0};
    std::atomic<uint64_t> updatesApplied_{0}, acked_{0}, unacked_{0};
    std::atomic<uint64_t> overloaded_{0}, shedUpdates_{0};
    std::atomic<uint64_t> badRequests_{0}, drainingReplies_{0};
    std::atomic<uint64_t> idleDisconnects_{0}, stallDisconnects_{0};
    std::atomic<uint64_t> backpressurePauses_{0};
    std::atomic<bool> drained_{false};
};

} // namespace chisel::net

#endif // CHISEL_NET_SERVER_HH
