#include "net/rpc.hh"

#include <utility>

#include "persist/codec.hh"

namespace chisel::net {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::LookupRequest: return "lookup_request";
      case MsgType::LookupReply: return "lookup_reply";
      case MsgType::UpdateRequest: return "update_request";
      case MsgType::UpdateReply: return "update_reply";
      case MsgType::Ping: return "ping";
      case MsgType::Pong: return "pong";
      case MsgType::Status: return "status";
    }
    return "?";
}

const char *
statusCodeName(StatusCode c)
{
    switch (c) {
      case StatusCode::Overloaded: return "overloaded";
      case StatusCode::Draining: return "draining";
      case StatusCode::BadRequest: return "bad_request";
    }
    return "?";
}

std::vector<uint8_t>
encodeMessage(const RpcMessage &msg)
{
    persist::Encoder payload;
    payload.u8(static_cast<uint8_t>(msg.type));
    payload.u64(msg.id);
    switch (msg.type) {
      case MsgType::LookupRequest:
        payload.u32(static_cast<uint32_t>(msg.keys.size()));
        for (const Key128 &k : msg.keys)
            payload.key(k);
        break;
      case MsgType::LookupReply:
        payload.u64(msg.generation);
        payload.u32(static_cast<uint32_t>(msg.lookups.size()));
        for (const WireLookup &r : msg.lookups) {
            payload.u8(r.found ? 1 : 0);
            payload.u32(r.nextHop);
            payload.u8(r.matchedLength);
        }
        break;
      case MsgType::UpdateRequest:
        payload.u32(static_cast<uint32_t>(msg.updates.size()));
        for (const Update &u : msg.updates) {
            payload.u8(static_cast<uint8_t>(u.kind));
            payload.prefix(u.prefix);
            payload.u32(u.nextHop);
            payload.u32(u.ttlMs);
        }
        break;
      case MsgType::UpdateReply:
        payload.u64(msg.durableSeq);
        payload.u32(static_cast<uint32_t>(msg.acks.size()));
        for (const WireAck &a : msg.acks) {
            payload.u8(a.acked ? 1 : 0);
            payload.u8(a.status);
            payload.u8(a.cls);
            payload.u64(a.seq);
        }
        break;
      case MsgType::Ping:
        break;
      case MsgType::Pong:
        payload.u8(msg.health);
        payload.u8(msg.draining ? 1 : 0);
        payload.u64(msg.generation);
        payload.u64(msg.routes);
        break;
      case MsgType::Status:
        payload.u8(msg.statusCode);
        payload.u64(msg.retryAfterMs);
        break;
    }

    persist::Encoder out;
    out.u32(static_cast<uint32_t>(payload.size()));
    out.u32(persist::crc32(payload.buffer().data(), payload.size()));
    out.bytes(payload.buffer().data(), payload.size());
    return std::move(out.buffer());
}

RpcMessage
makeLookupRequest(uint64_t id, std::vector<Key128> keys)
{
    RpcMessage m;
    m.type = MsgType::LookupRequest;
    m.id = id;
    m.keys = std::move(keys);
    return m;
}

RpcMessage
makeLookupReply(uint64_t id, uint64_t generation,
                std::vector<WireLookup> results)
{
    RpcMessage m;
    m.type = MsgType::LookupReply;
    m.id = id;
    m.generation = generation;
    m.lookups = std::move(results);
    return m;
}

RpcMessage
makeUpdateRequest(uint64_t id, std::vector<Update> updates)
{
    RpcMessage m;
    m.type = MsgType::UpdateRequest;
    m.id = id;
    m.updates = std::move(updates);
    return m;
}

RpcMessage
makeUpdateReply(uint64_t id, uint64_t durable_seq,
                std::vector<WireAck> acks)
{
    RpcMessage m;
    m.type = MsgType::UpdateReply;
    m.id = id;
    m.durableSeq = durable_seq;
    m.acks = std::move(acks);
    return m;
}

RpcMessage
makePing(uint64_t id)
{
    RpcMessage m;
    m.type = MsgType::Ping;
    m.id = id;
    return m;
}

RpcMessage
makePong(uint64_t id, uint8_t health, bool draining,
         uint64_t generation, uint64_t routes)
{
    RpcMessage m;
    m.type = MsgType::Pong;
    m.id = id;
    m.health = health;
    m.draining = draining;
    m.generation = generation;
    m.routes = routes;
    return m;
}

RpcMessage
makeStatus(uint64_t id, StatusCode code, uint64_t retry_after_ms)
{
    RpcMessage m;
    m.type = MsgType::Status;
    m.id = id;
    m.statusCode = code == StatusCode::Overloaded ||
                           code == StatusCode::Draining ||
                           code == StatusCode::BadRequest
                       ? static_cast<uint8_t>(code)
                       : static_cast<uint8_t>(StatusCode::BadRequest);
    m.retryAfterMs = retry_after_ms;
    return m;
}

// ---- MessageReader ---------------------------------------------------

void
MessageReader::feed(const uint8_t *data, size_t len)
{
    if (bad_)
        return;
    // Compact the consumed prefix before it dominates the buffer.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

void
MessageReader::poison(const std::string &why)
{
    bad_ = true;
    error_ = why;
    buf_.clear();
    pos_ = 0;
}

bool
MessageReader::next(RpcMessage &out)
{
    if (bad_)
        return false;
    size_t avail = buf_.size() - pos_;
    if (avail < 8)
        return false;

    const uint8_t *head = buf_.data() + pos_;
    persist::Decoder header(head, 8);
    uint32_t len = header.u32();
    uint32_t crc = header.u32();
    if (len > kMaxRpcPayload) {
        poison("message length " + std::to_string(len) +
               " exceeds limit");
        return false;
    }
    if (avail < 8 + static_cast<size_t>(len))
        return false;

    const uint8_t *payload = head + 8;
    if (persist::crc32(payload, len) != crc) {
        poison("message CRC mismatch");
        return false;
    }

    try {
        persist::Decoder d(payload, len);
        RpcMessage m;
        uint8_t type = d.u8();
        m.id = d.u64();
        switch (static_cast<MsgType>(type)) {
          case MsgType::LookupRequest: {
            m.type = MsgType::LookupRequest;
            uint32_t n = d.u32();
            if (n > kMaxRpcBatch)
                throw persist::DecodeError("lookup batch too large");
            d.need(size_t(n) * 16);
            m.keys.reserve(n);
            for (uint32_t i = 0; i < n; ++i)
                m.keys.push_back(d.key());
            break;
          }
          case MsgType::LookupReply: {
            m.type = MsgType::LookupReply;
            m.generation = d.u64();
            uint32_t n = d.u32();
            if (n > kMaxRpcBatch)
                throw persist::DecodeError("lookup reply too large");
            d.need(size_t(n) * 6);
            m.lookups.reserve(n);
            for (uint32_t i = 0; i < n; ++i) {
                WireLookup r;
                r.found = d.boolean();
                r.nextHop = d.u32();
                r.matchedLength = d.u8();
                m.lookups.push_back(r);
            }
            break;
          }
          case MsgType::UpdateRequest: {
            m.type = MsgType::UpdateRequest;
            uint32_t n = d.u32();
            if (n > kMaxRpcBatch)
                throw persist::DecodeError("update batch too large");
            d.need(size_t(n) * 26);
            m.updates.reserve(n);
            for (uint32_t i = 0; i < n; ++i) {
                Update u;
                uint8_t kind = d.u8();
                if (kind > static_cast<uint8_t>(UpdateKind::Expire))
                    throw persist::DecodeError("unknown update kind");
                u.kind = static_cast<UpdateKind>(kind);
                u.prefix = d.prefix();
                u.nextHop = d.u32();
                u.ttlMs = d.u32();
                m.updates.push_back(u);
            }
            break;
          }
          case MsgType::UpdateReply: {
            m.type = MsgType::UpdateReply;
            m.durableSeq = d.u64();
            uint32_t n = d.u32();
            if (n > kMaxRpcBatch)
                throw persist::DecodeError("update reply too large");
            d.need(size_t(n) * 11);
            m.acks.reserve(n);
            for (uint32_t i = 0; i < n; ++i) {
                WireAck a;
                a.acked = d.boolean();
                a.status = d.u8();
                a.cls = d.u8();
                a.seq = d.u64();
                m.acks.push_back(a);
            }
            break;
          }
          case MsgType::Ping:
            m.type = MsgType::Ping;
            break;
          case MsgType::Pong:
            m.type = MsgType::Pong;
            m.health = d.u8();
            m.draining = d.boolean();
            m.generation = d.u64();
            m.routes = d.u64();
            break;
          case MsgType::Status: {
            m.type = MsgType::Status;
            uint8_t code = d.u8();
            if (code < static_cast<uint8_t>(StatusCode::Overloaded) ||
                code > static_cast<uint8_t>(StatusCode::BadRequest))
                throw persist::DecodeError("unknown status code");
            m.statusCode = code;
            m.retryAfterMs = d.u64();
            break;
          }
          default:
            poison("unknown message type " + std::to_string(type));
            return false;
        }
        // Every message type has fixed-shape fields: the payload must
        // be consumed exactly, or the frame was tampered with.
        if (!d.atEnd()) {
            poison("trailing bytes after " +
                   std::string(msgTypeName(m.type)) + " message");
            return false;
        }
        pos_ += 8 + len;
        out = std::move(m);
        return true;
    } catch (const persist::DecodeError &e) {
        poison(std::string("malformed message payload: ") + e.what());
        return false;
    }
}

} // namespace chisel::net
