#include "net/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.hh"
#include "common/logging.hh"
#include "concurrent/concurrent_engine.hh"
#include "core/update_outcome.hh"
#include "fault/fault.hh"
#include "net/socket.hh"
#include "persist/journal.hh"
#include "shard/sharded.hh"
#include "telemetry/flight.hh"
#include "telemetry/metrics.hh"

namespace chisel::net {

namespace {

/** Per-event read budget: don't let one firehose starve the rest. */
constexpr size_t kReadBurstBytes = 64 * 1024;

/** Resume reading once a paused connection drains to half its bound. */
constexpr size_t kResumeDivisor = 2;

uint64_t
msToNs(int ms)
{
    return static_cast<uint64_t>(ms) * 1000000ull;
}

} // anonymous namespace

ChiselService::ChiselService(concurrent::ConcurrentChisel &engine,
                             persist::UpdateJournal *journal,
                             const ServiceOptions &options)
    : engine_(&engine), sharded_(nullptr), journal_(journal),
      options_(options),
      // The service has no queue to watermark; capacity 16 only seeds
      // sane (unused) defaults for the tryAdmit-only controller.
      admission_(options.admission, 16)
{}

ChiselService::ChiselService(shard::ShardedChisel &sharded,
                             const ServiceOptions &options)
    // No service-level journal: the sharded layer's per-shard hooks
    // append inside each shard's writer lock, and the ack gate reads
    // each shard's durable head instead (serveShardedUpdate).
    : engine_(nullptr), sharded_(&sharded), journal_(nullptr),
      options_(options), admission_(options.admission, 16)
{}

ChiselService::~ChiselService()
{
    stop();
}

bool
ChiselService::start()
{
    if (thread_.joinable()) {
        warn("service already started on port " + std::to_string(port_));
        return false;
    }
    listenFd_ = listenLoopback(options_.port, 64, &port_);
    if (listenFd_ < 0) {
        warn("service: cannot listen on 127.0.0.1:" +
             std::to_string(options_.port) + ": " +
             std::string(std::strerror(errno)));
        return false;
    }
    setNonBlocking(listenFd_);

    epollFd_ = ::epoll_create1(0);
    if (epollFd_ < 0 || ::pipe(wakeFd_) != 0) {
        warn("service: epoll/pipe setup failed: " +
             std::string(std::strerror(errno)));
        closeFd(listenFd_);
        closeFd(epollFd_);
        listenFd_ = epollFd_ = -1;
        return false;
    }
    setNonBlocking(wakeFd_[0]);
    setNonBlocking(wakeFd_[1]);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = wakeFd_[0];
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_[0], &ev);

    stopRequested_.store(false, std::memory_order_release);
    drainRequested_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
    inform("chisel service listening on 127.0.0.1:" +
           std::to_string(port_));
    return true;
}

void
ChiselService::stop()
{
    if (!thread_.joinable())
        return;
    stopRequested_.store(true, std::memory_order_release);
    [[maybe_unused]] ssize_t n = ::write(wakeFd_[1], "s", 1);
    thread_.join();
    closeFd(listenFd_);
    closeFd(epollFd_);
    closeFd(wakeFd_[0]);
    closeFd(wakeFd_[1]);
    listenFd_ = epollFd_ = wakeFd_[0] = wakeFd_[1] = -1;
    running_.store(false, std::memory_order_release);
}

void
ChiselService::requestDrain()
{
    // Async-signal-safe: one atomic store and one write(2).
    drainRequested_.store(true, std::memory_order_release);
    [[maybe_unused]] ssize_t n = ::write(wakeFd_[1], "d", 1);
}

void
ChiselService::induceHealth(health::HealthState state, int duration_ms)
{
    inducedUntilNs_.store(monotonicNowNs() + msToNs(duration_ms),
                          std::memory_order_relaxed);
    inducedState_.store(static_cast<uint8_t>(state),
                        std::memory_order_release);
}

health::HealthState
ChiselService::effectiveHealth() const
{
    uint8_t induced = inducedState_.load(std::memory_order_acquire);
    if (induced != static_cast<uint8_t>(health::HealthState::kCount) &&
        monotonicNowNs() <
            inducedUntilNs_.load(std::memory_order_relaxed))
        return static_cast<health::HealthState>(induced);
    // Sharded: the whole-plane view is majority-ruled — one sick
    // shard must not shed its siblings' traffic (per-shard shedding
    // happens at the serve sites).
    if (sharded_ != nullptr)
        return sharded_->aggregateHealth();
    return engine_->healthState();
}

uint64_t
ChiselService::engineGeneration() const
{
    return sharded_ != nullptr ? sharded_->generation()
                               : engine_->generation();
}

size_t
ChiselService::engineRouteCount() const
{
    return sharded_ != nullptr ? sharded_->routeCount()
                               : engine_->routeCount();
}

ServiceStats
ChiselService::stats() const
{
    ServiceStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.refused = refused_.load(std::memory_order_relaxed);
    s.disconnects = disconnects_.load(std::memory_order_relaxed);
    s.activeConnections = s.accepted - s.disconnects;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.lookupKeys = lookupKeys_.load(std::memory_order_relaxed);
    s.updatesApplied = updatesApplied_.load(std::memory_order_relaxed);
    s.acked = acked_.load(std::memory_order_relaxed);
    s.unacked = unacked_.load(std::memory_order_relaxed);
    s.overloaded = overloaded_.load(std::memory_order_relaxed);
    s.shedUpdates = shedUpdates_.load(std::memory_order_relaxed);
    s.badRequests = badRequests_.load(std::memory_order_relaxed);
    s.drainingReplies = drainingReplies_.load(std::memory_order_relaxed);
    s.idleDisconnects = idleDisconnects_.load(std::memory_order_relaxed);
    s.stallDisconnects =
        stallDisconnects_.load(std::memory_order_relaxed);
    s.backpressurePauses =
        backpressurePauses_.load(std::memory_order_relaxed);
    s.drained = drained_.load(std::memory_order_relaxed);
    return s;
}

// ---- Serving loop ----------------------------------------------------

void
ChiselService::serveLoop()
{
    fault::ScopedInjector faults(options_.faultInjector);

    telemetry::Gauge *connGauge = nullptr;
    telemetry::Gauge *drainGauge = nullptr;
    if (options_.metrics != nullptr) {
        connGauge = &options_.metrics->gauge("service.connections");
        drainGauge = &options_.metrics->gauge("service.draining");
    }

    epoll_event events[64];
    while (!stopRequested_.load(std::memory_order_acquire)) {
        if (drainRequested_.load(std::memory_order_acquire)) {
            drainLoop();
            break;
        }
        int n = ::epoll_wait(epollFd_, events, 64, 50);
        uint64_t now = monotonicNowNs();
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_[0]) {
                char buf[64];
                while (::read(wakeFd_[0], buf, sizeof(buf)) > 0) {}
                continue;
            }
            if (fd == listenFd_) {
                acceptReady(now);
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            uint32_t ev = events[i].events;
            if (ev & (EPOLLHUP | EPOLLERR)) {
                disconnect(fd, DisconnectReason::PeerClosed);
                continue;
            }
            if (ev & EPOLLOUT)
                writeReady(it->second, now);
            // writeReady may have disconnected; re-find before reading.
            if ((ev & EPOLLIN) && conns_.count(fd) != 0)
                readReady(conns_.at(fd), now);
        }
        sweepDeadlines(now);
        if (connGauge != nullptr)
            connGauge->set(static_cast<double>(conns_.size()));
        if (drainGauge != nullptr)
            drainGauge->set(0.0);
        if (options_.metrics != nullptr) {
            telemetry::MetricRegistry &m = *options_.metrics;
            m.gauge("service.requests")
                .set(double(requests_.load(std::memory_order_relaxed)));
            m.gauge("service.overloaded")
                .set(double(overloaded_.load(std::memory_order_relaxed)));
            m.gauge("service.shed_updates")
                .set(double(shedUpdates_.load(std::memory_order_relaxed)));
            m.gauge("service.acked")
                .set(double(acked_.load(std::memory_order_relaxed)));
            m.gauge("service.unacked")
                .set(double(unacked_.load(std::memory_order_relaxed)));
            m.gauge("service.backpressure_pauses")
                .set(double(
                    backpressurePauses_.load(std::memory_order_relaxed)));
            m.gauge("service.idle_disconnects")
                .set(double(
                    idleDisconnects_.load(std::memory_order_relaxed)));
            m.gauge("service.stall_disconnects")
                .set(double(
                    stallDisconnects_.load(std::memory_order_relaxed)));
            if (sharded_ != nullptr)
                sharded_->publish(m);
        }
    }

    // Loop exit (hard stop, or drain done): release every fd still
    // open.  Queued replies a drain could not flush are discarded.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto &[fd, conn] : conns_)
        fds.push_back(fd);
    for (int fd : fds)
        disconnect(fd, DisconnectReason::Stopped);
    running_.store(false, std::memory_order_release);
}

void
ChiselService::acceptReady(uint64_t now_ns)
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;   // EAGAIN, or a transient accept failure.
        bool storm = CHISEL_FAULT_FIRE(NetAcceptStorm);
        if (storm || conns_.size() >= options_.maxConnections) {
            // Refusal, not service: close before a single byte.  The
            // client's connect succeeded, so its next read sees EOF
            // and its backoff absorbs the storm.
            ::close(fd);
            refused_.fetch_add(1, std::memory_order_relaxed);
            CHISEL_FLIGHT_EVENT(NetConnection, DisconnectReason::Refused,
                                0, conns_.size());
            continue;
        }
        setNonBlocking(fd);
        setNoDelay(fd);
        Conn conn;
        conn.fd = fd;
        conn.id = nextConnId_++;
        conn.lastActivityNs = now_ns;
        conns_.emplace(fd, std::move(conn));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(NetConnection, 0, conns_.at(fd).id,
                            conns_.size());
    }
}

void
ChiselService::readReady(Conn &conn, uint64_t now_ns)
{
    uint8_t buf[4096];
    size_t taken = 0;
    while (taken < kReadBurstBytes) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.reader.feed(buf, static_cast<size_t>(n));
            taken += static_cast<size_t>(n);
            conn.lastActivityNs = now_ns;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        disconnect(conn.fd, DisconnectReason::PeerClosed);
        return;
    }
    processBuffered(conn, now_ns);
}

void
ChiselService::processBuffered(Conn &conn, uint64_t now_ns)
{
    RpcMessage msg;
    while (pendingOut(conn) <= options_.maxOutputBytes &&
           conn.reader.next(msg))
        dispatch(conn, msg);
    if (conn.reader.bad()) {
        disconnect(conn.fd, DisconnectReason::Protocol);
        return;
    }
    if (!conn.readPaused && pendingOut(conn) > options_.maxOutputBytes) {
        // Backpressure: the peer asked faster than it reads.  Stop
        // reading (requests queue in ITS socket buffer, not our
        // memory) until the output drains.
        conn.readPaused = true;
        backpressurePauses_.fetch_add(1, std::memory_order_relaxed);
    }
    if (pendingOut(conn) > 0 && conn.stallSinceNs == 0)
        conn.stallSinceNs = now_ns;
    updateInterest(conn);
}

void
ChiselService::writeReady(Conn &conn, uint64_t now_ns)
{
    if (CHISEL_FAULT_FIRE(NetStalledPeer)) {
        // Model a zero-window peer: accept nothing this round.  The
        // stall deadline keeps running and eventually cuts the cord.
        return;
    }
    size_t pending = pendingOut(conn);
    if (pending == 0) {
        updateInterest(conn);
        return;
    }
    if (CHISEL_FAULT_FIRE(NetMidFrameReset)) {
        // Die mid-frame: push an honest prefix of the next frame out,
        // then hard-close.  The client's reader sees a truncated
        // frame at the EOF and treats the connection as poisoned.
        size_t part = std::max<size_t>(1, pending / 2);
        (void)::send(conn.fd, conn.out.data() + conn.outPos, part,
                     MSG_NOSIGNAL);
        disconnect(conn.fd, DisconnectReason::MidFrameReset);
        return;
    }
    size_t want = pending;
    if (CHISEL_FAULT_FIRE(NetPartialWrite))
        want = std::max<size_t>(1, pending / 3);
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.outPos, want,
                       MSG_NOSIGNAL);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == EINTR) {
            if (conn.stallSinceNs == 0)
                conn.stallSinceNs = now_ns;
            return;
        }
        disconnect(conn.fd, DisconnectReason::PeerClosed);
        return;
    }
    conn.outPos += static_cast<size_t>(n);
    conn.lastActivityNs = now_ns;
    conn.stallSinceNs = pendingOut(conn) > 0 ? now_ns : 0;
    if (conn.outPos == conn.out.size()) {
        conn.out.clear();
        conn.outPos = 0;
    } else if (conn.outPos > 65536 &&
               conn.outPos > conn.out.size() / 2) {
        conn.out.erase(conn.out.begin(),
                       conn.out.begin() +
                           static_cast<long>(conn.outPos));
        conn.outPos = 0;
    }
    if (conn.readPaused &&
        pendingOut(conn) <=
            options_.maxOutputBytes / kResumeDivisor) {
        conn.readPaused = false;
        processBuffered(conn, now_ns);
        if (conns_.count(conn.fd) == 0)
            return;   // processBuffered may disconnect.
    }
    updateInterest(conn);
}

void
ChiselService::updateInterest(Conn &conn)
{
    bool draining = drainRequested_.load(std::memory_order_acquire);
    epoll_event ev{};
    ev.events = 0;
    if (!conn.readPaused && !draining)
        ev.events |= EPOLLIN;
    bool wantWrite = pendingOut(conn) > 0;
    if (wantWrite)
        ev.events |= EPOLLOUT;
    conn.wantWrite = wantWrite;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
ChiselService::disconnect(int fd, DisconnectReason reason)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    CHISEL_FLIGHT_EVENT(NetConnection, reason, it->second.id,
                        conns_.size() - 1);
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    if (reason == DisconnectReason::IdleTimeout)
        idleDisconnects_.fetch_add(1, std::memory_order_relaxed);
    else if (reason == DisconnectReason::WriteStall)
        stallDisconnects_.fetch_add(1, std::memory_order_relaxed);
}

void
ChiselService::sweepDeadlines(uint64_t now_ns)
{
    uint64_t idleNs = msToNs(options_.idleTimeoutMs);
    uint64_t stallNs = msToNs(options_.writeStallMs);
    std::vector<std::pair<int, DisconnectReason>> doomed;
    for (const auto &[fd, conn] : conns_) {
        if (conn.stallSinceNs != 0 && pendingOut(conn) > 0 &&
            now_ns - conn.stallSinceNs > stallNs)
            doomed.emplace_back(fd, DisconnectReason::WriteStall);
        else if (now_ns - conn.lastActivityNs > idleNs)
            doomed.emplace_back(fd, DisconnectReason::IdleTimeout);
    }
    for (auto [fd, reason] : doomed)
        disconnect(fd, reason);
}

// ---- Request dispatch ------------------------------------------------

void
ChiselService::enqueueReply(Conn &conn, const RpcMessage &msg)
{
    std::vector<uint8_t> wire = encodeMessage(msg);
    conn.out.insert(conn.out.end(), wire.begin(), wire.end());
}

void
ChiselService::dispatch(Conn &conn, RpcMessage &msg)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    CHISEL_FLIGHT_EVENT(NetRequest, msg.type, conn.id,
                        std::max(msg.keys.size(), msg.updates.size()));
    switch (msg.type) {
      case MsgType::LookupRequest:
        enqueueReply(conn, serveLookup(msg));
        return;
      case MsgType::UpdateRequest:
        enqueueReply(conn, serveUpdate(msg));
        return;
      case MsgType::Ping:
        enqueueReply(
            conn,
            makePong(msg.id,
                     static_cast<uint8_t>(effectiveHealth()),
                     drainRequested_.load(std::memory_order_acquire),
                     engineGeneration(),
                     engineRouteCount()));
        return;
      default:
        // A reply type from a client is well-framed nonsense.
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        enqueueReply(conn, makeStatus(msg.id, StatusCode::BadRequest, 0));
        return;
    }
}

RpcMessage
ChiselService::serveLookup(const RpcMessage &req)
{
    health::HealthState h = effectiveHealth();
    if (h == health::HealthState::Degraded ||
        h == health::HealthState::Quarantined) {
        // Fail fast instead of queuing behind a sick engine: the
        // client's deadline stays intact and its backoff spreads the
        // retry load (docs/service.md).
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(NetShed, h, req.id,
                            MsgType::LookupRequest);
        return makeStatus(req.id, StatusCode::Overloaded,
                          options_.retryAfterMs);
    }
    if (req.keys.empty()) {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        return makeStatus(req.id, StatusCode::BadRequest, 0);
    }
    if (sharded_ != nullptr) {
        // Per-shard containment: fail fast only when a targeted
        // shard is sick — requests whose keys all land on healthy
        // shards serve even while a sibling is quarantined.
        for (const Key128 &key : req.keys) {
            size_t s = sharded_->shardOf(key);
            if (!sharded_->shardServing(s)) {
                overloaded_.fetch_add(1, std::memory_order_relaxed);
                CHISEL_FLIGHT_EVENT(NetShed, sharded_->shardHealth(s),
                                    req.id, MsgType::LookupRequest);
                return makeStatus(req.id, StatusCode::Overloaded,
                                  options_.retryAfterMs);
            }
        }
    }
    std::vector<WireLookup> results;
    results.reserve(req.keys.size());
    uint64_t generation = engineGeneration();
    for (const Key128 &key : req.keys) {
        LookupResult r = sharded_ != nullptr ? sharded_->lookup(key)
                                             : engine_->lookup(key);
        WireLookup w;
        w.found = r.found;
        w.nextHop = r.nextHop;
        w.matchedLength = static_cast<uint8_t>(r.matchedLength);
        results.push_back(w);
    }
    lookupKeys_.fetch_add(req.keys.size(), std::memory_order_relaxed);
    return makeLookupReply(req.id, generation, std::move(results));
}

RpcMessage
ChiselService::serveUpdate(const RpcMessage &req)
{
    if (drainRequested_.load(std::memory_order_acquire)) {
        // Updates during drain are refused: the final snapshot must
        // cover everything this process ever acked.
        drainingReplies_.fetch_add(1, std::memory_order_relaxed);
        return makeStatus(req.id, StatusCode::Draining,
                          options_.retryAfterMs);
    }
    health::HealthState h = effectiveHealth();
    if (h != health::HealthState::Healthy &&
        h != health::HealthState::Recovering) {
        // Shed updates before lookups: Stressed already refuses
        // writes while reads still serve; Degraded/Quarantined
        // refuse everything.
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        shedUpdates_.fetch_add(req.updates.size(),
                               std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(NetShed, h, req.id,
                            MsgType::UpdateRequest);
        return makeStatus(req.id, StatusCode::Overloaded,
                          options_.retryAfterMs);
    }
    if (req.updates.empty()) {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        return makeStatus(req.id, StatusCode::BadRequest, 0);
    }
    for (const Update &u : req.updates) {
        if (u.kind == UpdateKind::Expire) {
            // Expire is the engine's own GC verdict, never a client
            // request — accepting it would let a client fake TTL
            // history.
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            return makeStatus(req.id, StatusCode::BadRequest, 0);
        }
    }
    if (sharded_ != nullptr)
        return serveShardedUpdate(req);
    for (const Update &u : req.updates) {
        if (!admission_.tryAdmit(u.kind)) {
            overloaded_.fetch_add(1, std::memory_order_relaxed);
            shedUpdates_.fetch_add(req.updates.size(),
                                   std::memory_order_relaxed);
            CHISEL_FLIGHT_EVENT(NetShed, h, req.id,
                                MsgType::UpdateRequest);
            return makeStatus(req.id, StatusCode::Overloaded,
                              options_.retryAfterMs);
        }
    }

    std::vector<WireAck> acks;
    acks.reserve(req.updates.size());
    uint64_t maxSeq = 0;
    for (const Update &u : req.updates) {
        WireAck a;
        if (journal_ != nullptr) {
            a.seq = journal_->append(u);
            if (a.seq == 0) {
                // The journal refused (I/O failure latched): state
                // must not run ahead of the durable history, so the
                // update is NOT applied either.
                acks.push_back(a);
                continue;
            }
            maxSeq = a.seq;
        }
        UpdateOutcome outcome = engine_->apply(u);
        updatesApplied_.fetch_add(1, std::memory_order_relaxed);
        a.status = static_cast<uint8_t>(outcome.status);
        a.cls = static_cast<uint8_t>(outcome.cls);
        if (journal_ != nullptr)
            journal_->appendOutcome(a.seq, outcome);
        acks.push_back(a);
    }

    // The ack gate: one fsync for the whole batch, then ack exactly
    // the records the durable head covers.  A torn write or a failed
    // sync leaves lastDurableSeq() behind, and those updates go back
    // to the client un-acked (docs/service.md).
    uint64_t durableSeq = 0;
    if (journal_ != nullptr) {
        if (maxSeq != 0)
            journal_->ensureDurable(maxSeq);
        durableSeq = journal_->lastDurableSeq();
    }
    for (WireAck &a : acks) {
        a.acked = a.seq != 0 && a.seq <= durableSeq;
        if (a.acked)
            acked_.fetch_add(1, std::memory_order_relaxed);
        else
            unacked_.fetch_add(1, std::memory_order_relaxed);
    }
    return makeUpdateReply(req.id, durableSeq, std::move(acks));
}

RpcMessage
ChiselService::serveShardedUpdate(const RpcMessage &req)
{
    // Per-shard shedding matrix: refuse the request when ANY update
    // targets a shard that isn't accepting writes (Stressed sheds
    // writes while reads still serve; Degraded/Quarantined refuse
    // everything; a broadcast needs every shard writable).  Updates
    // bound only for healthy shards sail through a sibling's
    // quarantine untouched.
    for (const Update &u : req.updates) {
        size_t target = sharded_->shardOf(u.prefix);
        size_t lo = target == shard::ShardedChisel::kBroadcast
                        ? 0
                        : target;
        size_t hi = target == shard::ShardedChisel::kBroadcast
                        ? sharded_->shards()
                        : target + 1;
        for (size_t s = lo; s < hi; ++s) {
            health::HealthState h = sharded_->shardHealth(s);
            if (h != health::HealthState::Healthy &&
                h != health::HealthState::Recovering) {
                overloaded_.fetch_add(1, std::memory_order_relaxed);
                shedUpdates_.fetch_add(req.updates.size(),
                                       std::memory_order_relaxed);
                CHISEL_FLIGHT_EVENT(NetShed, h, req.id,
                                    MsgType::UpdateRequest);
                return makeStatus(req.id, StatusCode::Overloaded,
                                  options_.retryAfterMs);
            }
        }
    }
    for (const Update &u : req.updates) {
        if (!admission_.tryAdmit(u.kind)) {
            overloaded_.fetch_add(1, std::memory_order_relaxed);
            shedUpdates_.fetch_add(req.updates.size(),
                                   std::memory_order_relaxed);
            CHISEL_FLIGHT_EVENT(NetShed, health::HealthState::Healthy,
                                req.id, MsgType::UpdateRequest);
            return makeStatus(req.id, StatusCode::Overloaded,
                              options_.retryAfterMs);
        }
    }

    // Apply through the sharded facade: each shard's journal hook
    // assigns its seq inside that shard's writer lock.  Remember the
    // high-water seq per touched shard for one batched fsync each.
    std::vector<WireAck> acks;
    acks.reserve(req.updates.size());
    std::vector<std::vector<shard::ShardedChisel::ShardSeq>> parts;
    parts.reserve(req.updates.size());
    std::vector<uint64_t> maxSeq(sharded_->shards(), 0);
    for (const Update &u : req.updates) {
        shard::ShardedChisel::ApplyResult r = sharded_->apply(u);
        updatesApplied_.fetch_add(1, std::memory_order_relaxed);
        WireAck a;
        a.seq = r.seq;
        a.status = static_cast<uint8_t>(r.outcome.status);
        a.cls = static_cast<uint8_t>(r.outcome.cls);
        acks.push_back(a);
        for (const auto &p : r.parts)
            if (p.seq > maxSeq[p.shard])
                maxSeq[p.shard] = p.seq;
        parts.push_back(std::move(r.parts));
    }

    // The ack gate, per shard: one fsync per touched shard, then ack
    // exactly the updates whose every (shard, seq) part the owning
    // shard's durable head covers.
    std::vector<uint64_t> durable(sharded_->shards(), 0);
    uint64_t replyDurable = 0;
    for (size_t s = 0; s < sharded_->shards(); ++s) {
        if (maxSeq[s] != 0)
            sharded_->ensureDurable(s, maxSeq[s]);
        durable[s] = sharded_->lastDurableSeq(s);
        if (maxSeq[s] != 0 && durable[s] > replyDurable)
            replyDurable = durable[s];
    }
    for (size_t i = 0; i < acks.size(); ++i) {
        bool covered = !parts[i].empty();
        for (const auto &p : parts[i])
            covered = covered && p.seq != 0 && p.seq <= durable[p.shard];
        acks[i].acked = covered;
        if (covered)
            acked_.fetch_add(1, std::memory_order_relaxed);
        else
            unacked_.fetch_add(1, std::memory_order_relaxed);
    }
    return makeUpdateReply(req.id, replyDurable, std::move(acks));
}

// ---- Graceful drain --------------------------------------------------

void
ChiselService::drainLoop()
{
    uint64_t now = monotonicNowNs();
    uint64_t deadline = now + msToNs(options_.drainDeadlineMs);

    // Phase 0: stop accepting, stop reading, but first serve every
    // request that already arrived in full — those clients are owed
    // replies, and the flush below delivers them.
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    size_t queued = 0;
    for (auto &[fd, conn] : conns_) {
        RpcMessage msg;
        while (conn.reader.next(msg))
            dispatch(conn, msg);
        queued += pendingOut(conn);
    }
    CHISEL_FLIGHT_EVENT(NetDrain, 0, conns_.size(), queued);
    // Connections owing nothing close now; the rest flush below.
    std::vector<int> done;
    for (auto &[fd, conn] : conns_) {
        if (pendingOut(conn) == 0)
            done.push_back(fd);
        else
            updateInterest(conn);
    }
    for (int fd : done)
        disconnect(fd, DisconnectReason::Drained);

    // Phase 1: flush queued replies under the drain deadline.
    epoll_event events[64];
    bool flushed = true;
    while (!conns_.empty()) {
        now = monotonicNowNs();
        if (now >= deadline ||
            stopRequested_.load(std::memory_order_acquire)) {
            flushed = conns_.empty();
            break;
        }
        int timeout = static_cast<int>(
            std::min<uint64_t>((deadline - now) / 1000000ull + 1, 50));
        int n = ::epoll_wait(epollFd_, events, 64, timeout);
        now = monotonicNowNs();
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_[0]) {
                char buf[64];
                while (::read(wakeFd_[0], buf, sizeof(buf)) > 0) {}
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                disconnect(fd, DisconnectReason::PeerClosed);
                continue;
            }
            if (events[i].events & EPOLLOUT) {
                writeReady(it->second, now);
                auto again = conns_.find(fd);
                if (again != conns_.end() &&
                    pendingOut(again->second) == 0)
                    disconnect(fd, DisconnectReason::Drained);
            }
        }
        sweepDeadlines(now);
    }
    CHISEL_FLIGHT_EVENT(NetDrain, 1, conns_.size(), 0);

    // Phase 2: the final snapshot — the durable state a warm restart
    // resumes from without replaying the whole journal.  Sharded
    // planes snapshot every shard into its own lane (each stamped
    // with its journal seq and marked); the drainSnapshotPath knob is
    // the single-engine form.
    if (sharded_ != nullptr) {
        sharded_->saveSnapshots();
    } else if (!options_.drainSnapshotPath.empty()) {
        engine_->saveSnapshot(options_.drainSnapshotPath);
        if (journal_ != nullptr)
            journal_->appendSnapshotMark(journal_->lastSeq());
    }
    if (journal_ != nullptr)
        journal_->sync();
    drained_.store(flushed, std::memory_order_relaxed);
    CHISEL_FLIGHT_EVENT(NetDrain, 2, conns_.size(), flushed);
}

} // namespace chisel::net
