/**
 * @file
 * Relaxed-atomic counter and flag types for shared statistics.
 *
 * The engine's hot paths are read by N lookup threads while one
 * writer (and the background scrubber) mutates state elsewhere, so
 * every counter that lookups bump — access tallies, parity-detection
 * counts, telemetry counters — must be free of data races without
 * adding contention.  RelaxedU64 wraps std::atomic<uint64_t> with
 * memory_order_relaxed everywhere and the arithmetic surface of a
 * plain uint64_t (++, +=, comparison, stream output), so the counter
 * structs keep their existing call sites while becoming safe to bump
 * from any thread.
 *
 * Relaxed ordering is deliberate: these are monotone statistics, not
 * synchronization.  Exporters that need a *coherent* multi-counter
 * snapshot take one under the writer lock (docs/concurrency.md); a
 * single counter read is always an actual value the counter held.
 *
 * Unlike std::atomic, both types are copyable — counter structs are
 * returned by value and reset by assignment — with the copy reading
 * and writing relaxed.
 */

#ifndef CHISEL_CONCURRENT_RELAXED_HH
#define CHISEL_CONCURRENT_RELAXED_HH

#include <atomic>
#include <cstdint>
#include <ostream>

namespace chisel::concurrent {

/** Copyable atomic uint64_t with relaxed operations throughout. */
class RelaxedU64
{
  public:
    RelaxedU64(uint64_t v = 0) : value_(v) {}

    RelaxedU64(const RelaxedU64 &other)
        : value_(other.load())
    {}

    RelaxedU64 &
    operator=(const RelaxedU64 &other)
    {
        store(other.load());
        return *this;
    }

    RelaxedU64 &
    operator=(uint64_t v)
    {
        store(v);
        return *this;
    }

    uint64_t
    load() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    store(uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Relaxed fetch-add; returns the *new* value. */
    uint64_t
    add(uint64_t n)
    {
        return value_.fetch_add(n, std::memory_order_relaxed) + n;
    }

    RelaxedU64 &
    operator+=(uint64_t n)
    {
        add(n);
        return *this;
    }

    RelaxedU64 &
    operator-=(uint64_t n)
    {
        value_.fetch_sub(n, std::memory_order_relaxed);
        return *this;
    }

    RelaxedU64 &
    operator++()
    {
        add(1);
        return *this;
    }

    uint64_t operator++(int) { return add(1) - 1; }

    operator uint64_t() const { return load(); }

  private:
    std::atomic<uint64_t> value_;
};

inline std::ostream &
operator<<(std::ostream &os, const RelaxedU64 &c)
{
    return os << c.load();
}

/** Copyable atomic bool, relaxed by default with explicit variants. */
class RelaxedFlag
{
  public:
    RelaxedFlag(bool v = false) : value_(v) {}

    RelaxedFlag(const RelaxedFlag &other)
        : value_(other.load())
    {}

    RelaxedFlag &
    operator=(const RelaxedFlag &other)
    {
        store(other.load());
        return *this;
    }

    RelaxedFlag &
    operator=(bool v)
    {
        store(v);
        return *this;
    }

    bool
    load(std::memory_order order = std::memory_order_relaxed) const
    {
        return value_.load(order);
    }

    void
    store(bool v, std::memory_order order = std::memory_order_relaxed)
    {
        value_.store(v, order);
    }

    operator bool() const { return load(); }

  private:
    std::atomic<bool> value_;
};

} // namespace chisel::concurrent

#endif // CHISEL_CONCURRENT_RELAXED_HH
