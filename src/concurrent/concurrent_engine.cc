#include "concurrent/concurrent_engine.hh"

#include <utility>

#include "common/logging.hh"
#include "persist/snapshot.hh"

namespace chisel::concurrent {

ConcurrentChisel::ConcurrentChisel(const RoutingTable &initial,
                                   const ChiselConfig &config,
                                   const ConcurrentOptions &options)
    : config_(config), options_(options),
      queue_(options.updateQueueCapacity)
{
    // Both images are built from the same table with the same config
    // and seed, so they are identical by construction; the update
    // protocol keeps them that way.
    images_[0].engine = std::make_unique<ChiselEngine>(initial, config);
    images_[1].engine = std::make_unique<ChiselEngine>(initial, config);
    live_.store(&images_[0], std::memory_order_release);

    if (options_.controlThread)
        controlThread_ = std::thread([this] { controlLoop(); });
    if (options_.scrubInterval.count() > 0)
        scrubThread_ = std::thread([this] { scrubLoop(); });
}

ConcurrentChisel::~ConcurrentChisel()
{
    stop_.store(true, std::memory_order_release);
    if (controlThread_.joinable())
        controlThread_.join();
    if (scrubThread_.joinable())
        scrubThread_.join();
}

// ---- Read side -------------------------------------------------------------

LookupResult
ConcurrentChisel::lookup(const Key128 &key) const
{
    EpochManager::ReadGuard guard(epochs_);
    const Image *img = live_.load(std::memory_order_acquire);
    return img->engine->lookup(key);
}

TaggedLookup
ConcurrentChisel::lookupTagged(const Key128 &key) const
{
    EpochManager::ReadGuard guard(epochs_);
    const Image *img = live_.load(std::memory_order_acquire);
    TaggedLookup out;
    // The generation was stamped before the image was published and
    // never changes while the image is live, so this relaxed load is
    // ordered by the acquire on the pointer.
    out.generation = img->generation.load(std::memory_order_relaxed);
    out.result = img->engine->lookup(key);
    return out;
}

uint64_t
ConcurrentChisel::generation() const
{
    const Image *img = live_.load(std::memory_order_acquire);
    return img->generation.load(std::memory_order_relaxed);
}

// ---- Write side ------------------------------------------------------------

ConcurrentChisel::Image &
ConcurrentChisel::idleImage()
{
    Image *l = live_.load(std::memory_order_relaxed);
    return l == &images_[0] ? images_[1] : images_[0];
}

const ConcurrentChisel::Image &
ConcurrentChisel::idleImage() const
{
    const Image *l = live_.load(std::memory_order_relaxed);
    return l == &images_[0] ? images_[1] : images_[0];
}

void
ConcurrentChisel::publish(Image &image)
{
    live_.store(&image, std::memory_order_release);
    // Grace period: every reader that might still be inside the old
    // image finishes before the caller mutates it.
    epochs_.synchronize();
}

UpdateOutcome
ConcurrentChisel::applyLocked(const Update &update)
{
    Image &idle = idleImage();

    // 1. Mutate the image no reader can see.
    UpdateOutcome outcome = idle.engine->apply(update);
    uint64_t gen =
        updatesApplied_.fetch_add(1, std::memory_order_relaxed) + 1;
    idle.generation.store(gen, std::memory_order_relaxed);

    // 2. One atomic flip + grace period...
    publish(idle);

    // 3. ...then fold the same update into the retired image, keeping
    // the pair in lockstep.  Fault injection is thread-local and
    // polled once per apply, so an armed injector on this thread
    // could fire on one image only and diverge the pair — the scrub
    // pass reconverges them, and the stress tests arm injectors on
    // non-writer threads only.
    Image &retired = idleImage();
    retired.engine->apply(update);
    retired.generation.store(gen, std::memory_order_relaxed);

    return outcome;
}

UpdateOutcome
ConcurrentChisel::announce(const Prefix &prefix, NextHop next_hop)
{
    return apply(Update{UpdateKind::Announce, prefix, next_hop});
}

UpdateOutcome
ConcurrentChisel::withdraw(const Prefix &prefix)
{
    return apply(Update{UpdateKind::Withdraw, prefix, kNoRoute});
}

UpdateOutcome
ConcurrentChisel::apply(const Update &update)
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return applyLocked(update);
}

// ---- Queued update path ----------------------------------------------------

bool
ConcurrentChisel::post(const Update &update)
{
    if (!options_.controlThread)
        return false;
    if (!queue_.push(update))
        return false;
    posted_.fetch_add(1, std::memory_order_release);
    return true;
}

size_t
ConcurrentChisel::pendingUpdates() const
{
    uint64_t posted = posted_.load(std::memory_order_acquire);
    uint64_t drained = drained_.load(std::memory_order_acquire);
    return static_cast<size_t>(posted - drained);
}

void
ConcurrentChisel::flush()
{
    uint64_t target = posted_.load(std::memory_order_acquire);
    while (drained_.load(std::memory_order_acquire) < target)
        std::this_thread::yield();
}

void
ConcurrentChisel::controlLoop()
{
    for (;;) {
        std::optional<Update> update = queue_.pop();
        if (!update) {
            if (stop_.load(std::memory_order_acquire) && queue_.empty())
                return;
            // Idle: updates are bursty (BGP storms), so sleep rather
            // than burn a core between bursts.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(writerMutex_);
            applyLocked(*update);
        }
        drained_.fetch_add(1, std::memory_order_release);
    }
}

// ---- Scrubbing -------------------------------------------------------------

void
ConcurrentChisel::scrubIdleLocked(ScrubReport &report)
{
    Image &idle = idleImage();
    ScrubReport r = idle.engine->scrub();
    report.wordsChecked += r.wordsChecked;
    report.errorsFound += r.errorsFound;
    report.cellsRecovered += r.cellsRecovered;
}

ScrubReport
ConcurrentChisel::scrubNow()
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    ScrubReport report;

    // Scrub the idle image, make it live, then scrub the other while
    // *it* is idle — one flip covers both sides, and at no point does
    // the scrubber touch a word a reader could be loading.
    scrubIdleLocked(report);
    Image &scrubbed = idleImage();
    scrubbed.generation.store(
        updatesApplied_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    publish(scrubbed);
    scrubIdleLocked(report);

    scrubPasses_.fetch_add(1, std::memory_order_relaxed);
    return report;
}

uint64_t
ConcurrentChisel::scrubPasses() const
{
    return scrubPasses_.load(std::memory_order_relaxed);
}

void
ConcurrentChisel::scrubLoop()
{
    // Sleep in small slices so shutdown never waits a full interval.
    const auto slice = std::chrono::milliseconds(1);
    auto remaining = options_.scrubInterval;
    while (!stop_.load(std::memory_order_acquire)) {
        if (remaining.count() <= 0) {
            scrubNow();
            remaining = options_.scrubInterval;
        }
        std::this_thread::sleep_for(slice);
        remaining -= slice;
    }
}

// ---- Snapshots and rebuilds ------------------------------------------------

size_t
ConcurrentChisel::saveSnapshot(const std::string &path) const
{
    // The idle image equals the live one, so serializing it captures
    // the current state while lookups proceed undisturbed; only the
    // update path waits on the lock.
    std::lock_guard<std::mutex> lock(writerMutex_);
    const Image &idle = idleImage();
    return persist::saveSnapshot(
        path, *idle.engine,
        updatesApplied_.load(std::memory_order_relaxed));
}

bool
ConcurrentChisel::restoreFromSnapshot(const std::string &path)
{
    // Build both replacement engines before taking any reader-visible
    // step; a bad snapshot leaves the serving state untouched.
    persist::SnapshotLoadResult a = persist::loadSnapshot(path, &config_);
    if (a.status != persist::SnapshotLoadStatus::Ok) {
        warn("concurrent restore refused: " + a.error);
        return false;
    }
    persist::SnapshotLoadResult b = persist::loadSnapshot(path, &config_);
    if (b.status != persist::SnapshotLoadStatus::Ok) {
        warn("concurrent restore refused: " + b.error);
        return false;
    }

    std::lock_guard<std::mutex> lock(writerMutex_);
    installPair(std::move(a.engine), std::move(b.engine));
    return true;
}

void
ConcurrentChisel::resetup()
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    RoutingTable table = idleImage().engine->exportTable();
    auto a = std::make_unique<ChiselEngine>(table, config_);
    auto b = std::make_unique<ChiselEngine>(table, config_);
    installPair(std::move(a), std::move(b));
}

void
ConcurrentChisel::installPair(std::unique_ptr<ChiselEngine> a,
                              std::unique_ptr<ChiselEngine> b)
{
    uint64_t gen = updatesApplied_.load(std::memory_order_relaxed);

    // Swap the new engine into the idle slot and flip to it: readers
    // move from the old live image to the fresh one in one step.
    Image &idle = idleImage();
    idle.engine = std::move(a);
    idle.generation.store(gen, std::memory_order_relaxed);
    publish(idle);

    // The grace period has passed: the retired image is unreferenced
    // and its engine can be replaced outright.
    Image &retired = idleImage();
    retired.engine = std::move(b);
    retired.generation.store(gen, std::memory_order_relaxed);
}

// ---- Introspection ---------------------------------------------------------

size_t
ConcurrentChisel::routeCount() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->routeCount();
}

RobustnessCounters
ConcurrentChisel::robustness() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->robustness();
}

AccessCounters
ConcurrentChisel::accessTotals() const
{
    AccessCounters total;
    for (const Image &img : images_) {
        const AccessCounters &c = img.engine->accessCounters();
        total.lookups += c.lookups;
        total.indexSegmentReads += c.indexSegmentReads;
        total.filterReads += c.filterReads;
        total.bitvectorReads += c.bitvectorReads;
        total.resultReads += c.resultReads;
    }
    return total;
}

std::optional<NextHop>
ConcurrentChisel::find(const Prefix &prefix) const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->find(prefix);
}

uint64_t
ConcurrentChisel::updatesApplied() const
{
    return updatesApplied_.load(std::memory_order_relaxed);
}

bool
ConcurrentChisel::selfCheck() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return images_[0].engine->selfCheck() &&
           images_[1].engine->selfCheck();
}

} // namespace chisel::concurrent
