#include "concurrent/concurrent_engine.hh"

#include <optional>
#include <utility>

#include "common/logging.hh"
#include "core/resize.hh"
#include "fault/fault.hh"
#include "persist/snapshot.hh"

namespace chisel::concurrent {

ConcurrentChisel::ConcurrentChisel(const RoutingTable &initial,
                                   const ChiselConfig &config,
                                   const ConcurrentOptions &options)
    : config_(config), options_(options),
      queue_(options.updateQueueCapacity),
      admission_(options.admission, queue_.capacity()),
      monitor_(options.health)
{
    ttlEpoch_ = std::chrono::steady_clock::now();
    // Both images are built from the same table with the same config
    // and seed, so they are identical by construction; the update
    // protocol keeps them that way.
    images_[0].engine = std::make_unique<ChiselEngine>(initial, config);
    images_[1].engine = std::make_unique<ChiselEngine>(initial, config);
    live_.store(&images_[0], std::memory_order_release);

    if (options_.controlThread)
        controlThread_ = std::thread([this] { controlLoop(); });
    if (options_.scrubInterval.count() > 0)
        scrubThread_ = std::thread([this] { scrubLoop(); });
}

ConcurrentChisel::~ConcurrentChisel()
{
    stop_.store(true, std::memory_order_release);
    if (controlThread_.joinable())
        controlThread_.join();
    if (scrubThread_.joinable())
        scrubThread_.join();
}

// ---- Read side -------------------------------------------------------------

LookupResult
ConcurrentChisel::lookup(const Key128 &key) const
{
    EpochManager::ReadGuard guard(epochs_);
    const Image *img = live_.load(std::memory_order_acquire);
    return img->engine->lookup(key);
}

TaggedLookup
ConcurrentChisel::lookupTagged(const Key128 &key) const
{
    EpochManager::ReadGuard guard(epochs_);
    const Image *img = live_.load(std::memory_order_acquire);
    TaggedLookup out;
    // The generation was stamped before the image was published and
    // never changes while the image is live, so this relaxed load is
    // ordered by the acquire on the pointer.
    out.generation = img->generation.load(std::memory_order_relaxed);
    out.result = img->engine->lookup(key);
    return out;
}

uint64_t
ConcurrentChisel::generation() const
{
    const Image *img = live_.load(std::memory_order_acquire);
    return img->generation.load(std::memory_order_relaxed);
}

// ---- Write side ------------------------------------------------------------

ConcurrentChisel::Image &
ConcurrentChisel::idleImage()
{
    Image *l = live_.load(std::memory_order_relaxed);
    return l == &images_[0] ? images_[1] : images_[0];
}

const ConcurrentChisel::Image &
ConcurrentChisel::idleImage() const
{
    const Image *l = live_.load(std::memory_order_relaxed);
    return l == &images_[0] ? images_[1] : images_[0];
}

void
ConcurrentChisel::publish(Image &image)
{
    live_.store(&image, std::memory_order_release);
    CHISEL_FLIGHT_EVENT(PublishFlip, 0,
                        image.generation.load(
                            std::memory_order_relaxed),
                        0);
    // Grace period: every reader that might still be inside the old
    // image finishes before the caller mutates it.
    epochs_.synchronize();
}

UpdateOutcome
ConcurrentChisel::applyLocked(const Update &update)
{
    // Watchdog stamp: a hang anywhere below trips the health monitor
    // past its hysteresis straight into Quarantined.
    monitor_.beginUpdate();

    // Journal first, under the same lock that orders applies: the
    // journal stream and the image mutations agree on order by
    // construction, for posted updates and GC Expires alike.  A
    // refused append (seq 0) rejects the update outright — state must
    // never run ahead of its durability record.
    uint64_t seq = 0;
    if (options_.onJournalUpdate) {
        seq = options_.onJournalUpdate(update);
        if (seq == 0) {
            monitor_.endUpdate();
            UpdateOutcome refused;
            refused.cls = UpdateClass::NoOp;
            refused.status = UpdateStatus::Rejected;
            refused.message = "journal refused the append";
            return refused;
        }
    }

    Image &idle = idleImage();

    // 1. Mutate the image no reader can see.
    UpdateOutcome outcome = idle.engine->apply(update);
    uint64_t gen =
        updatesApplied_.fetch_add(1, std::memory_order_relaxed) + 1;
    idle.generation.store(gen, std::memory_order_relaxed);

    // 2. One atomic flip + grace period...
    publish(idle);

    // 3. ...then fold the same update into the retired image, keeping
    // the pair in lockstep.  Fault injection is thread-local and
    // polled once per apply, so an armed injector on this thread
    // could fire on one image only and diverge the pair — the scrub
    // pass reconverges them, and the stress tests arm injectors on
    // non-writer threads only.
    Image &retired = idleImage();
    retired.engine->apply(update);
    retired.generation.store(gen, std::memory_order_relaxed);

    if (options_.onJournalOutcome && seq != 0)
        options_.onJournalOutcome(seq, outcome);

    monitor_.endUpdate();
    return outcome;
}

UpdateOutcome
ConcurrentChisel::announce(const Prefix &prefix, NextHop next_hop,
                           uint32_t ttl_ms)
{
    return apply(Update{UpdateKind::Announce, prefix, next_hop, ttl_ms});
}

UpdateOutcome
ConcurrentChisel::withdraw(const Prefix &prefix)
{
    return apply(Update{UpdateKind::Withdraw, prefix, kNoRoute});
}

UpdateOutcome
ConcurrentChisel::apply(const Update &update)
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return applyLocked(update);
}

// ---- Queued update path ----------------------------------------------------

bool
ConcurrentChisel::post(const Update &update)
{
    if (!options_.controlThread)
        return false;

    if (!admission_.enabled()) {
        if (!queue_.push(update))
            return false;
        posted_.fetch_add(1, std::memory_order_release);
        return true;
    }

    switch (admission_.offer(update, queue_.size())) {
      case health::AdmissionDecision::Enqueue:
        if (queue_.push(update))
            posted_.fetch_add(1, std::memory_order_release);
        else
            admission_.stage(update);   // Raced to full: park it.
        break;
      case health::AdmissionDecision::Deferred:
      case health::AdmissionDecision::Coalesced:
        break;
    }
    pumpStaged(false);
    return true;   // Admission never drops: queued or staged.
}

void
ConcurrentChisel::pumpStaged(bool force)
{
    size_t depth = queue_.size();
    size_t cap = queue_.capacity();
    size_t room = depth < cap ? cap - depth : 0;
    for (const Update &u : admission_.drain(depth, room, force)) {
        if (queue_.push(u))
            posted_.fetch_add(1, std::memory_order_release);
        else
            admission_.stage(u);   // Queue refilled under us: re-park.
    }
}

size_t
ConcurrentChisel::pendingUpdates() const
{
    uint64_t posted = posted_.load(std::memory_order_acquire);
    uint64_t drained = drained_.load(std::memory_order_acquire);
    return static_cast<size_t>(posted - drained);
}

void
ConcurrentChisel::flush()
{
    // Force the stage out first; the queue may not have room for all
    // of it at once, so alternate pumping with waiting for the drain.
    while (admission_.stagedCount() > 0) {
        pumpStaged(true);
        uint64_t target = posted_.load(std::memory_order_acquire);
        while (drained_.load(std::memory_order_acquire) < target)
            std::this_thread::yield();
    }
    uint64_t target = posted_.load(std::memory_order_acquire);
    while (drained_.load(std::memory_order_acquire) < target)
        std::this_thread::yield();
}

void
ConcurrentChisel::controlLoop()
{
    // Chaos runs arm faults on the queued apply path only: the
    // injector lives in this thread's slot, readers stay clean.
    std::optional<fault::ScopedInjector> inject;
    if (options_.controlFaultInjector != nullptr)
        inject.emplace(options_.controlFaultInjector);

    auto next_health =
        std::chrono::steady_clock::now() + options_.healthInterval;
    auto next_gc =
        std::chrono::steady_clock::now() + options_.gcInterval;

    for (;;) {
        std::optional<Update> update = queue_.pop();
        if (!update) {
            if (stop_.load(std::memory_order_acquire) && queue_.empty())
                return;
            // Idle: updates are bursty (BGP storms), so sleep rather
            // than burn a core between bursts.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
            {
                std::lock_guard<std::mutex> lock(writerMutex_);
                applyLocked(*update);
            }
            drained_.fetch_add(1, std::memory_order_release);
        }

        if (options_.healthMonitor) {
            auto now = std::chrono::steady_clock::now();
            if (now >= next_health) {
                healthTick();
                next_health = now + options_.healthInterval;
            }
        }
        if (options_.gcInterval.count() > 0) {
            auto now = std::chrono::steady_clock::now();
            if (now >= next_gc) {
                gcTick();
                next_gc = now + options_.gcInterval;
            }
        }
    }
}

// ---- TTL expiry ------------------------------------------------------------

uint64_t
ConcurrentChisel::ttlNowMs() const
{
    if (!options_.ttlWallClock)
        return ttlManualMs_.load(std::memory_order_acquire);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - ttlEpoch_)
            .count());
}

void
ConcurrentChisel::advanceTtlClock(uint64_t ms)
{
    ttlManualMs_.fetch_add(ms, std::memory_order_acq_rel);
}

size_t
ConcurrentChisel::gcTick(size_t max_batch)
{
    if (max_batch == 0)
        max_batch = options_.gcBatch;

    std::lock_guard<std::mutex> lock(writerMutex_);

    // Move both images' TTL clocks forward so deadlines armed by the
    // next announce use current time, then harvest what is due.  The
    // idle image is a faithful replica of the live one, so its index
    // answers for both.
    uint64_t now = ttlNowMs();
    images_[0].engine->setTtlClock(now);
    images_[1].engine->setTtlClock(now);

    std::vector<Prefix> due;
    idleImage().engine->collectExpired(max_batch, due);

    // Each expiry is a first-class update: journaled via the hooks,
    // counted in its own class, published with the standard flip —
    // warm restarts, audits and replica followers all see GC as part
    // of the ordinary update stream.
    size_t retired = 0;
    for (const Prefix &p : due) {
        UpdateOutcome out =
            applyLocked(Update{UpdateKind::Expire, p, kNoRoute});
        if (out.ok())
            ++retired;
    }
    if (retired > 0) {
        expired_.fetch_add(retired, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(TtlExpire, 0, retired,
                            idleImage().engine->ttlArmed());
    }
    return retired;
}

// ---- Live resize -----------------------------------------------------------

bool
ConcurrentChisel::resizeLocked(const ChiselConfig &grown)
{
    // Build the replacement pair entirely off the serving path; the
    // only reader-visible step is the one pointer flip inside
    // installPair().  Slow-path residents of the old images drain
    // back into the grown tables during construction.
    const ChiselEngine &current = *idleImage().engine;
    RoutingTable table = current.exportTable();
    size_t resident_before = current.slowPathCount();

    auto a = std::make_unique<ChiselEngine>(table, grown);
    auto b = std::make_unique<ChiselEngine>(table, grown);
    a->adoptTtl(current);
    b->adoptTtl(current);

    size_t drained = resident_before > a->slowPathCount()
                         ? resident_before - a->slowPathCount()
                         : 0;

    installPair(std::move(a), std::move(b));
    config_ = grown;

    uint64_t count =
        resizes_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (drained > 0)
        slowPathDrained_.fetch_add(drained,
                                   std::memory_order_relaxed);
    if (options_.onResize)
        options_.onResize(
            grown, updatesApplied_.load(std::memory_order_relaxed));
    CHISEL_FLIGHT_EVENT(ResizePublish, 0, count, drained);
    return true;
}

bool
ConcurrentChisel::resizeNow()
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    const ChiselEngine &engine = *idleImage().engine;
    ResizeLoad load;
    load.routeCount = engine.routeCount();
    load.spillCount = engine.spillCount();
    load.slowPathCount = engine.slowPathCount();
    ChiselConfig grown = planResize(config_, load);
    if (grown == config_)
        return false;   // Already at (or beyond) the planned size.
    return resizeLocked(grown);
}

bool
ConcurrentChisel::resizeTo(const ChiselConfig &target)
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    if (config_ == target)
        return true;    // Follower already adopted this mark.
    if (!elasticCompatible(config_, target)) {
        warn("resizeTo refused: target changes the geometry kernel");
        return false;
    }
    return resizeLocked(target);
}

// ---- Scrubbing -------------------------------------------------------------

void
ConcurrentChisel::scrubIdleLocked(ScrubReport &report)
{
    Image &idle = idleImage();
    ScrubReport r = idle.engine->scrub();
    report.wordsChecked += r.wordsChecked;
    report.errorsFound += r.errorsFound;
    report.cellsRecovered += r.cellsRecovered;
}

ScrubReport
ConcurrentChisel::scrubNow()
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    ScrubReport report;

    // Scrub the idle image, make it live, then scrub the other while
    // *it* is idle — one flip covers both sides, and at no point does
    // the scrubber touch a word a reader could be loading.
    scrubIdleLocked(report);
    Image &scrubbed = idleImage();
    scrubbed.generation.store(
        updatesApplied_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    publish(scrubbed);
    scrubIdleLocked(report);

    scrubPasses_.fetch_add(1, std::memory_order_relaxed);
    return report;
}

uint64_t
ConcurrentChisel::scrubPasses() const
{
    return scrubPasses_.load(std::memory_order_relaxed);
}

void
ConcurrentChisel::scrubLoop()
{
    // Sleep in small slices so shutdown never waits a full interval.
    const auto slice = std::chrono::milliseconds(1);
    auto remaining = options_.scrubInterval;
    while (!stop_.load(std::memory_order_acquire)) {
        if (remaining.count() <= 0) {
            scrubNow();
            remaining = options_.scrubInterval;
        }
        std::this_thread::sleep_for(slice);
        remaining -= slice;
    }
}

// ---- Health ----------------------------------------------------------------

size_t
ConcurrentChisel::purgeDirtyNow()
{
    std::lock_guard<std::mutex> lock(writerMutex_);

    // Same choreography as scrubNow: mutate the idle image, flip,
    // then mutate the other while it is idle — readers never observe
    // a half-purged table.
    Image &idle = idleImage();
    size_t purged = idle.engine->purgeDirty();
    idle.generation.store(updatesApplied_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    publish(idle);
    idleImage().engine->purgeDirty();
    return purged;
}

health::HealthSignals
ConcurrentChisel::collectSignals()
{
    health::HealthSignals sig;
    sig.queueOccupancy =
        double(queue_.size()) / double(queue_.capacity());
    sig.shedEvents = admission_.counters().shedEvents.load();
    sig.watchdogExpired = monitor_.watchdogExpired();

    RobustnessCounters r;
    {
        std::lock_guard<std::mutex> lock(writerMutex_);
        const ChiselEngine &engine = *idleImage().engine;
        r = engine.robustness();
        if (config_.slowPathCapacity > 0)
            sig.slowPathOccupancy = double(engine.slowPathCount()) /
                                    double(config_.slowPathCapacity);
        if (config_.spillCapacity > 0)
            sig.spillOccupancy = double(engine.spillCount()) /
                                 double(config_.spillCapacity);
        if (config_.dirtyBudgetPerCell > 0) {
            double budget = double(config_.dirtyBudgetPerCell) *
                            double(engine.cellCount());
            sig.dirtyOccupancy = double(engine.dirtyCount()) / budget;
        }
    }

    // Event signals are deltas since the previous sample; absolute
    // shed count converts the same way.
    uint64_t shed_now = sig.shedEvents;
    sig.tcamOverflows = r.tcamOverflows - baseline_.tcamOverflows;
    sig.setupRetries = r.setupRetries - baseline_.setupRetries;
    sig.parityRecoveries =
        r.parityRecoveries - baseline_.parityRecoveries;
    sig.slowPathRejected =
        r.slowPathRejected - baseline_.slowPathRejected;
    sig.shedEvents = shed_now - baseline_.shedEvents;

    baseline_.tcamOverflows = r.tcamOverflows;
    baseline_.setupRetries = r.setupRetries;
    baseline_.parityRecoveries = r.parityRecoveries;
    baseline_.slowPathRejected = r.slowPathRejected;
    baseline_.shedEvents = shed_now;
    return sig;
}

bool
ConcurrentChisel::executeAction(health::RecoveryAction action)
{
    switch (action) {
      case health::RecoveryAction::None:
        return true;
      case health::RecoveryAction::PurgeDirty:
        purgeDirtyNow();
        return true;
      case health::RecoveryAction::Scrub:
        scrubNow();
        return true;
      case health::RecoveryAction::Resetup:
        resetup();
        return true;
      case health::RecoveryAction::SnapshotRestore:
        if (options_.recoverySnapshotPath.empty())
            return false;   // No known-good image: rung unavailable.
        return restoreFromSnapshot(options_.recoverySnapshotPath);
      case health::RecoveryAction::Resize:
        return resizeNow();
      case health::RecoveryAction::FailedOver:
        // Recorded by Follower::promote(), never recommended by the
        // monitor; there is nothing for the dead node to execute.
        break;
      case health::RecoveryAction::kCount:
        break;
    }
    return false;
}

health::HealthState
ConcurrentChisel::healthTick()
{
    std::lock_guard<std::mutex> hlock(healthMutex_);
    health::HealthState state = monitor_.sample(collectSignals());
    health::RecoveryAction action = monitor_.takeAction();
    if (action != health::RecoveryAction::None)
        monitor_.actionCompleted(action, executeAction(action));
    return state;
}

// ---- Snapshots and rebuilds ------------------------------------------------

size_t
ConcurrentChisel::saveSnapshot(const std::string &path) const
{
    // The idle image equals the live one, so serializing it captures
    // the current state while lookups proceed undisturbed; only the
    // update path waits on the lock.
    std::lock_guard<std::mutex> lock(writerMutex_);
    const Image &idle = idleImage();
    return persist::saveSnapshot(
        path, *idle.engine,
        updatesApplied_.load(std::memory_order_relaxed));
}

size_t
ConcurrentChisel::saveSnapshot(
    const std::string &path,
    const std::function<uint64_t()> &last_seq) const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    const Image &idle = idleImage();
    uint64_t seq = last_seq
                       ? last_seq()
                       : updatesApplied_.load(std::memory_order_relaxed);
    return persist::saveSnapshot(path, *idle.engine, seq);
}

bool
ConcurrentChisel::restoreFromSnapshot(const std::string &path)
{
    // Build both replacement engines before taking any reader-visible
    // step; a bad snapshot leaves the serving state untouched.  A
    // snapshot written after a live resize differs from config_ only
    // in elastic capacities — accept it and adopt its plan, exactly
    // as a warm restart does.
    persist::SnapshotLoadResult a =
        persist::loadSnapshot(path, &config_, /*allow_elastic=*/true);
    if (a.status != persist::SnapshotLoadStatus::Ok) {
        warn("concurrent restore refused: " + a.error);
        return false;
    }
    persist::SnapshotLoadResult b =
        persist::loadSnapshot(path, &config_, /*allow_elastic=*/true);
    if (b.status != persist::SnapshotLoadStatus::Ok) {
        warn("concurrent restore refused: " + b.error);
        return false;
    }

    std::lock_guard<std::mutex> lock(writerMutex_);
    config_ = a.engine->config();
    installPair(std::move(a.engine), std::move(b.engine));
    return true;
}

void
ConcurrentChisel::resetup()
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    const ChiselEngine &current = *idleImage().engine;
    RoutingTable table = current.exportTable();
    auto a = std::make_unique<ChiselEngine>(table, config_);
    auto b = std::make_unique<ChiselEngine>(table, config_);
    // A resetup is repair, not lifecycle: armed TTL deadlines carry
    // over unchanged so a rebuilt route still expires on schedule.
    a->adoptTtl(current);
    b->adoptTtl(current);
    installPair(std::move(a), std::move(b));
}

void
ConcurrentChisel::installPair(std::unique_ptr<ChiselEngine> a,
                              std::unique_ptr<ChiselEngine> b)
{
    uint64_t gen = updatesApplied_.load(std::memory_order_relaxed);

    // Swap the new engine into the idle slot and flip to it: readers
    // move from the old live image to the fresh one in one step.
    Image &idle = idleImage();
    idle.engine = std::move(a);
    idle.generation.store(gen, std::memory_order_relaxed);
    publish(idle);

    // The grace period has passed: the retired image is unreferenced
    // and its engine can be replaced outright.
    Image &retired = idleImage();
    retired.engine = std::move(b);
    retired.generation.store(gen, std::memory_order_relaxed);
}

// ---- Introspection ---------------------------------------------------------

size_t
ConcurrentChisel::routeCount() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->routeCount();
}

RobustnessCounters
ConcurrentChisel::robustness() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->robustness();
}

size_t
ConcurrentChisel::dirtyCount() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->dirtyCount();
}

size_t
ConcurrentChisel::dirtyPeak() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->dirtyPeak();
}

AccessCounters
ConcurrentChisel::accessTotals() const
{
    AccessCounters total;
    for (const Image &img : images_) {
        const AccessCounters &c = img.engine->accessCounters();
        total.lookups += c.lookups;
        total.indexSegmentReads += c.indexSegmentReads;
        total.filterReads += c.filterReads;
        total.bitvectorReads += c.bitvectorReads;
        total.resultReads += c.resultReads;
    }
    return total;
}

std::optional<NextHop>
ConcurrentChisel::find(const Prefix &prefix) const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return idleImage().engine->find(prefix);
}

uint64_t
ConcurrentChisel::updatesApplied() const
{
    return updatesApplied_.load(std::memory_order_relaxed);
}

bool
ConcurrentChisel::selfCheck() const
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    return images_[0].engine->selfCheck() &&
           images_[1].engine->selfCheck();
}

} // namespace chisel::concurrent
