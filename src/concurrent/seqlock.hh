/**
 * @file
 * Seqlock: optimistic reader / single-writer synchronization via an
 * even/odd generation word (docs/concurrency.md).
 *
 * A SeqLock protects a small block of data that one writer mutates
 * and many readers copy.  The writer bumps the sequence word to an
 * odd value before mutating and back to even after; a reader samples
 * the word, copies the data, and re-samples — a changed or odd word
 * means the copy may be torn and the reader retries.  Readers never
 * block the writer and the writer never blocks readers; reads are
 * wait-free in practice (a retry only happens when a write overlapped
 * the copy).
 *
 * ThreadSanitizer compatibility: a classic seqlock races by design —
 * readers touch data mid-write and discard it.  TSan (correctly)
 * reports those touches unless every protected access is atomic, so
 * SeqLockGuarded stores its payload as an array of relaxed
 * std::atomic<uint64_t> words and copies through them.  The payload
 * type must be trivially copyable and is padded to whole words.
 *
 * Memory ordering follows the standard recipe (Boehm, "Can seqlocks
 * get along with programming language memory models?", MSPC 2012):
 *
 *   writer:  seq.store(s+1, relaxed); fence(release);
 *            ...relaxed payload stores...;
 *            seq.store(s+2, release);
 *   reader:  s1 = seq.load(acquire); if odd, retry;
 *            ...relaxed payload loads...; fence(acquire);
 *            s2 = seq.load(relaxed); if s1 != s2, retry.
 */

#ifndef CHISEL_CONCURRENT_SEQLOCK_HH
#define CHISEL_CONCURRENT_SEQLOCK_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace chisel::concurrent {

/**
 * The bare sequence word, for callers that manage their own payload
 * (which must then itself be accessed through atomics to stay
 * TSan-clean).
 */
class SeqLock
{
  public:
    /** Writer side: enter the mutation window (word goes odd). */
    void
    writeBegin()
    {
        uint32_t s = seq_.load(std::memory_order_relaxed);
        seq_.store(s + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Writer side: leave the mutation window (word goes even). */
    void
    writeEnd()
    {
        uint32_t s = seq_.load(std::memory_order_relaxed);
        seq_.store(s + 1, std::memory_order_release);
    }

    /**
     * Reader side: sample the word before copying.  An odd value
     * means a write is in progress — spin until even.
     */
    uint32_t
    readBegin() const
    {
        for (;;) {
            uint32_t s = seq_.load(std::memory_order_acquire);
            if ((s & 1u) == 0)
                return s;
        }
    }

    /**
     * Reader side: true if the copy made since readBegin() returned
     * @p start is consistent (no write overlapped it).
     */
    bool
    readValidate(uint32_t start) const
    {
        std::atomic_thread_fence(std::memory_order_acquire);
        return seq_.load(std::memory_order_relaxed) == start;
    }

    /** Current sequence value (diagnostics; even = quiescent). */
    uint32_t
    sequence() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint32_t> seq_{0};
};

/**
 * A seqlock owning its payload: single-writer write(), many-reader
 * read().  T must be trivially copyable.
 */
template <typename T>
class SeqLockGuarded
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "seqlock payloads are copied bytewise");

  public:
    SeqLockGuarded() { storeWords(T{}); }

    explicit SeqLockGuarded(const T &initial) { storeWords(initial); }

    /** Writer side (one writer at a time). */
    void
    write(const T &value)
    {
        lock_.writeBegin();
        storeWords(value);
        lock_.writeEnd();
    }

    /** Reader side: returns a consistent copy, retrying torn reads. */
    T
    read() const
    {
        for (;;) {
            uint32_t s = lock_.readBegin();
            T out = loadWords();
            if (lock_.readValidate(s))
                return out;
        }
    }

    /**
     * Reader side, bounded: attempt one optimistic copy.  Returns
     * false (leaving @p out untouched) if a write overlapped — for
     * callers that prefer skipping to spinning.
     */
    bool
    tryRead(T &out) const
    {
        uint32_t s = lock_.readBegin();
        T copy = loadWords();
        if (!lock_.readValidate(s))
            return false;
        out = copy;
        return true;
    }

    /** Writes completed so far (diagnostics). */
    uint32_t sequence() const { return lock_.sequence(); }

  private:
    static constexpr size_t kWords = (sizeof(T) + 7) / 8;

    void
    storeWords(const T &value)
    {
        uint64_t raw[kWords] = {};
        std::memcpy(raw, &value, sizeof(T));
        for (size_t i = 0; i < kWords; ++i)
            words_[i].store(raw[i], std::memory_order_relaxed);
    }

    T
    loadWords() const
    {
        uint64_t raw[kWords];
        for (size_t i = 0; i < kWords; ++i)
            raw[i] = words_[i].load(std::memory_order_relaxed);
        T out;
        std::memcpy(&out, raw, sizeof(T));
        return out;
    }

    SeqLock lock_;
    std::atomic<uint64_t> words_[kWords];
};

} // namespace chisel::concurrent

#endif // CHISEL_CONCURRENT_SEQLOCK_HH
