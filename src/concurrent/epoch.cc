#include "concurrent/epoch.hh"

#include <thread>
#include <unordered_map>

#include "common/logging.hh"

namespace chisel::concurrent {

namespace {

/** Process-wide source of manager ids (survives manager reuse at the
 * same address, which a pointer-keyed thread cache would confuse). */
std::atomic<uint64_t> g_nextManagerId{1};

/**
 * Live-manager registry: id -> manager.  Exiting threads use it to
 * hand their slots back to managers that still exist, and the
 * thread cache uses it to prune entries for destroyed managers.  All
 * access is under the registry lock; a manager is only released to a
 * thread while the lock pins it (the manager's destructor removes
 * the entry under the same lock before the object dies).
 */
std::mutex g_registryMutex;
std::unordered_map<uint64_t, EpochManager *> &
registry()
{
    // Leaked on purpose: thread-exit destructors may run after static
    // destruction begins, and a leaked map is valid forever.
    static auto *map = new std::unordered_map<uint64_t, EpochManager *>;
    return *map;
}

} // anonymous namespace

/**
 * Per-thread cache of (manager id -> claimed slot).  Grows with the
 * number of managers this thread reads — a sharded dataplane is one
 * manager per shard, so a driver thread probing every shard holds one
 * entry each.  On thread exit the destructor returns every slot whose
 * manager is still alive, so the per-manager pool is bounded by peak
 * concurrent readers rather than cumulative thread count.
 */
struct ThreadSlotCache
{
    struct Entry
    {
        uint64_t id;
        size_t slot;
    };

    std::vector<Entry> entries;

    size_t
    find(uint64_t id) const
    {
        for (size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].id == id)
                return i;
        }
        return entries.size();
    }

    /** Drop entries whose manager no longer exists (their slots died
     * with the manager).  Called on the claim slow path only, and
     * only once the cache is large enough for staleness to matter. */
    void
    prune()
    {
        std::lock_guard<std::mutex> lock(g_registryMutex);
        auto &live = registry();
        size_t kept = 0;
        for (size_t i = 0; i < entries.size(); ++i) {
            if (live.count(entries[i].id))
                entries[kept++] = entries[i];
        }
        entries.resize(kept);
    }

    ~ThreadSlotCache()
    {
        std::lock_guard<std::mutex> lock(g_registryMutex);
        auto &live = registry();
        for (const Entry &e : entries) {
            auto it = live.find(e.id);
            if (it != live.end())
                it->second->releaseSlot(e.slot);
        }
    }
};

namespace {

ThreadSlotCache &
threadCache()
{
    thread_local ThreadSlotCache cache;
    return cache;
}

/** Cache size past which a claim first tries pruning dead managers. */
constexpr size_t kPruneThreshold = 64;

} // anonymous namespace

EpochManager::EpochManager()
    : id_(g_nextManagerId.fetch_add(1, std::memory_order_relaxed))
{
    std::lock_guard<std::mutex> lock(g_registryMutex);
    registry().emplace(id_, this);
}

EpochManager::~EpochManager()
{
    std::lock_guard<std::mutex> lock(g_registryMutex);
    registry().erase(id_);
}

size_t
EpochManager::claimSlot()
{
    {
        std::lock_guard<std::mutex> lock(freeMutex_);
        if (!freeSlots_.empty()) {
            size_t slot = freeSlots_.back();
            freeSlots_.pop_back();
            return slot;
        }
    }
    size_t slot = nextSlot_.fetch_add(1, std::memory_order_relaxed);
    panicIf(slot >= kMaxSlots,
            "EpochManager: reader thread pool exhausted");
    return slot;
}

void
EpochManager::releaseSlot(size_t slot)
{
    // The releasing thread is outside any critical section (exit()
    // stored 0), so the slot is quiescent and a future claimant can
    // stamp it without confusing a writer's scan.
    std::lock_guard<std::mutex> lock(freeMutex_);
    freeSlots_.push_back(slot);
}

size_t
EpochManager::freeSlotCount() const
{
    std::lock_guard<std::mutex> lock(freeMutex_);
    return freeSlots_.size();
}

size_t
EpochManager::threadSlot()
{
    ThreadSlotCache &cache = threadCache();
    size_t i = cache.find(id_);
    if (i < cache.entries.size())
        return cache.entries[i].slot;

    if (cache.entries.size() >= kPruneThreshold) {
        cache.prune();
        i = cache.find(id_);
        if (i < cache.entries.size())
            return cache.entries[i].slot;
    }

    size_t slot = claimSlot();
    cache.entries.push_back({id_, slot});
    return slot;
}

void
EpochManager::synchronize()
{
    // New grace period: readers entering from here stamp >= next.
    uint64_t next = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;

    // Pairs with the seq_cst slot store in enter(): either the scan
    // below sees a pre-bump reader's stamp (and waits it out), or
    // that reader's payload loads see everything the caller published
    // before this synchronize().
    std::atomic_thread_fence(std::memory_order_seq_cst);

    size_t active = nextSlot_.load(std::memory_order_acquire);
    if (active > kMaxSlots)
        active = kMaxSlots;
    for (size_t i = 0; i < active; ++i) {
        unsigned spins = 0;
        for (;;) {
            uint64_t v = slots_[i].value.load(std::memory_order_acquire);
            if (v == 0 || v >= next)
                break;
            // Reader critical sections are a handful of table reads;
            // yield only if one is descheduled mid-section.
            if (++spins > 64)
                std::this_thread::yield();
        }
    }
}

} // namespace chisel::concurrent
