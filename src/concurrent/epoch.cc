#include "concurrent/epoch.hh"

#include <thread>

#include "common/logging.hh"

namespace chisel::concurrent {

namespace {

/** Process-wide source of manager ids (survives manager reuse at the
 * same address, which a pointer-keyed thread cache would confuse). */
std::atomic<uint64_t> g_nextManagerId{1};

} // anonymous namespace

EpochManager::EpochManager()
    : id_(g_nextManagerId.fetch_add(1, std::memory_order_relaxed))
{}

size_t
EpochManager::threadSlot()
{
    // One cached entry per thread: dataplane threads read one engine,
    // so the common case is a single compare.  A small linear probe
    // handles threads touching several managers.
    struct Cached
    {
        uint64_t id = 0;
        size_t slot = 0;
    };
    static constexpr size_t kCache = 8;
    thread_local Cached cache[kCache];
    thread_local size_t cached = 0;

    for (size_t i = 0; i < cached; ++i) {
        if (cache[i].id == id_)
            return cache[i].slot;
    }

    size_t slot = nextSlot_.fetch_add(1, std::memory_order_relaxed);
    panicIf(slot >= kMaxSlots,
            "EpochManager: reader thread pool exhausted");
    if (cached < kCache) {
        cache[cached].id = id_;
        cache[cached].slot = slot;
        ++cached;
    }
    return slot;
}

void
EpochManager::synchronize()
{
    // New grace period: readers entering from here stamp >= next.
    uint64_t next = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;

    // Pairs with the seq_cst slot store in enter(): either the scan
    // below sees a pre-bump reader's stamp (and waits it out), or
    // that reader's payload loads see everything the caller published
    // before this synchronize().
    std::atomic_thread_fence(std::memory_order_seq_cst);

    size_t active = nextSlot_.load(std::memory_order_acquire);
    if (active > kMaxSlots)
        active = kMaxSlots;
    for (size_t i = 0; i < active; ++i) {
        unsigned spins = 0;
        for (;;) {
            uint64_t v = slots_[i].value.load(std::memory_order_acquire);
            if (v == 0 || v >= next)
                break;
            // Reader critical sections are a handful of table reads;
            // yield only if one is descheduled mid-section.
            if (++spins > 64)
                std::this_thread::yield();
        }
    }
}

} // namespace chisel::concurrent
