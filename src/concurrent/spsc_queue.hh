/**
 * @file
 * Bounded single-producer / single-consumer ring buffer.
 *
 * The control plane feeds announce/withdraw through this queue: a BGP
 * session (producer) posts updates without blocking on the engine's
 * write path, and the engine's control thread (consumer) drains them
 * in order.  Bounded capacity gives natural back-pressure — a full
 * queue rejects the post and the producer decides whether to retry,
 * coalesce, or shed, rather than the queue growing without limit
 * under an update storm (the same bounded-over-silent-growth policy
 * as the slow-path map, docs/robustness.md).
 *
 * Lock-free and wait-free on both sides: one atomic load + one store
 * per operation, with head/tail on separate cache lines.  Exactly one
 * producer thread and one consumer thread; neither may be shared.
 */

#ifndef CHISEL_CONCURRENT_SPSC_QUEUE_HH
#define CHISEL_CONCURRENT_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace chisel::concurrent {

template <typename T>
class SpscQueue
{
  public:
    /** @param capacity Maximum queued items (rounded up to 2^n). */
    explicit SpscQueue(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity)
            cap *= 2;
        buffer_.resize(cap);
        mask_ = cap - 1;
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Producer: enqueue @p item; false if the queue is full. */
    bool
    push(const T &item)
    {
        size_t tail = tail_.load(std::memory_order_relaxed);
        size_t head = headCache_;
        if (tail - head > mask_) {
            headCache_ = head = head_.load(std::memory_order_acquire);
            if (tail - head > mask_)
                return false;
        }
        buffer_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer: dequeue the oldest item, or nullopt when empty. */
    std::optional<T>
    pop()
    {
        size_t head = head_.load(std::memory_order_relaxed);
        size_t tail = tailCache_;
        if (head == tail) {
            tailCache_ = tail = tail_.load(std::memory_order_acquire);
            if (head == tail)
                return std::nullopt;
        }
        T out = buffer_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return out;
    }

    /** Items currently queued (approximate across threads). */
    size_t
    size() const
    {
        size_t tail = tail_.load(std::memory_order_acquire);
        size_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }

    bool empty() const { return size() == 0; }

    /** Usable capacity. */
    size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> buffer_;
    size_t mask_ = 0;

    alignas(64) std::atomic<size_t> head_{0};
    /** Consumer-private copy of tail_ (saves an acquire per pop). */
    alignas(64) size_t tailCache_ = 0;
    alignas(64) std::atomic<size_t> tail_{0};
    /** Producer-private copy of head_ (saves an acquire per push). */
    alignas(64) size_t headCache_ = 0;
};

} // namespace chisel::concurrent

#endif // CHISEL_CONCURRENT_SPSC_QUEUE_HH
