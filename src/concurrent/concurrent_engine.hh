/**
 * @file
 * ConcurrentChisel: the Chisel engine under N reader threads and one
 * logical writer, with no reader-visible stalls (docs/concurrency.md).
 *
 * The hardware pipeline the paper models serves lookups every cycle
 * while the control processor rewrites tables; this wrapper gives the
 * software model the same property.  It maintains two ChiselEngine
 * images kept in lockstep and publishes one of them through a single
 * atomic pointer:
 *
 *  - readers enter an epoch-protected critical section, load the live
 *    pointer (acquire) and run the ordinary lookup path against an
 *    image the writer is guaranteed not to touch.  Reader entry, the
 *    lookup itself and exit perform no locks, no CAS, no retries —
 *    lookups are wait-free;
 *  - the writer applies each update to the *idle* image, stamps its
 *    generation, flips the pointer (release), waits one epoch grace
 *    period (all readers past the flip), then applies the same update
 *    to the retired image so both stay identical.  Full rebuilds —
 *    snapshot restore, resetup — construct a fresh image pair off to
 *    the side and publish it with the same flip + grace protocol.
 *
 * Every published image carries a generation (the count of updates
 * folded in), so a reader can tag each lookup with the exact table
 * version that served it — the stress tests validate every tagged
 * result against a trie oracle replayed to that generation.
 *
 * A bounded SPSC queue decouples the update producer (one BGP session
 * feed) from the apply path: post() never blocks, and an internal
 * control thread drains the queue in order.  A background scrubber
 * thread walks the idle image's parity words on a configurable
 * cadence, running recover-by-resetup off the reader critical path.
 */

#ifndef CHISEL_CONCURRENT_CONCURRENT_ENGINE_HH
#define CHISEL_CONCURRENT_CONCURRENT_ENGINE_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/epoch.hh"
#include "concurrent/spsc_queue.hh"
#include "core/engine.hh"
#include "health/admission.hh"
#include "health/monitor.hh"
#include "route/updates.hh"

namespace chisel::fault { class FaultInjector; }

namespace chisel::concurrent {

/** A lookup result tagged with the generation that produced it. */
struct TaggedLookup
{
    LookupResult result;

    /** Updates folded into the image that served this lookup. */
    uint64_t generation = 0;
};

/** Construction options for ConcurrentChisel. */
struct ConcurrentOptions
{
    /** Capacity of the post() update queue (rounded up to 2^n). */
    size_t updateQueueCapacity = 1024;

    /**
     * Start the control thread that drains post()ed updates.  Off,
     * post() is unavailable and updates go through announce()/
     * withdraw()/apply() directly.
     */
    bool controlThread = true;

    /**
     * Background scrub cadence; zero disables the scrubber thread.
     * Each pass verifies every parity word of the idle image and
     * recovers corrupted cells by resetup (docs/concurrency.md).
     */
    std::chrono::milliseconds scrubInterval{0};

    /**
     * Producer-side admission control on post(): token buckets per
     * update class plus watermark-triggered coalescing shed
     * (docs/robustness.md).  Disabled, post() keeps its original
     * fail-on-full contract.
     */
    health::AdmissionOptions admission;

    /**
     * Run the health-state machine inside the control thread: sample
     * signals every healthInterval and execute the recommended
     * recovery actions automatically.  Requires controlThread.
     */
    bool healthMonitor = false;

    /** Health thresholds and hysteresis depths. */
    health::MonitorConfig health;

    /** Health sampling cadence (when healthMonitor is on). */
    std::chrono::milliseconds healthInterval{50};

    /**
     * Known-good snapshot backing the SnapshotRestore ladder rung;
     * empty, that rung reports failure and the ladder re-escalates
     * through Resetup.
     */
    std::string recoverySnapshotPath;

    /**
     * When non-null, installed thread-locally in the control thread,
     * so chaos tests inject faults into the queued apply path without
     * arming the reader threads.
     */
    fault::FaultInjector *controlFaultInjector = nullptr;

    /**
     * TTL garbage-collection cadence for the control thread; zero
     * disables background GC (gcTick() remains callable directly).
     * Each pass retires at most gcBatch expired entries, each as a
     * first-class Expire update through the ordinary apply path —
     * journal-visible, replication-visible, flip-published.
     */
    std::chrono::milliseconds gcInterval{0};

    /** Max entries retired per GC pass (bounds writer-lock hold). */
    size_t gcBatch = 256;

    /**
     * Drive the TTL clock from wall time (steady clock since
     * construction).  Off, the clock only moves via advanceTtlClock()
     * — deterministic tests pick exactly when entries expire.
     */
    bool ttlWallClock = true;

    /**
     * Journal hooks, called INSIDE the writer lock in apply order, so
     * the journal sees posted updates and GC-generated Expires in
     * exactly the order the images did — there is no window where an
     * update is applied but a concurrent resize journals first.
     *
     * onJournalUpdate runs before the update touches either image and
     * returns the assigned sequence number; returning 0 REJECTS the
     * update (nothing is applied — a journal that cannot append must
     * not let state run ahead of it).  onJournalOutcome runs after
     * both images applied, with that sequence and the live outcome.
     * onResize runs after a resize is published, with the grown
     * config and the generation it covers.
     */
    std::function<uint64_t(const Update &)> onJournalUpdate;
    std::function<void(uint64_t, const UpdateOutcome &)> onJournalOutcome;
    std::function<void(const ChiselConfig &, uint64_t)> onResize;
};

/**
 * Thread-safe facade over a pair of lockstep ChiselEngine images.
 *
 * Thread roles: any number of lookup threads; any number of threads
 * may call the update entry points (serialized on an internal mutex);
 * at most ONE thread may call post() (SPSC producer contract).
 */
class ConcurrentChisel
{
  public:
    explicit ConcurrentChisel(const RoutingTable &initial,
                              const ChiselConfig &config = {},
                              const ConcurrentOptions &options = {});

    /** Joins the control and scrubber threads; pending posts drain. */
    ~ConcurrentChisel();

    ConcurrentChisel(const ConcurrentChisel &) = delete;
    ConcurrentChisel &operator=(const ConcurrentChisel &) = delete;

    // ---- Read side (any thread, wait-free) -------------------------

    /** Longest-prefix match against the live image. */
    LookupResult lookup(const Key128 &key) const;

    /** lookup() plus the generation of the image that served it. */
    TaggedLookup lookupTagged(const Key128 &key) const;

    /** Generation of the currently-live image. */
    uint64_t generation() const;

    // ---- Write side (any thread, serialized internally) ------------

    /**
     * BGP announce applied to both images; returns the live class.
     * @param ttl_ms Per-route TTL override: 0 uses the config default,
     *        kTtlNever pins the route against expiry.
     */
    UpdateOutcome announce(const Prefix &prefix, NextHop next_hop,
                           uint32_t ttl_ms = 0);

    /** BGP withdraw, likewise. */
    UpdateOutcome withdraw(const Prefix &prefix);

    /** Apply one trace update. */
    UpdateOutcome apply(const Update &update);

    // ---- Queued update path (single producer thread) ---------------

    /**
     * Enqueue an update for the control thread; false if the queue
     * is full (back-pressure) or the control thread is disabled.
     * With admission control enabled the call never fails: an update
     * that cannot be queued is staged (coalescing per prefix) and
     * flushed when the queue drains below the low watermark.
     */
    bool post(const Update &update);

    /** Updates posted but not yet applied (excludes the stage). */
    size_t pendingUpdates() const;

    /**
     * Block until every posted AND staged update has been applied.
     * With admission enabled, must be called by the producer thread.
     */
    void flush();

    /** Updates parked in the admission stage (producer thread only). */
    size_t stagedUpdates() const { return admission_.stagedCount(); }

    /** True while admission shed mode is latched (producer thread). */
    bool shedding() const { return admission_.shedding(); }

    /** Shed/coalesce statistics (producer thread only). */
    const health::AdmissionCounters &admissionCounters() const
    {
        return admission_.counters();
    }

    // ---- Scrubbing -------------------------------------------------

    /**
     * One synchronous scrub pass over BOTH images (each scrubbed
     * while idle; the pass flips the live pointer once).  Also run
     * periodically by the scrubber thread when enabled.
     */
    ScrubReport scrubNow();

    /** Scrub passes completed (either path). */
    uint64_t scrubPasses() const;

    // ---- Health ----------------------------------------------------

    /**
     * One synchronous purgeDirty() over both images (same flip +
     * grace protocol as scrubNow, so readers never see a purge in
     * progress).  @return dirty groups dismantled (live image).
     */
    size_t purgeDirtyNow();

    /** Current health state (Healthy when the monitor never ran). */
    health::HealthState healthState() const { return monitor_.state(); }

    /** The state machine itself (counters, publish()). */
    const health::HealthMonitor &monitor() const { return monitor_; }

    /** Mutable monitor access (promotion records a failover on it). */
    health::HealthMonitor &monitor() { return monitor_; }

    /**
     * Sample signals, step the state machine, and execute at most one
     * recovery action.  Runs periodically on the control thread when
     * options.healthMonitor is set; also callable directly (tests,
     * chaos harness).  @return the state after the sample.
     */
    health::HealthState healthTick();

    // ---- TTL expiry ------------------------------------------------

    /**
     * One garbage-collection pass: advance the TTL clock, collect up
     * to @p max_batch expired prefixes (0 = options.gcBatch) and
     * retire each as an Expire update through the normal apply path —
     * journaled, counted, flip-published like any withdraw.  Runs
     * periodically on the control thread when options.gcInterval > 0.
     * @return entries expired this pass.
     */
    size_t gcTick(size_t max_batch = 0);

    /**
     * Advance the logical TTL clock by @p ms (ttlWallClock == false).
     * The next gcTick() observes the new time.
     */
    void advanceTtlClock(uint64_t ms);

    /** Entries retired by TTL expiry since construction. */
    uint64_t expired() const
    {
        return expired_.load(std::memory_order_relaxed);
    }

    // ---- Live resize -----------------------------------------------

    /**
     * Capacity-driven live resize: re-plan a grown config from the
     * current load (core/resize.hh), rebuild both images from the
     * route set off the serving path, and publish with one pointer
     * flip — lookups stay wait-free throughout, and slow-path
     * residents drain back into the grown tables.  @return false
     * (no-op) when the plan does not grow the engine.
     */
    bool resizeNow();

    /**
     * Adopt @p target as the new capacity plan (replica follower
     * tracking a leader's ResizeMark).  Idempotent when the engine
     * already runs @p target; refused (false) when @p target is not
     * elastic-compatible with the current geometry.
     */
    bool resizeTo(const ChiselConfig &target);

    /** Live resizes published since construction. */
    uint64_t resizes() const
    {
        return resizes_.load(std::memory_order_relaxed);
    }

    /** Slow-path residents drained back by rebuilds/resizes. */
    uint64_t slowPathDrained() const
    {
        return slowPathDrained_.load(std::memory_order_relaxed);
    }

    // ---- Snapshots and rebuilds ------------------------------------

    /**
     * Write a snapshot of the current state WITHOUT stalling readers:
     * the idle image (identical to the live one) is serialized under
     * the writer lock, so only updates wait.  @return bytes written.
     */
    size_t saveSnapshot(const std::string &path) const;

    /**
     * saveSnapshot() stamping the image with @p last_seq() instead of
     * the update count.  The provider runs UNDER the writer lock:
     * journal hooks fire inside the same lock, so a provider reading
     * the journal's lastSeq() gets a value that matches the
     * serialized state exactly — the sharded persistence lane uses
     * this to make snapshot coverage agree with its journal tail.
     */
    size_t saveSnapshot(const std::string &path,
                        const std::function<uint64_t()> &last_seq) const;

    /**
     * Replace the routing state from a snapshot.  The new image pair
     * is built off to the side and published with one pointer flip;
     * readers never observe a partially-loaded table.  @return false
     * (state unchanged) if the snapshot does not load cleanly.
     */
    bool restoreFromSnapshot(const std::string &path);

    /**
     * Full resetup: rebuild both images from the current route set
     * with capacities re-sized to the live load, publishing the new
     * pair with one flip.  Readers see either the old table or the
     * new one, never a construction site.
     */
    void resetup();

    // ---- Introspection ---------------------------------------------

    /** Routes currently stored. */
    size_t routeCount() const;

    /** Merged robustness counters (live image's view). */
    RobustnessCounters robustness() const;

    /** Dirty groups retained for flap damping (§4.4.1). */
    size_t dirtyCount() const;

    /** High-water mark of dirty retention since construction. */
    size_t dirtyPeak() const;

    /**
     * Access counters summed over both images — lookups land on
     * whichever image was live, so the total is the sum.
     */
    AccessCounters accessTotals() const;

    /** Exact-prefix query (serialized with updates). */
    std::optional<NextHop> find(const Prefix &prefix) const;

    /** Updates applied through this wrapper. */
    uint64_t updatesApplied() const;

    const ChiselConfig &config() const { return config_; }

    /** Deep consistency check of both images (tests; takes the lock). */
    bool selfCheck() const;

  private:
    /** One publishable engine image. */
    struct Image
    {
        std::unique_ptr<ChiselEngine> engine;

        /** Updates folded in; stamped before the image goes live. */
        std::atomic<uint64_t> generation{0};
    };

    /** The image the live pointer does NOT currently reference. */
    Image &idleImage();
    const Image &idleImage() const;

    /** Apply @p update to both images with the flip + grace protocol. */
    UpdateOutcome applyLocked(const Update &update);

    /** Flip the live pointer to @p image and wait out the readers. */
    void publish(Image &image);

    /** Install a freshly built engine pair (restore/resetup). */
    void installPair(std::unique_ptr<ChiselEngine> a,
                     std::unique_ptr<ChiselEngine> b);

    /** Scrub the idle image once; caller holds writerMutex_. */
    void scrubIdleLocked(ScrubReport &report);

    /** Move staged updates into the queue as room allows. */
    void pumpStaged(bool force);

    /** Gather one HealthSignals sample (takes writerMutex_). */
    health::HealthSignals collectSignals();

    /** Run one recovery action; @return success. */
    bool executeAction(health::RecoveryAction action);

    /** Current TTL time in ms (wall or manual clock). */
    uint64_t ttlNowMs() const;

    /** resizeNow/resizeTo body; caller holds writerMutex_. */
    bool resizeLocked(const ChiselConfig &grown);

    void controlLoop();
    void scrubLoop();

    ChiselConfig config_;
    ConcurrentOptions options_;

    Image images_[2];
    std::atomic<Image *> live_;

    mutable EpochManager epochs_;

    /** Serializes updates, scrubs, snapshots and rebuilds. */
    mutable std::mutex writerMutex_;

    /** Updates applied (== generation of the freshest image). */
    std::atomic<uint64_t> updatesApplied_{0};
    std::atomic<uint64_t> scrubPasses_{0};
    std::atomic<uint64_t> expired_{0};
    std::atomic<uint64_t> resizes_{0};
    std::atomic<uint64_t> slowPathDrained_{0};

    /** Epoch of the wall TTL clock (ttlWallClock). */
    std::chrono::steady_clock::time_point ttlEpoch_;

    /** Manual TTL clock in ms (ttlWallClock == false). */
    std::atomic<uint64_t> ttlManualMs_{0};

    SpscQueue<Update> queue_;
    std::atomic<uint64_t> posted_{0};
    std::atomic<uint64_t> drained_{0};
    std::atomic<bool> stop_{false};
    std::thread controlThread_;
    std::thread scrubThread_;

    /** Producer-side admission filter (single producer thread). */
    health::AdmissionController admission_;

    health::HealthMonitor monitor_;

    /** Serializes healthTick() callers (control thread + tests). */
    mutable std::mutex healthMutex_;

    /** Counter values at the previous sample (delta computation). */
    struct SignalBaseline
    {
        uint64_t tcamOverflows = 0;
        uint64_t setupRetries = 0;
        uint64_t parityRecoveries = 0;
        uint64_t slowPathRejected = 0;
        uint64_t shedEvents = 0;
    } baseline_;
};

} // namespace chisel::concurrent

#endif // CHISEL_CONCURRENT_CONCURRENT_ENGINE_HH
