/**
 * @file
 * Epoch-based read protection and reclamation (docs/concurrency.md).
 *
 * ConcurrentChisel publishes whole engine images with a single atomic
 * pointer flip; the retired image can only be reclaimed (or mutated,
 * in the left/right scheme) once every reader that might still hold
 * it has moved on.  EpochManager tracks that grace period:
 *
 *  - each reader thread owns one cache-line-padded slot.  Entering a
 *    critical section stores the current global epoch into the slot;
 *    leaving stores 0 (quiescent).  Both are single atomic stores —
 *    readers never take a lock, never CAS, never spin: reader entry
 *    and exit are wait-free;
 *  - the writer calls synchronize(): it bumps the global epoch and
 *    waits until every slot is quiescent or stamped with the new
 *    epoch.  Any reader observed mid-section then provably entered
 *    *after* the writer's preceding publications (the seq_cst fences
 *    pair the reader's slot store with the writer's scan).
 *
 * The grace period is exactly "all readers past the flip": flip the
 * pointer, synchronize(), and the old image is unreachable.
 *
 * Slots are a fixed pool (kMaxSlots) per manager, bounding the
 * *concurrent* reader thread count — far above any realistic core
 * count.  A thread claims its slot in a manager on first use and the
 * claim is cached thread-locally; when the thread exits, its slots
 * are returned to each still-live manager's free list, so the pool
 * survives any number of short-lived reader threads.  The cache
 * itself grows with the number of managers a thread touches (a
 * sharded dataplane runs one manager per shard), so a thread reading
 * sixteen shards holds exactly sixteen slots — the fixed-size cache
 * of earlier revisions silently re-claimed a fresh slot per uncached
 * enter() and exhausted the pool.
 */

#ifndef CHISEL_CONCURRENT_EPOCH_HH
#define CHISEL_CONCURRENT_EPOCH_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace chisel::concurrent {

class EpochManager
{
  public:
    /** Upper bound on concurrent reader threads per manager. */
    static constexpr size_t kMaxSlots = 256;

    EpochManager();
    ~EpochManager();

    EpochManager(const EpochManager &) = delete;
    EpochManager &operator=(const EpochManager &) = delete;

    /**
     * Enter a read-side critical section: stamps this thread's slot
     * with the current epoch.  Must be paired with exit(); sections
     * must not nest on one thread.  @return the slot index (passed
     * back to exit()).
     */
    size_t
    enter()
    {
        size_t slot = threadSlot();
        // Publish "I am reading at epoch E" before any payload load.
        // seq_cst pairs with the writer's fence in synchronize(): the
        // writer either sees this store (and waits), or this thread's
        // subsequent loads see everything published before the bump.
        uint64_t e = epoch_.load(std::memory_order_relaxed);
        slots_[slot].value.store(e, std::memory_order_seq_cst);
        return slot;
    }

    /** Leave the read-side critical section entered at @p slot. */
    void
    exit(size_t slot)
    {
        // Release: orders every payload access inside the section
        // before the quiescent mark the writer's scan acquires.
        slots_[slot].value.store(0, std::memory_order_release);
    }

    /**
     * Writer side: wait until every reader active at the time of the
     * call has left its critical section.  On return, no reader holds
     * a reference obtained before synchronize() began; objects made
     * unreachable before the call are safe to mutate or destroy.
     *
     * Single caller at a time (the writer lock in ConcurrentChisel).
     */
    void synchronize();

    /** Grace periods completed (diagnostics, tests). */
    uint64_t
    epoch() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    /**
     * Highest slot index ever claimed + 1 (diagnostics, tests).  With
     * slot recycling this stays at the peak *concurrent* reader
     * count, not the cumulative thread count.
     */
    size_t
    slotHighWater() const
    {
        size_t n = nextSlot_.load(std::memory_order_relaxed);
        return n > kMaxSlots ? kMaxSlots : n;
    }

    /** Released slots awaiting reuse (diagnostics, tests). */
    size_t freeSlotCount() const;

    /** RAII read-side section. */
    class ReadGuard
    {
      public:
        explicit ReadGuard(EpochManager &mgr)
            : mgr_(mgr), slot_(mgr.enter())
        {}

        ~ReadGuard() { mgr_.exit(slot_); }

        ReadGuard(const ReadGuard &) = delete;
        ReadGuard &operator=(const ReadGuard &) = delete;

      private:
        EpochManager &mgr_;
        size_t slot_;
      };

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> value{0};
    };

    /** This thread's slot index in this manager (claimed on first use). */
    size_t threadSlot();

    /** Claim a slot: recycle a released one, else extend the pool. */
    size_t claimSlot();

    /** Return a quiescent slot to the free list (thread exit). */
    void releaseSlot(size_t slot);

    friend struct ThreadSlotCache;

    std::atomic<uint64_t> epoch_{1};
    std::atomic<size_t> nextSlot_{0};
    uint64_t id_;   ///< Process-unique manager id for the slot cache.

    /** Slots released by exited threads, available for reclaim.  The
     * lock sits on the claim/release slow path only — enter()/exit()
     * never touch it. */
    mutable std::mutex freeMutex_;
    std::vector<size_t> freeSlots_;

    Slot slots_[kMaxSlots];
};

} // namespace chisel::concurrent

#endif // CHISEL_CONCURRENT_EPOCH_HH
