#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/clock.hh"

namespace chisel {

ScalarStat::ScalarStat(std::string name) : name_(std::move(name))
{
}

void
ScalarStat::sample(double value)
{
    ++count_;
    sum_ += value;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

double
ScalarStat::mean() const
{
    if (count_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(count_);
}

std::string
ScalarStat::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: mean=%.4g min=%.4g max=%.4g n=%llu",
                  name_.c_str(), mean(),
                  count_ ? min_ : 0.0, count_ ? max_ : 0.0,
                  static_cast<unsigned long long>(count_));
    return buf;
}

void
ScalarStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(std::string name, size_t buckets)
    : name_(std::move(name)), buckets_(buckets, 0)
{
}

void
Histogram::sample(uint64_t value)
{
    ++total_;
    if (value >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[value];
}

uint64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    // Rank of the sample we need, at least 1 so that q=0 yields the
    // smallest sampled value (the old truncating q*total also made
    // q=1 land one bucket short whenever q*total was fractional).
    uint64_t want = static_cast<uint64_t>(
        std::ceil(std::clamp(q, 0.0, 1.0) *
                  static_cast<double>(total_)));
    want = std::max<uint64_t>(want, 1);
    uint64_t acc = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= want)
            return i;
    }
    return buckets_.size();
}

std::string
Histogram::str() const
{
    std::string s = name_ + ":";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        s += " " + std::to_string(i) + ":" + std::to_string(buckets_[i]);
    }
    if (overflow_ > 0)
        s += " overflow:" + std::to_string(overflow_);
    return s;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

StopWatch::StopWatch()
{
    reset();
}

void
StopWatch::reset()
{
    startNs_ = monotonicNowNs();
}

uint64_t
StopWatch::ns() const
{
    return monotonicNowNs() - startNs_;
}

double
StopWatch::seconds() const
{
    return static_cast<double>(ns()) * 1e-9;
}

} // namespace chisel
