/**
 * @file
 * Lightweight statistics for experiments: counters, means, and
 * histograms with formatted output, in the spirit of a simulator's
 * stats package.
 */

#ifndef CHISEL_SIM_STATS_HH
#define CHISEL_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chisel {

/**
 * Running scalar statistic: count, sum, min, max, mean.
 */
class ScalarStat
{
  public:
    explicit ScalarStat(std::string name = "");

    void sample(double value);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }

    const std::string &name() const { return name_; }

    /** "name: mean=... min=... max=... n=..." */
    std::string str() const;

    void reset();

  private:
    std::string name_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [0, buckets); values at or beyond the
 * last bucket land in the overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::string name, size_t buckets);

    void sample(uint64_t value);

    uint64_t bucket(size_t i) const { return buckets_[i]; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }
    size_t size() const { return buckets_.size(); }

    /**
     * Smallest i such that at least a fraction q of the mass is at
     * values <= i.  Edge cases: with no samples, 0; q <= 0 returns
     * the smallest sampled value; q >= 1 the largest (or size() if
     * any sample overflowed).
     */
    uint64_t quantile(double q) const;

    std::string str() const;

    void reset();

  private:
    std::string name_;
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * Interval timer for throughput and latency measurements.
 *
 * Explicitly monotonic: both reset() and the readers sample
 * monotonicNowNs() (steady_clock), so wall-clock adjustments can
 * never yield negative or skewed intervals.  ns() is the full-
 * precision reading; seconds() is a convenience for rates.
 */
class StopWatch
{
  public:
    StopWatch();

    /** Restart the interval. */
    void reset();

    /** Nanoseconds since construction or the last reset(). */
    uint64_t ns() const;

    /** Seconds since construction or the last reset(). */
    double seconds() const;

  private:
    uint64_t startNs_;
};

} // namespace chisel

#endif // CHISEL_SIM_STATS_HH
