/**
 * @file
 * Fixed-width table reporting for the benchmark harnesses.
 *
 * Every figure/table reproduction prints its rows through this
 * formatter so bench output is uniform and diff-friendly.
 */

#ifndef CHISEL_SIM_REPORT_HH
#define CHISEL_SIM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace chisel {

namespace telemetry { class MetricRegistry; }

/**
 * A simple column-aligned text table.
 */
class Report
{
  public:
    /**
     * @param title Heading printed above the table.
     * @param columns Column headers.
     */
    Report(std::string title, std::vector<std::string> columns);

    /** Append a row (cells already formatted). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string count(uint64_t v);

    /** Format bits as Mbits. */
    static std::string mbits(uint64_t bits, int precision = 2);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a MetricRegistry snapshot as one Report table: one row per
 * metric, with count/mean/quantile columns populated for histograms
 * and the value column for counters and gauges.
 */
Report metricsReport(const telemetry::MetricRegistry &registry);

} // namespace chisel

#endif // CHISEL_SIM_REPORT_HH
