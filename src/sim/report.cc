#include "sim/report.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "telemetry/metrics.hh"

namespace chisel {

Report::Report(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
}

void
Report::addRow(std::vector<std::string> cells)
{
    cells.resize(columns_.size());
    rows_.push_back(std::move(cells));
}

std::string
Report::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Report::count(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int pos = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Report::mbits(uint64_t bits, int precision)
{
    return num(static_cast<double>(bits) / (1024.0 * 1024.0),
               precision);
}

void
Report::print(std::ostream &os) const
{
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                for (size_t pad = cells[c].size(); pad <= widths[c];
                     ++pad) {
                    os << ' ';
                }
                os << ' ';
            }
        }
        os << '\n';
    };
    emit(columns_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    os << '\n';
}

void
Report::print() const
{
    print(std::cout);
}

Report
metricsReport(const telemetry::MetricRegistry &registry)
{
    Report report("Telemetry metrics",
                  {"metric", "value", "count", "mean", "p50", "p95",
                   "p99", "max"});
    for (const std::string &name : registry.names()) {
        if (const auto *c = registry.findCounter(name)) {
            report.addRow({name, Report::count(c->value())});
        } else if (const auto *g = registry.findGauge(name)) {
            report.addRow({name, Report::num(g->value(), 2)});
        } else if (const auto *h = registry.findHistogram(name)) {
            report.addRow({name, "-", Report::count(h->count()),
                           Report::num(h->mean(), 2),
                           Report::count(h->quantile(0.50)),
                           Report::count(h->quantile(0.95)),
                           Report::count(h->quantile(0.99)),
                           Report::count(h->max())});
        }
    }
    return report;
}

} // namespace chisel
