/**
 * @file
 * The Chisel architectural simulator (Section 5).
 *
 * "We built an architectural simulator for Chisel which incorporates
 *  130nm embedded DRAM models ... In addition to functional
 *  operation and verification, the simulator reports storage sizes
 *  and power dissipation estimates."
 *
 * ChiselSimulator is that tool: it wraps a ChiselEngine together
 * with the eDRAM storage/power/area/timing models and a built-in
 * oracle, drives lookup and update workloads through it, and emits
 * one consolidated report.  The bench harnesses use the underlying
 * pieces directly; this facade is the one-call API for users who
 * want the paper's Section-6-style numbers for their own tables.
 */

#ifndef CHISEL_SIM_SIMULATOR_HH
#define CHISEL_SIM_SIMULATOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/engine.hh"
#include "core/power_model.hh"
#include "core/storage_model.hh"
#include "core/timing_model.hh"
#include "mem/edram.hh"
#include "route/updates.hh"
#include "trie/binary_trie.hh"

namespace chisel {

/** Everything the simulator measured. */
struct SimulationReport
{
    // Functional.
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t mismatches = 0;      ///< Oracle disagreements (0!).
    uint64_t updatesApplied = 0;
    double updatesPerSecond = 0.0;
    double lookupsPerSecond = 0.0;
    UpdateStats updateBreakdown;

    // Architecture.
    size_t routes = 0;
    size_t subCells = 0;
    size_t spilled = 0;
    StorageBreakdown measuredStorage;
    StorageBreakdown worstCaseStorage;
    PowerBreakdown measuredPower;      ///< At the configured rate.
    PowerBreakdown worstCasePower;
    double dieAreaMm2 = 0.0;
    TimingReport timing;

    /** Render a human-readable summary. */
    void print(std::ostream &os) const;
};

/**
 * One-stop simulation driver around a ChiselEngine.
 */
class ChiselSimulator
{
  public:
    /**
     * @param table Initial routing table.
     * @param config Engine parameters.
     * @param tech Memory technology (default: the paper's 130 nm).
     * @param msps Search rate assumed by the power model.
     */
    ChiselSimulator(const RoutingTable &table,
                    const ChiselConfig &config = {},
                    const Technology &tech = Technology::nec130nm(),
                    double msps = 200.0);

    /**
     * Run @p keys through the engine, verifying each answer against
     * the oracle.  Accumulates into the report.
     */
    void runLookups(const std::vector<Key128> &keys);

    /** Apply an update stream (also mirrored into the oracle). */
    void runUpdates(const std::vector<Update> &updates);

    /** The consolidated report so far. */
    SimulationReport report() const;

    /** Direct engine access. */
    ChiselEngine &engine() { return *engine_; }
    const ChiselEngine &engine() const { return *engine_; }

  private:
    ChiselConfig config_;
    Technology tech_;
    double msps_;
    std::unique_ptr<ChiselEngine> engine_;
    BinaryTrie oracle_;

    uint64_t lookups_ = 0;
    uint64_t hits_ = 0;
    uint64_t mismatches_ = 0;
    uint64_t updates_ = 0;
    double lookupSeconds_ = 0.0;
    double updateSeconds_ = 0.0;
};

} // namespace chisel

#endif // CHISEL_SIM_SIMULATOR_HH
