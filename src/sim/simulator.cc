#include "sim/simulator.hh"

#include <ostream>

#include "sim/stats.hh"

namespace chisel {

ChiselSimulator::ChiselSimulator(const RoutingTable &table,
                                 const ChiselConfig &config,
                                 const Technology &tech, double msps)
    : config_(config),
      tech_(tech),
      msps_(msps),
      engine_(std::make_unique<ChiselEngine>(table, config)),
      oracle_(table)
{
}

void
ChiselSimulator::runLookups(const std::vector<Key128> &keys)
{
    StopWatch watch;
    for (const auto &key : keys) {
        auto got = engine_->lookup(key);
        ++lookups_;
        hits_ += got.found;

        auto want = oracle_.lookup(key, config_.keyWidth);
        bool agree = want.has_value() == got.found &&
                     (!want || want->nextHop == got.nextHop);
        mismatches_ += !agree;
    }
    lookupSeconds_ += watch.seconds();
}

void
ChiselSimulator::runUpdates(const std::vector<Update> &updates)
{
    StopWatch watch;
    for (const auto &u : updates) {
        engine_->apply(u);
        ++updates_;
        if (u.kind == UpdateKind::Announce)
            oracle_.insert(u.prefix, u.nextHop);
        else
            oracle_.erase(u.prefix);
    }
    updateSeconds_ += watch.seconds();
}

SimulationReport
ChiselSimulator::report() const
{
    SimulationReport r;
    r.lookups = lookups_;
    r.hits = hits_;
    r.mismatches = mismatches_;
    r.updatesApplied = updates_;
    r.updatesPerSecond =
        updateSeconds_ > 0 ? static_cast<double>(updates_) /
                                 updateSeconds_
                           : 0.0;
    r.lookupsPerSecond =
        lookupSeconds_ > 0 ? static_cast<double>(lookups_) /
                                 lookupSeconds_
                           : 0.0;
    r.updateBreakdown = engine_->updateStats();

    r.routes = engine_->routeCount();
    r.subCells = engine_->cellCount();
    r.spilled = engine_->spillCount();
    r.measuredStorage = engine_->storage();

    StorageParams sp;
    sp.keyWidth = config_.keyWidth;
    sp.stride = config_.stride;
    sp.k = config_.k;
    sp.ratio = config_.ratio;
    r.worstCaseStorage = chiselWorstCase(r.routes ? r.routes : 1, sp);

    ChiselPowerModel power(tech_);
    r.measuredPower = power.measured(*engine_, msps_);
    r.worstCasePower =
        power.worstCase(r.routes ? r.routes : 1, sp, msps_);

    EdramModel edram(tech_.edram);
    r.dieAreaMm2 = edram.areaMm2(r.measuredStorage.totalBits());

    ChiselTimingModel timing;
    r.timing = timing.report(sp);
    return r;
}

void
SimulationReport::print(std::ostream &os) const
{
    os << "Chisel simulation report\n"
       << "  routes: " << routes << "  sub-cells: " << subCells
       << "  spilled: " << spilled << "\n"
       << "  lookups: " << lookups << " (" << hits << " hits, "
       << mismatches << " oracle mismatches)\n";
    if (lookupsPerSecond > 0) {
        os << "  software lookup rate: "
           << static_cast<uint64_t>(lookupsPerSecond) << "/s\n";
    }
    if (updatesApplied > 0) {
        os << "  updates: " << updatesApplied << " at "
           << static_cast<uint64_t>(updatesPerSecond)
           << "/s, incremental fraction "
           << updateBreakdown.incrementalFraction() << "\n";
    }
    // "Provisioned" includes the engine's update headroom; the
    // worst-case model is the paper's deterministic sizing for
    // exactly the current route count.
    os << "  storage provisioned: " << measuredStorage.totalMbits()
       << " Mb; worst-case model at n=routes: "
       << worstCaseStorage.totalMbits() << " Mb\n"
       << "  power (provisioned tables): "
       << measuredPower.totalWatts()
       << " W; worst-case model: " << worstCasePower.totalWatts()
       << " W\n"
       << "  die area: " << dieAreaMm2 << " mm^2\n"
       << "  timing: " << timing.pipelineStages
       << " accesses/lookup, " << timing.totalLatencyNs
       << " ns latency, " << timing.throughputMsps
       << " Msps sustained\n";
}

} // namespace chisel
