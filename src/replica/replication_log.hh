/**
 * @file
 * Leader-side journal shipping (docs/replication.md).
 *
 * ReplicationLog wraps an UpdateJournal with the same append surface
 * and tees every durably logged record to a warm standby: records go
 * to disk first (the journal stays the source of truth — a record
 * that was not durably logged is never shipped, so the follower can
 * never be *ahead* of the leader's durable history), then into a
 * bounded in-memory tail that a background shipper thread drains
 * over a ByteStream to the follower.
 *
 * The shipper owns every unreliable part of the path:
 *
 *  - (re)connecting through a TransportFactory with exponential
 *    backoff and jitter, resuming from the follower's
 *    last-applied sequence number after a drop;
 *  - handing the follower a full snapshot (via a caller-supplied
 *    SnapshotProvider) whenever its resume point has already been
 *    evicted from the tail — the catch-up path therefore never
 *    replays from genesis and the follower never runs Bloomier
 *    setup to catch up;
 *  - heartbeats on idle, so the follower can detect leader death;
 *  - fencing: every frame is stamped with this leader's epoch, and a
 *    Fenced reply (or a Hello advertising a higher epoch) latches
 *    fenced() — the leader stops shipping permanently, which is what
 *    keeps a revived stale leader from corrupting a promoted
 *    follower.
 *
 * Thread-safety: the append surface is mutex-serialized and safe
 * against the shipper; appends never block on the network (the tail
 * is bounded by eviction, not backpressure — a slow follower falls
 * back to snapshot catch-up instead of stalling the leader).
 */

#ifndef CHISEL_REPLICA_REPLICATION_LOG_HH
#define CHISEL_REPLICA_REPLICATION_LOG_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/journal.hh"
#include "replica/transport.hh"
#include "replica/wire.hh"

namespace chisel::telemetry { class MetricRegistry; }

namespace chisel::replica {

/**
 * Produces a connected stream to the follower, or nullptr when the
 * follower is unreachable (the shipper backs off and retries).
 */
using TransportFactory =
    std::function<std::unique_ptr<ByteStream>()>;

/**
 * Produces a full snapshot image (persist snapshot format) of the
 * leader's engine, reporting the journal seq it covers.  Called from
 * the shipper thread; the implementation must do its own
 * synchronization against the update path (ConcurrentChisel's
 * saveSnapshot already does).
 */
using SnapshotProvider =
    std::function<std::vector<uint8_t>(uint64_t &covered_seq)>;

/** Tuning for the shipping side. */
struct ReplicationOptions
{
    /** This leader's fencing epoch (monotonic across promotions). */
    uint64_t epoch = 1;

    /** Retained ship-tail entries before eviction to snapshot path. */
    size_t tailCapacity = 1 << 16;

    /** Idle interval between heartbeats, ms. */
    uint64_t heartbeatMs = 50;

    /** Reconnect backoff bounds, ms (exponential, with jitter). */
    uint64_t backoffMinMs = 10;
    uint64_t backoffMaxMs = 2000;

    /** Handshake (Hello) wait per connection, ms. */
    uint64_t handshakeTimeoutMs = 2000;

    /** Seed for the backoff jitter stream (deterministic tests). */
    uint64_t jitterSeed = 0x5ca1ab1e;
};

/** A point-in-time copy of the shipper's counters. */
struct ReplicationStats
{
    uint64_t epoch = 0;
    uint64_t lastSeq = 0;         ///< Journal head (acknowledged).
    uint64_t lastDurableSeq = 0;  ///< Journal head covered by fsync.
    uint64_t lastAckedSeq = 0;    ///< Follower-confirmed applied seq.
    uint64_t lagRecords = 0;      ///< lastSeq - lastAckedSeq.
    uint64_t recordsShipped = 0;
    uint64_t bytesShipped = 0;
    uint64_t snapshotsShipped = 0;
    uint64_t reconnects = 0;      ///< Successful handshakes.
    uint64_t connectFailures = 0;
    uint64_t journalIoErrors = 0;
    bool connected = false;
    bool fenced = false;
};

class ReplicationLog
{
  public:
    /**
     * Open (or create) the journal at @p path exactly like
     * UpdateJournal, with shipping configured by @p options but not
     * yet started (call start()).
     */
    ReplicationLog(const std::string &path, uint64_t config_fingerprint,
                   size_t fsync_every = 1,
                   const ReplicationOptions &options = {});
    ~ReplicationLog();

    ReplicationLog(const ReplicationLog &) = delete;
    ReplicationLog &operator=(const ReplicationLog &) = delete;

    // ---- The UpdateJournal append surface (tee'd) -------------------

    /**
     * Durably log @p update and queue it for shipping.  @return the
     * assigned seq, or 0 if the journal refused the append (I/O
     * failure) — in which case nothing is shipped either: a leader
     * that cannot durably log must stop acknowledging, not keep a
     * follower more durable than itself.
     */
    uint64_t append(const Update &update);

    void appendOutcome(uint64_t seq, const UpdateOutcome &outcome);
    void appendSnapshotMark(uint64_t seq);
    void appendHousekeeping(persist::JournalRecord::HousekeepingKind kind);

    /**
     * Durably log a live-resize mark carrying the grown config, and
     * ship it so the follower re-plans its engine at the same point
     * in the update stream the leader did.
     */
    void appendResizeMark(const ChiselConfig &config);

    void sync();

    /** See UpdateJournal::ioHealthy — false means stop acking. */
    bool durable() const;
    uint64_t ioErrors() const;
    uint64_t lastSeq() const;

    /** See UpdateJournal::lastDurableSeq — the fsync-covered head. */
    uint64_t lastDurableSeq() const;

    // ---- Shipping ---------------------------------------------------

    /**
     * Start the shipper thread.  @p snapshots may be null only if
     * the tail can never be evicted ahead of the follower (tests);
     * when the snapshot path is needed and no provider exists, the
     * connection is dropped and retried.
     */
    void start(TransportFactory factory, SnapshotProvider snapshots);

    /** Stop the shipper and close the current connection. */
    void stop();

    /**
     * True once a peer rejected this leader's epoch: shipping has
     * permanently stopped and promotion has happened elsewhere.  The
     * owner should stop acknowledging writes.
     */
    bool fenced() const { return fenced_.load(std::memory_order_acquire); }

    ReplicationStats stats() const;

    /** Export stats as gauges under @p prefix (default "replication"). */
    void publish(telemetry::MetricRegistry &registry,
                 const std::string &prefix = "replication") const;

  private:
    /** One queued shipment: an encoded journal record. */
    struct ShipEntry
    {
        uint64_t seq;  ///< The record's seq stamp.
        std::vector<uint8_t> bytes;  ///< encodeJournalRecord output.
    };

    /** Queue @p rec for shipping (caller holds mutex_). */
    void enqueue(const persist::JournalRecord &rec);

    void shipperMain(TransportFactory factory,
                     SnapshotProvider snapshots);

    /** One connection's lifetime; @return false to back off. */
    bool serveConnection(ByteStream &stream,
                         SnapshotProvider &snapshots);

    /** Drain pending Ack/Fenced frames; @return false on fence/drop. */
    bool drainControl(ByteStream &stream, FrameReader &reader,
                      int timeout_ms);

    void latchFence(uint64_t peer_epoch);

    /** Interruptible sleep; @return false if stopping. */
    bool sleepMs(uint64_t ms);

    mutable std::mutex mutex_;
    persist::UpdateJournal journal_;
    ReplicationOptions options_;
    uint64_t fingerprint_;

    // Ship tail (guarded by mutex_).  Entries are addressed by a
    // monotonic index so the shipper can detect eviction races:
    // entry i lives at tail_[i - tailBase_] while i >= tailBase_.
    std::deque<ShipEntry> tail_;
    uint64_t tailBase_ = 0;       ///< Index of tail_.front().
    uint64_t tailNext_ = 0;       ///< Index one past tail_.back().
    uint64_t evictedThroughSeq_ = 0;  ///< Max seq stamp ever evicted.
    std::condition_variable tailCv_;  ///< Signalled on enqueue/stop.

    std::thread shipper_;
    bool started_ = false;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> fenced_{false};
    std::atomic<bool> connected_{false};

    /** Current connection, exposed so stop() can unblock the shipper. */
    std::mutex streamMutex_;
    ByteStream *activeStream_ = nullptr;

    // Counters (relaxed atomics: written by shipper, read anywhere).
    std::atomic<uint64_t> lastAckedSeq_{0};
    std::atomic<uint64_t> recordsShipped_{0};
    std::atomic<uint64_t> bytesShipped_{0};
    std::atomic<uint64_t> snapshotsShipped_{0};
    std::atomic<uint64_t> reconnects_{0};
    std::atomic<uint64_t> connectFailures_{0};
};

} // namespace chisel::replica

#endif // CHISEL_REPLICA_REPLICATION_LOG_HH
