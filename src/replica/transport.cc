#include "replica/transport.hh"

#include <algorithm>
#include <chrono>

#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.hh"

namespace chisel::replica {

// ---- PipeTransport ---------------------------------------------------

bool
PipeTransport::send(const uint8_t *data, size_t len)
{
    std::unique_lock<std::mutex> lock(out_->mutex);
    size_t sent = 0;
    while (sent < len) {
        if (out_->closed)
            return false;
        if (out_->breakAfter == 0) {
            // The peer died mid-transfer: the prefix already queued
            // stays deliverable, the rest of this send vanishes.
            out_->closed = true;
            out_->readable.notify_all();
            out_->writable.notify_all();
            return false;
        }
        if (out_->bytes.size() >= out_->capacity) {
            out_->writable.wait(lock, [&] {
                return out_->closed ||
                       out_->bytes.size() < out_->capacity;
            });
            continue;
        }
        size_t room = out_->capacity - out_->bytes.size();
        size_t n = std::min({len - sent, room, out_->breakAfter});
        out_->bytes.insert(out_->bytes.end(), data + sent,
                           data + sent + n);
        sent += n;
        if (out_->breakAfter != SIZE_MAX)
            out_->breakAfter -= n;
        out_->readable.notify_all();
    }
    return true;
}

int
PipeTransport::recv(uint8_t *data, size_t len, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(in_->mutex);
    if (in_->bytes.empty()) {
        if (in_->closed)
            return -1;
        in_->readable.wait_for(lock,
                               std::chrono::milliseconds(timeout_ms),
                               [&] {
                                   return in_->closed ||
                                          !in_->bytes.empty();
                               });
    }
    if (in_->bytes.empty())
        return in_->closed ? -1 : 0;
    size_t n = std::min(len, in_->bytes.size());
    std::copy_n(in_->bytes.begin(), n, data);
    in_->bytes.erase(in_->bytes.begin(),
                     in_->bytes.begin() + static_cast<long>(n));
    in_->writable.notify_all();
    return static_cast<int>(n);
}

void
PipeTransport::shutdown()
{
    for (auto &ch : {out_, in_}) {
        std::lock_guard<std::mutex> lock(ch->mutex);
        ch->closed = true;
        ch->readable.notify_all();
        ch->writable.notify_all();
    }
}

void
PipeTransport::breakAfter(size_t bytes)
{
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->breakAfter = bytes;
    if (bytes == 0) {
        out_->closed = true;
        out_->readable.notify_all();
        out_->writable.notify_all();
    }
}

std::pair<std::shared_ptr<PipeTransport>, std::shared_ptr<PipeTransport>>
makePipePair(size_t capacity)
{
    auto a2b = std::make_shared<PipeTransport::Channel>();
    auto b2a = std::make_shared<PipeTransport::Channel>();
    a2b->capacity = b2a->capacity = capacity;

    auto a = std::make_shared<PipeTransport>();
    a->out_ = a2b;
    a->in_ = b2a;
    auto b = std::make_shared<PipeTransport>();
    b->out_ = b2a;
    b->in_ = a2b;
    return {a, b};
}

namespace {

class BrokenStream : public ByteStream
{
  public:
    bool send(const uint8_t *, size_t) override { return false; }
    int recv(uint8_t *, size_t, int) override { return -1; }
    void shutdown() override {}
};

} // namespace

std::unique_ptr<ByteStream>
makeBrokenStream()
{
    return std::make_unique<BrokenStream>();
}

// ---- TCP loopback ----------------------------------------------------

TcpStream::~TcpStream()
{
    // Close exactly once, on the owning thread: by the time the
    // owner destroys the stream it has published activeStream_ =
    // nullptr, so no foreign shutdown() can still reach this object.
    int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0)
        ::close(fd);
}

bool
TcpStream::send(const uint8_t *data, size_t len)
{
    return net::sendAll(fd_.load(std::memory_order_acquire), data, len);
}

int
TcpStream::recv(uint8_t *data, size_t len, int timeout_ms)
{
    return net::recvSome(fd_.load(std::memory_order_acquire), data,
                         len, timeout_ms);
}

void
TcpStream::shutdown()
{
    // Foreign-thread safe: half-close only.  A concurrent send()/
    // recv() blocked on this fd wakes with EOF/EPIPE; the fd stays
    // valid (not closed, not reusable) until the destructor runs on
    // the owning thread.
    int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

TcpListener::~TcpListener()
{
    close();
}

bool
TcpListener::listen(uint16_t port)
{
    close();
    fd_ = net::listenLoopback(port, 4, &port_);
    if (fd_ < 0) {
        port_ = 0;
        return false;
    }
    return true;
}

std::unique_ptr<ByteStream>
TcpListener::accept(int timeout_ms)
{
    int client = net::acceptOn(fd_, timeout_ms);
    if (client < 0)
        return nullptr;
    return std::make_unique<TcpStream>(client);
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

std::unique_ptr<ByteStream>
tcpConnect(uint16_t port, int timeout_ms)
{
    int fd = net::connectLoopback(port, timeout_ms);
    if (fd < 0)
        return nullptr;
    return std::make_unique<TcpStream>(fd);
}

} // namespace chisel::replica
