#include "replica/replication_log.hh"

#include <algorithm>
#include <chrono>

#include "common/clock.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "persist/codec.hh"
#include "replica/wire.hh"
#include "telemetry/flight.hh"
#include "telemetry/metrics.hh"

namespace chisel::replica {

ReplicationLog::ReplicationLog(const std::string &path,
                               uint64_t config_fingerprint,
                               size_t fsync_every,
                               const ReplicationOptions &options)
    : journal_(path, config_fingerprint, fsync_every),
      options_(options), fingerprint_(config_fingerprint)
{
    // A reopened journal recovers history (lastSeq > 0) that was never
    // enqueued in the ship tail.  Treat everything up to the recovered
    // head as evicted, so a follower resuming from below it takes the
    // snapshot path instead of silently skipping pre-restart records.
    evictedThroughSeq_ = journal_.lastSeq();
}

ReplicationLog::~ReplicationLog()
{
    stop();
}

// ---- Append surface --------------------------------------------------

void
ReplicationLog::enqueue(const persist::JournalRecord &rec)
{
    // Caller holds mutex_ (the append surface serializes here).
    tail_.push_back({rec.seq, persist::encodeJournalRecord(rec)});
    ++tailNext_;
    while (tail_.size() > options_.tailCapacity) {
        evictedThroughSeq_ =
            std::max(evictedThroughSeq_, tail_.front().seq);
        tail_.pop_front();
        ++tailBase_;
    }
    tailCv_.notify_all();
}

uint64_t
ReplicationLog::append(const Update &update)
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t seq = journal_.append(update);
    if (seq == 0)
        return 0;  // Not durable -> not shipped, not acknowledged.
    persist::JournalRecord rec;
    rec.type = persist::JournalRecord::Type::Update;
    rec.seq = seq;
    rec.update = update;
    enqueue(rec);
    return seq;
}

void
ReplicationLog::appendOutcome(uint64_t seq, const UpdateOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.appendOutcome(seq, outcome);
    if (!journal_.ioHealthy())
        return;
    persist::JournalRecord rec;
    rec.type = persist::JournalRecord::Type::Outcome;
    rec.seq = seq;
    rec.cls = static_cast<uint8_t>(outcome.cls);
    rec.status = static_cast<uint8_t>(outcome.status);
    rec.setupRetries = outcome.setupRetries;
    rec.tcamOverflows = outcome.tcamOverflows;
    rec.slowPathInserts = outcome.slowPathInserts;
    rec.slowPathRejections = outcome.slowPathRejections;
    rec.parityRecoveries = outcome.parityRecoveries;
    enqueue(rec);
}

void
ReplicationLog::appendSnapshotMark(uint64_t seq)
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.appendSnapshotMark(seq);
    if (!journal_.ioHealthy())
        return;
    persist::JournalRecord rec;
    rec.type = persist::JournalRecord::Type::SnapshotMark;
    rec.seq = seq;
    enqueue(rec);
}

void
ReplicationLog::appendHousekeeping(
    persist::JournalRecord::HousekeepingKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t stamp = journal_.lastSeq();
    journal_.appendHousekeeping(kind);
    if (!journal_.ioHealthy())
        return;
    persist::JournalRecord rec;
    rec.type = persist::JournalRecord::Type::Housekeeping;
    rec.seq = stamp;
    rec.housekeeping = kind;
    enqueue(rec);
}

void
ReplicationLog::appendResizeMark(const ChiselConfig &config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t stamp = journal_.lastSeq();
    journal_.appendResizeMark(config);
    if (!journal_.ioHealthy())
        return;
    persist::JournalRecord rec;
    rec.type = persist::JournalRecord::Type::ResizeMark;
    rec.seq = stamp;
    rec.resizeConfig = config;
    enqueue(rec);
}

void
ReplicationLog::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.sync();
}

bool
ReplicationLog::durable() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journal_.ioHealthy();
}

uint64_t
ReplicationLog::ioErrors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journal_.ioErrors();
}

uint64_t
ReplicationLog::lastSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journal_.lastSeq();
}

uint64_t
ReplicationLog::lastDurableSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journal_.lastDurableSeq();
}

// ---- Shipping --------------------------------------------------------

void
ReplicationLog::start(TransportFactory factory,
                      SnapshotProvider snapshots)
{
    if (started_)
        return;
    started_ = true;
    stopping_.store(false, std::memory_order_release);
    shipper_ = std::thread([this, factory = std::move(factory),
                            snapshots = std::move(snapshots)]() mutable {
        shipperMain(std::move(factory), std::move(snapshots));
    });
}

void
ReplicationLog::stop()
{
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tailCv_.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(streamMutex_);
        if (activeStream_)
            activeStream_->shutdown();
    }
    if (shipper_.joinable())
        shipper_.join();
    started_ = false;
}

bool
ReplicationLog::sleepMs(uint64_t ms)
{
    uint64_t deadline = monotonicNowNs() + ms * 1000000ull;
    while (monotonicNowNs() < deadline) {
        if (stopping_.load(std::memory_order_acquire))
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return !stopping_.load(std::memory_order_acquire);
}

void
ReplicationLog::latchFence(uint64_t peer_epoch)
{
    if (fenced_.exchange(true, std::memory_order_acq_rel))
        return;
    warn("replication: fenced at epoch " +
         std::to_string(options_.epoch) + " by peer epoch " +
         std::to_string(peer_epoch) + "; shipping stopped for good");
    CHISEL_FLIGHT_EVENT(ReplicaFence, 0, options_.epoch, peer_epoch);
}

void
ReplicationLog::shipperMain(TransportFactory factory,
                            SnapshotProvider snapshots)
{
    Rng jitter(options_.jitterSeed);
    uint64_t backoff = options_.backoffMinMs;

    while (!stopping_.load(std::memory_order_acquire) && !fenced()) {
        std::unique_ptr<ByteStream> stream =
            factory ? factory() : nullptr;
        if (!stream) {
            connectFailures_.fetch_add(1, std::memory_order_relaxed);
            uint64_t delay = backoff + jitter.nextBelow(backoff / 2 + 1);
            backoff = std::min(backoff * 2, options_.backoffMaxMs);
            if (!sleepMs(delay))
                break;
            continue;
        }

        {
            std::lock_guard<std::mutex> lock(streamMutex_);
            activeStream_ = stream.get();
        }
        bool handshook = serveConnection(*stream, snapshots);
        {
            std::lock_guard<std::mutex> lock(streamMutex_);
            activeStream_ = nullptr;
        }
        connected_.store(false, std::memory_order_release);
        stream->shutdown();

        if (handshook) {
            backoff = options_.backoffMinMs;  // The peer was alive.
        } else {
            connectFailures_.fetch_add(1, std::memory_order_relaxed);
            uint64_t delay = backoff + jitter.nextBelow(backoff / 2 + 1);
            backoff = std::min(backoff * 2, options_.backoffMaxMs);
            if (!sleepMs(delay))
                break;
        }
    }
    connected_.store(false, std::memory_order_release);
}

bool
ReplicationLog::drainControl(ByteStream &stream, FrameReader &reader,
                             int timeout_ms)
{
    uint8_t buf[4096];
    int n = stream.recv(buf, sizeof(buf), timeout_ms);
    if (n < 0)
        return false;
    if (n > 0)
        reader.feed(buf, static_cast<size_t>(n));
    Frame f;
    while (reader.next(f)) {
        switch (f.type) {
          case FrameType::Ack: {
            uint64_t prev =
                lastAckedSeq_.load(std::memory_order_relaxed);
            while (f.appliedSeq > prev &&
                   !lastAckedSeq_.compare_exchange_weak(
                       prev, f.appliedSeq, std::memory_order_relaxed))
                ;
            break;
          }
          case FrameType::Fenced:
            latchFence(f.currentEpoch);
            return false;
          default:
            break;  // Nothing else flows follower -> leader.
        }
    }
    return !reader.bad();
}

bool
ReplicationLog::serveConnection(ByteStream &stream,
                                SnapshotProvider &snapshots)
{
    FrameReader reader;
    Frame hello;
    if (!readFrame(stream, reader, hello, options_.handshakeTimeoutMs))
        return false;
    if (hello.type == FrameType::Fenced) {
        latchFence(hello.currentEpoch);
        return false;
    }
    if (hello.type != FrameType::Hello)
        return false;
    if (hello.fingerprint != fingerprint_) {
        warn("replication: follower config fingerprint mismatch "
             "(ours " + std::to_string(fingerprint_) + ", theirs " +
             std::to_string(hello.fingerprint) + "); not shipping");
        return false;
    }
    if (std::max(hello.epoch, hello.maxEpochSeen) > options_.epoch) {
        // The follower has seen a newer leader: we are stale.
        latchFence(std::max(hello.epoch, hello.maxEpochSeen));
        return false;
    }

    uint64_t head;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        head = journal_.lastSeq();
    }
    if (!sendFrame(stream,
                   makeWelcome(options_.epoch, fingerprint_, head),
                   nullptr))
        return false;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    connected_.store(true, std::memory_order_release);

    // Decide where this session starts: resume from the follower's
    // last applied seq if every later record is still in the tail,
    // else ship a fresh snapshot and continue past its covered seq.
    uint64_t resumeSeq = hello.lastAppliedSeq;
    bool needSnapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        needSnapshot = resumeSeq < evictedThroughSeq_;
    }
    if (needSnapshot) {
        // Snapshot-unavailable is a backoff-eligible failure: the
        // session cannot proceed, and returning handshook would reset
        // the backoff into a tight reconnect/re-image loop.
        if (!snapshots) {
            warn("replication: follower needs snapshot catch-up but "
                 "no snapshot provider is configured");
            return false;
        }
        uint64_t covered = 0;
        std::vector<uint8_t> image;
        bool consistent = false;
        for (int attempt = 0; attempt < 3 && !consistent; ++attempt) {
            image = snapshots(covered);
            std::lock_guard<std::mutex> lock(mutex_);
            // The snapshot must meet the retained tail, or records
            // between its covered seq and the tail would be lost.
            consistent = !image.empty() &&
                         covered >= evictedThroughSeq_;
        }
        if (!consistent) {
            warn("replication: snapshot provider could not produce a "
                 "consistent image for catch-up; backing off");
            return false;
        }
        if (!sendFrame(stream,
                       makeSnapshotBegin(options_.epoch, covered,
                                         image.size()),
                       nullptr))
            return true;
        constexpr size_t kChunk = 64 * 1024;
        for (size_t off = 0; off < image.size(); off += kChunk) {
            size_t n = std::min(kChunk, image.size() - off);
            if (!sendFrame(stream,
                           makeSnapshotChunk(options_.epoch, off,
                                             image.data() + off, n),
                           nullptr))
                return true;
        }
        if (!sendFrame(stream,
                       makeSnapshotEnd(
                           options_.epoch,
                           persist::crc32(image.data(), image.size())),
                       nullptr))
            return true;
        bytesShipped_.fetch_add(image.size(),
                                std::memory_order_relaxed);
        snapshotsShipped_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(ReplicaShip, FrameType::SnapshotEnd,
                            covered, image.size());
        resumeSeq = covered;
    }

    // Position the cursor at the first retained entry past resumeSeq.
    uint64_t cursor;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cursor = tailBase_;
        while (cursor < tailNext_ &&
               tail_[cursor - tailBase_].seq <= resumeSeq)
            ++cursor;
    }

    uint64_t lastSendNs = monotonicNowNs();
    uint64_t heartbeatNs = options_.heartbeatMs * 1000000ull;

    while (!stopping_.load(std::memory_order_acquire) && !fenced()) {
        // Gather the next batch (waiting briefly when idle).
        std::vector<ShipEntry> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (cursor < tailBase_)
                return true;  // Evicted past us: reconnect -> snapshot.
            auto gather = [&] {
                while (cursor < tailNext_ && batch.size() < 64) {
                    batch.push_back(tail_[cursor - tailBase_]);
                    ++cursor;
                }
            };
            gather();
            if (batch.empty()) {
                tailCv_.wait_for(
                    lock, std::chrono::milliseconds(options_.heartbeatMs),
                    [&] {
                        return stopping_.load(
                                   std::memory_order_acquire) ||
                               tailNext_ > cursor;
                    });
                if (cursor < tailBase_)
                    return true;
                gather();
            }
        }

        for (const ShipEntry &entry : batch) {
            uint64_t bytes = 0;
            if (!sendFrame(stream,
                           makeRecord(options_.epoch, entry.bytes),
                           &bytes))
                return true;  // Drop: reconnect with resume.
            recordsShipped_.fetch_add(1, std::memory_order_relaxed);
            bytesShipped_.fetch_add(bytes, std::memory_order_relaxed);
            CHISEL_FLIGHT_EVENT(ReplicaShip, FrameType::Record,
                                entry.seq, bytes);
            lastSendNs = monotonicNowNs();
        }

        if (batch.empty() &&
            monotonicNowNs() - lastSendNs >= heartbeatNs) {
            uint64_t seq;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                seq = journal_.lastSeq();
            }
            if (!sendFrame(stream,
                           makeHeartbeat(options_.epoch, seq),
                           nullptr))
                return true;
            lastSendNs = monotonicNowNs();
        }

        if (!drainControl(stream, reader, 0))
            return true;
    }
    return true;
}

// ---- Introspection ---------------------------------------------------

ReplicationStats
ReplicationLog::stats() const
{
    ReplicationStats s;
    s.epoch = options_.epoch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.lastSeq = journal_.lastSeq();
        s.lastDurableSeq = journal_.lastDurableSeq();
        s.journalIoErrors = journal_.ioErrors();
    }
    s.lastAckedSeq = lastAckedSeq_.load(std::memory_order_relaxed);
    s.lagRecords =
        s.lastSeq > s.lastAckedSeq ? s.lastSeq - s.lastAckedSeq : 0;
    s.recordsShipped = recordsShipped_.load(std::memory_order_relaxed);
    s.bytesShipped = bytesShipped_.load(std::memory_order_relaxed);
    s.snapshotsShipped =
        snapshotsShipped_.load(std::memory_order_relaxed);
    s.reconnects = reconnects_.load(std::memory_order_relaxed);
    s.connectFailures =
        connectFailures_.load(std::memory_order_relaxed);
    s.connected = connected_.load(std::memory_order_acquire);
    s.fenced = fenced();
    return s;
}

void
ReplicationLog::publish(telemetry::MetricRegistry &registry,
                        const std::string &prefix) const
{
    ReplicationStats s = stats();
    auto set = [&](const char *name, uint64_t v) {
        registry.gauge(prefix + "." + name)
            .set(static_cast<double>(v));
    };
    set("epoch", s.epoch);
    set("last_seq", s.lastSeq);
    set("last_durable_seq", s.lastDurableSeq);
    set("last_acked_seq", s.lastAckedSeq);
    set("lag_records", s.lagRecords);
    set("records_shipped", s.recordsShipped);
    set("bytes_shipped", s.bytesShipped);
    set("snapshots_shipped", s.snapshotsShipped);
    set("reconnects", s.reconnects);
    set("connect_failures", s.connectFailures);
    set("journal_io_errors", s.journalIoErrors);
    set("connected", s.connected ? 1 : 0);
    set("fenced", s.fenced ? 1 : 0);
}

} // namespace chisel::replica
