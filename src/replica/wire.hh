/**
 * @file
 * Replication wire protocol (docs/replication.md).
 *
 * Journal shipping runs over a plain byte stream, so the protocol is
 * self-framing and every frame is independently verifiable:
 *
 *     frame   := u32 payload length | u32 CRC(payload) | payload
 *     payload := u8 type | u64 epoch | type-specific fields
 *
 * — the same length|CRC|payload discipline as the on-disk journal
 * (src/persist/journal.hh), so a torn frame at a connection drop is
 * detected exactly like a torn tail at a crash: the CRC fails or the
 * length runs past the received bytes, and the connection is simply
 * dropped and re-established.
 *
 * Every frame carries the sender's fencing epoch.  Epochs are
 * monotonic across promotions: a follower that has promoted at epoch
 * E rejects any connection whose frames carry epoch < E by replying
 * Fenced — that is the whole split-brain defence, and it works even
 * when a SIGKILL'd leader is revived with stale state, because the
 * revived leader still ships its old epoch.
 *
 * Frame types and their type-specific fields:
 *
 *     Hello (follower -> leader, first frame on every connection)
 *         u64 config fingerprint | u64 lastAppliedSeq | u64 maxEpochSeen
 *     Welcome (leader -> follower, accepts the Hello)
 *         u64 config fingerprint | u64 lastSeq (leader journal head)
 *     Record (leader -> follower)
 *         journal-record bytes (persist::encodeJournalRecord)
 *     SnapshotBegin (leader -> follower)
 *         u64 coveredSeq | u64 totalBytes (of the snapshot image)
 *     SnapshotChunk (leader -> follower)
 *         u64 offset | remaining bytes = image chunk
 *     SnapshotEnd (leader -> follower)
 *         u32 CRC(whole image)
 *     Heartbeat (leader -> follower, on idle)
 *         u64 lastSeq
 *     Ack (follower -> leader)
 *         u64 appliedSeq
 *     Fenced (follower -> leader, then the follower drops the
 *             connection; the leader must stop shipping for good)
 *         u64 currentEpoch (the epoch the sender is fenced at)
 */

#ifndef CHISEL_REPLICA_WIRE_HH
#define CHISEL_REPLICA_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persist/journal.hh"

namespace chisel::replica {

/** Frame types (u8 on the wire; values are part of the protocol). */
enum class FrameType : uint8_t
{
    Hello = 1,
    Welcome = 2,
    Record = 3,
    SnapshotBegin = 4,
    SnapshotChunk = 5,
    SnapshotEnd = 6,
    Heartbeat = 7,
    Ack = 8,
    Fenced = 9,
};

const char *frameTypeName(FrameType t);

/** One decoded frame (the union of all types' fields). */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    uint64_t epoch = 0;

    uint64_t fingerprint = 0;     ///< Hello, Welcome.
    uint64_t lastAppliedSeq = 0;  ///< Hello.
    uint64_t maxEpochSeen = 0;    ///< Hello.
    uint64_t lastSeq = 0;         ///< Welcome, Heartbeat.
    uint64_t appliedSeq = 0;      ///< Ack.
    uint64_t currentEpoch = 0;    ///< Fenced.
    uint64_t coveredSeq = 0;      ///< SnapshotBegin.
    uint64_t totalBytes = 0;      ///< SnapshotBegin.
    uint64_t offset = 0;          ///< SnapshotChunk.
    uint32_t imageCrc = 0;        ///< SnapshotEnd.

    /** Record: journal-record bytes; SnapshotChunk: image bytes. */
    std::vector<uint8_t> payload;
};

/** Encode @p frame as one wire frame (length | crc | payload). */
std::vector<uint8_t> encodeFrame(const Frame &frame);

// Convenience constructors for the fixed-field frame types.
Frame makeHello(uint64_t epoch, uint64_t fingerprint,
                uint64_t last_applied_seq, uint64_t max_epoch_seen);
Frame makeWelcome(uint64_t epoch, uint64_t fingerprint,
                  uint64_t last_seq);
Frame makeRecord(uint64_t epoch, std::vector<uint8_t> record_bytes);
Frame makeSnapshotBegin(uint64_t epoch, uint64_t covered_seq,
                        uint64_t total_bytes);
Frame makeSnapshotChunk(uint64_t epoch, uint64_t offset,
                        const uint8_t *data, size_t len);
Frame makeSnapshotEnd(uint64_t epoch, uint32_t image_crc);
Frame makeHeartbeat(uint64_t epoch, uint64_t last_seq);
Frame makeAck(uint64_t epoch, uint64_t applied_seq);
Frame makeFenced(uint64_t epoch, uint64_t current_epoch);

/** Upper bound a peer will accept for one frame's payload. */
constexpr uint32_t kMaxFramePayload = 64u << 20;

/** Upper bound a follower will accept for one snapshot transfer. */
constexpr uint64_t kMaxSnapshotBytes = 1ull << 31;

/**
 * Incremental frame parser.  Feed arbitrary byte chunks as they
 * arrive; poll next() for completed frames.  Any malformed frame —
 * oversized length, CRC mismatch, truncated or trailing payload
 * bytes, unknown type — poisons the reader (bad() turns true, next()
 * returns false forever): stream framing cannot be trusted past the
 * first violation, so the caller drops the connection and
 * reconnects, exactly like the journal's torn-tail rule.
 */
class FrameReader
{
  public:
    /** Append @p len received bytes. */
    void feed(const uint8_t *data, size_t len);

    /**
     * Decode the next completed frame into @p out.  @return false
     * when no complete frame is buffered (or the reader is bad()).
     */
    bool next(Frame &out);

    /** True once the stream violated framing; unrecoverable. */
    bool bad() const { return bad_; }

    /** Why bad() turned true (empty while the stream is healthy). */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    void poison(const std::string &why);

    std::vector<uint8_t> buf_;
    size_t pos_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
    bool bad_ = false;
    std::string error_;
};

class ByteStream;

/**
 * Encode @p frame and send it on @p stream.  When @p bytes_out is
 * non-null it receives the wire size.  @return false on a broken
 * stream.
 */
bool sendFrame(ByteStream &stream, const Frame &frame,
               uint64_t *bytes_out = nullptr);

/**
 * Receive into @p reader until one frame completes, waiting at most
 * @p timeout_ms total.  @return false on timeout, closed stream, or
 * a poisoned reader (check reader.bad() to tell the last two apart
 * from a plain timeout).
 */
bool readFrame(ByteStream &stream, FrameReader &reader, Frame &out,
               uint64_t timeout_ms);

} // namespace chisel::replica

#endif // CHISEL_REPLICA_WIRE_HH
