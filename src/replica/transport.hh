/**
 * @file
 * Byte-stream transports for journal shipping (docs/replication.md).
 *
 * The replication protocol (src/replica/wire.hh) runs over any
 * ordered byte stream with drop semantics — it never assumes message
 * boundaries, delivery guarantees, or survival of either endpoint.
 * Two implementations cover every harness:
 *
 *  - PipeTransport: an in-process pair of bounded byte queues, for
 *    deterministic tests.  Either end can be broken at an exact byte
 *    offset (breakAfter), which is how the torn-ship and
 *    mid-snapshot-kill scenarios are staged without processes.
 *
 *  - TCP loopback: TcpListener / tcpConnect over the shared socket
 *    helpers (src/net/socket.hh), for the two-process failover soak
 *    (bench/failover_soak.cc).
 *
 * Thread-safety: one thread per direction per endpoint (the shipper
 * sends and polls acks from a single thread; the follower likewise).
 * shutdown() may be called from any thread to unblock both.
 */

#ifndef CHISEL_REPLICA_TRANSPORT_HH
#define CHISEL_REPLICA_TRANSPORT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

namespace chisel::replica {

/** An ordered byte stream that can break at any instant. */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /**
     * Send @p len bytes.  @return false once the stream is broken —
     * bytes already accepted may or may not have been delivered
     * (exactly the guarantee a TCP send gives).
     */
    virtual bool send(const uint8_t *data, size_t len) = 0;

    /**
     * Receive up to @p len bytes, waiting at most @p timeout_ms.
     * @return bytes read (> 0), 0 on timeout, -1 once the stream is
     * broken and drained.
     */
    virtual int recv(uint8_t *data, size_t len, int timeout_ms) = 0;

    /** Break the stream from this side; wakes blocked peers. */
    virtual void shutdown() = 0;
};

/**
 * One end of an in-process pipe pair.  Construction via makePipePair;
 * both ends share the buffers, so either may outlive the other.
 */
class PipeTransport : public ByteStream
{
  public:
    bool send(const uint8_t *data, size_t len) override;
    int recv(uint8_t *data, size_t len, int timeout_ms) override;
    void shutdown() override;

    /**
     * Break this end's *send* direction after @p bytes more bytes
     * have been accepted: the prefix is delivered, the rest of that
     * send (and everything after) is lost, and send() reports the
     * break.  Models a peer dying mid-frame — the torn-ship case.
     */
    void breakAfter(size_t bytes);

  private:
    friend std::pair<std::shared_ptr<PipeTransport>,
                     std::shared_ptr<PipeTransport>>
    makePipePair(size_t capacity);

    /** One direction: a bounded byte queue with close/break flags. */
    struct Channel
    {
        std::mutex mutex;
        std::condition_variable readable;
        std::condition_variable writable;
        std::deque<uint8_t> bytes;
        size_t capacity = 1 << 20;
        bool closed = false;        ///< No more bytes will arrive.
        size_t breakAfter = SIZE_MAX;  ///< Sender bytes until break.
    };

    std::shared_ptr<Channel> out_;  ///< This end sends here.
    std::shared_ptr<Channel> in_;   ///< This end receives from here.
};

/**
 * A connected pipe pair: bytes sent on .first arrive at .second and
 * vice versa.  @p capacity bounds each direction's in-flight bytes
 * (senders block when full, like a socket buffer).
 */
std::pair<std::shared_ptr<PipeTransport>, std::shared_ptr<PipeTransport>>
makePipePair(size_t capacity = 1 << 20);

/** A broken-on-arrival stream (connection refused), for tests. */
std::unique_ptr<ByteStream> makeBrokenStream();

// ---- TCP loopback (the process-boundary transport) -------------------

/**
 * A ByteStream over a connected socket; owns the fd.
 *
 * shutdown() may be called from a foreign thread while the owning
 * thread is blocked in send()/recv(): it only half-closes the socket
 * (::shutdown), which wakes the blocked call.  The fd itself is
 * closed exactly once, by the destructor on the owning thread, so a
 * foreign shutdown can never race a close into fd reuse.
 */
class TcpStream : public ByteStream
{
  public:
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream() override;

    bool send(const uint8_t *data, size_t len) override;
    int recv(uint8_t *data, size_t len, int timeout_ms) override;
    void shutdown() override;

  private:
    std::atomic<int> fd_{-1};
};

/**
 * A loopback listening socket (the follower side): 127.0.0.1 binding
 * and poll-based accept via net::listenLoopback / net::acceptOn.
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral).  False on failure. */
    bool listen(uint16_t port);

    /** The bound port (resolves port 0); 0 when not listening. */
    uint16_t port() const { return port_; }

    /** Accept one connection, waiting at most @p timeout_ms. */
    std::unique_ptr<ByteStream> accept(int timeout_ms);

    void close();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/** Connect to 127.0.0.1:@p port; nullptr on refusal/timeout. */
std::unique_ptr<ByteStream> tcpConnect(uint16_t port,
                                       int timeout_ms = 1000);

} // namespace chisel::replica

#endif // CHISEL_REPLICA_TRANSPORT_HH
