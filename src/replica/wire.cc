#include "replica/wire.hh"

#include <algorithm>
#include <cstring>

#include "common/clock.hh"
#include "persist/codec.hh"
#include "replica/transport.hh"

namespace chisel::replica {

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "hello";
      case FrameType::Welcome: return "welcome";
      case FrameType::Record: return "record";
      case FrameType::SnapshotBegin: return "snapshot_begin";
      case FrameType::SnapshotChunk: return "snapshot_chunk";
      case FrameType::SnapshotEnd: return "snapshot_end";
      case FrameType::Heartbeat: return "heartbeat";
      case FrameType::Ack: return "ack";
      case FrameType::Fenced: return "fenced";
    }
    return "?";
}

std::vector<uint8_t>
encodeFrame(const Frame &frame)
{
    persist::Encoder payload;
    payload.u8(static_cast<uint8_t>(frame.type));
    payload.u64(frame.epoch);
    switch (frame.type) {
      case FrameType::Hello:
        payload.u64(frame.fingerprint);
        payload.u64(frame.lastAppliedSeq);
        payload.u64(frame.maxEpochSeen);
        break;
      case FrameType::Welcome:
        payload.u64(frame.fingerprint);
        payload.u64(frame.lastSeq);
        break;
      case FrameType::Record:
        payload.bytes(frame.payload.data(), frame.payload.size());
        break;
      case FrameType::SnapshotBegin:
        payload.u64(frame.coveredSeq);
        payload.u64(frame.totalBytes);
        break;
      case FrameType::SnapshotChunk:
        payload.u64(frame.offset);
        payload.bytes(frame.payload.data(), frame.payload.size());
        break;
      case FrameType::SnapshotEnd:
        payload.u32(frame.imageCrc);
        break;
      case FrameType::Heartbeat:
        payload.u64(frame.lastSeq);
        break;
      case FrameType::Ack:
        payload.u64(frame.appliedSeq);
        break;
      case FrameType::Fenced:
        payload.u64(frame.currentEpoch);
        break;
    }

    persist::Encoder out;
    out.u32(static_cast<uint32_t>(payload.size()));
    out.u32(persist::crc32(payload.buffer().data(), payload.size()));
    out.bytes(payload.buffer().data(), payload.size());
    return std::move(out.buffer());
}

Frame
makeHello(uint64_t epoch, uint64_t fingerprint,
          uint64_t last_applied_seq, uint64_t max_epoch_seen)
{
    Frame f;
    f.type = FrameType::Hello;
    f.epoch = epoch;
    f.fingerprint = fingerprint;
    f.lastAppliedSeq = last_applied_seq;
    f.maxEpochSeen = max_epoch_seen;
    return f;
}

Frame
makeWelcome(uint64_t epoch, uint64_t fingerprint, uint64_t last_seq)
{
    Frame f;
    f.type = FrameType::Welcome;
    f.epoch = epoch;
    f.fingerprint = fingerprint;
    f.lastSeq = last_seq;
    return f;
}

Frame
makeRecord(uint64_t epoch, std::vector<uint8_t> record_bytes)
{
    Frame f;
    f.type = FrameType::Record;
    f.epoch = epoch;
    f.payload = std::move(record_bytes);
    return f;
}

Frame
makeSnapshotBegin(uint64_t epoch, uint64_t covered_seq,
                  uint64_t total_bytes)
{
    Frame f;
    f.type = FrameType::SnapshotBegin;
    f.epoch = epoch;
    f.coveredSeq = covered_seq;
    f.totalBytes = total_bytes;
    return f;
}

Frame
makeSnapshotChunk(uint64_t epoch, uint64_t offset, const uint8_t *data,
                  size_t len)
{
    Frame f;
    f.type = FrameType::SnapshotChunk;
    f.epoch = epoch;
    f.offset = offset;
    f.payload.assign(data, data + len);
    return f;
}

Frame
makeSnapshotEnd(uint64_t epoch, uint32_t image_crc)
{
    Frame f;
    f.type = FrameType::SnapshotEnd;
    f.epoch = epoch;
    f.imageCrc = image_crc;
    return f;
}

Frame
makeHeartbeat(uint64_t epoch, uint64_t last_seq)
{
    Frame f;
    f.type = FrameType::Heartbeat;
    f.epoch = epoch;
    f.lastSeq = last_seq;
    return f;
}

Frame
makeAck(uint64_t epoch, uint64_t applied_seq)
{
    Frame f;
    f.type = FrameType::Ack;
    f.epoch = epoch;
    f.appliedSeq = applied_seq;
    return f;
}

Frame
makeFenced(uint64_t epoch, uint64_t current_epoch)
{
    Frame f;
    f.type = FrameType::Fenced;
    f.epoch = epoch;
    f.currentEpoch = current_epoch;
    return f;
}

// ---- FrameReader -----------------------------------------------------

void
FrameReader::feed(const uint8_t *data, size_t len)
{
    if (bad_)
        return;
    // Compact the consumed prefix before it dominates the buffer.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

void
FrameReader::poison(const std::string &why)
{
    bad_ = true;
    error_ = why;
    buf_.clear();
    pos_ = 0;
}

bool
FrameReader::next(Frame &out)
{
    if (bad_)
        return false;
    size_t avail = buf_.size() - pos_;
    if (avail < 8)
        return false;

    const uint8_t *head = buf_.data() + pos_;
    persist::Decoder header(head, 8);
    uint32_t len = header.u32();
    uint32_t crc = header.u32();
    if (len > kMaxFramePayload) {
        poison("frame length " + std::to_string(len) +
               " exceeds limit");
        return false;
    }
    if (avail < 8 + static_cast<size_t>(len))
        return false;

    const uint8_t *payload = head + 8;
    if (persist::crc32(payload, len) != crc) {
        poison("frame CRC mismatch");
        return false;
    }

    try {
        persist::Decoder d(payload, len);
        Frame f;
        uint8_t type = d.u8();
        f.epoch = d.u64();
        switch (static_cast<FrameType>(type)) {
          case FrameType::Hello:
            f.type = FrameType::Hello;
            f.fingerprint = d.u64();
            f.lastAppliedSeq = d.u64();
            f.maxEpochSeen = d.u64();
            break;
          case FrameType::Welcome:
            f.type = FrameType::Welcome;
            f.fingerprint = d.u64();
            f.lastSeq = d.u64();
            break;
          case FrameType::Record:
            f.type = FrameType::Record;
            f.payload.assign(payload + d.position(), payload + len);
            // Validate the embedded journal record now, so a corrupt
            // record poisons the stream here rather than surfacing a
            // DecodeError deep inside the follower's apply loop.
            persist::decodeJournalRecord(f.payload.data(),
                                         f.payload.size());
            break;
          case FrameType::SnapshotBegin:
            f.type = FrameType::SnapshotBegin;
            f.coveredSeq = d.u64();
            f.totalBytes = d.u64();
            break;
          case FrameType::SnapshotChunk:
            f.type = FrameType::SnapshotChunk;
            f.offset = d.u64();
            f.payload.assign(payload + d.position(), payload + len);
            break;
          case FrameType::SnapshotEnd:
            f.type = FrameType::SnapshotEnd;
            f.imageCrc = d.u32();
            break;
          case FrameType::Heartbeat:
            f.type = FrameType::Heartbeat;
            f.lastSeq = d.u64();
            break;
          case FrameType::Ack:
            f.type = FrameType::Ack;
            f.appliedSeq = d.u64();
            break;
          case FrameType::Fenced:
            f.type = FrameType::Fenced;
            f.currentEpoch = d.u64();
            break;
          default:
            poison("unknown frame type " + std::to_string(type));
            return false;
        }
        // Fixed-field frames must consume their payload exactly;
        // Record/SnapshotChunk take the remainder by construction.
        if (f.type != FrameType::Record &&
            f.type != FrameType::SnapshotChunk && !d.atEnd()) {
            poison("trailing bytes after " +
                   std::string(frameTypeName(f.type)) + " frame");
            return false;
        }
        pos_ += 8 + len;
        out = std::move(f);
        return true;
    } catch (const persist::DecodeError &e) {
        poison(std::string("malformed frame payload: ") + e.what());
        return false;
    }
}

// ---- Stream helpers --------------------------------------------------

bool
sendFrame(ByteStream &stream, const Frame &frame, uint64_t *bytes_out)
{
    std::vector<uint8_t> wire = encodeFrame(frame);
    if (bytes_out)
        *bytes_out = wire.size();
    return stream.send(wire.data(), wire.size());
}

bool
readFrame(ByteStream &stream, FrameReader &reader, Frame &out,
          uint64_t timeout_ms)
{
    uint64_t deadline = monotonicNowNs() + timeout_ms * 1000000ull;
    while (true) {
        if (reader.next(out))
            return true;
        if (reader.bad())
            return false;
        uint64_t now = monotonicNowNs();
        if (now >= deadline)
            return false;
        int slice = static_cast<int>(
            std::min<uint64_t>((deadline - now) / 1000000ull + 1, 100));
        uint8_t buf[4096];
        int n = stream.recv(buf, sizeof(buf), slice);
        if (n < 0)
            return false;
        if (n > 0)
            reader.feed(buf, static_cast<size_t>(n));
    }
}

} // namespace chisel::replica
