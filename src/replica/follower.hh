/**
 * @file
 * Warm-standby follower (docs/replication.md).
 *
 * A Follower keeps a second ConcurrentChisel continuously warm by
 * replaying the leader's shipped journal stream: it bootstraps from
 * the latest shipped snapshot (installed through the engine's
 * pointer-flip restore, so its own readers never stall), then applies
 * Record frames in sequence order.  The catch-up path is pure
 * replay — the follower never runs a Bloomier setup to catch up,
 * which is the whole point of keeping it warm.
 *
 * Robustness properties:
 *
 *  - every shipped record re-validates through the same
 *    persist::Decoder path as a disk journal (the FrameReader already
 *    CRC-checks each frame; malformed payloads drop the connection);
 *  - duplicate records (an inevitable consequence of resume and of
 *    snapshot/tail overlap) are skipped by sequence number;
 *  - a partially transferred snapshot is discarded on disconnect —
 *    the engine only ever installs images whose whole-file CRC
 *    matched;
 *  - heartbeats stamp lastFrameNs(); leaderSilent() turns true after
 *    heartbeatTimeout with no traffic, which is the promotion
 *    trigger for an external supervisor;
 *  - fencing: once promote() has stamped a new epoch, any connection
 *    offering an older (or equal) epoch is answered with Fenced and
 *    dropped, so a revived stale leader can never write to a
 *    promoted follower.
 *
 * The follower serves /healthz 503 until caughtUp() (see
 * obs::IntrospectionServer::attachFollower).
 */

#ifndef CHISEL_REPLICA_FOLLOWER_HH
#define CHISEL_REPLICA_FOLLOWER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "replica/transport.hh"
#include "replica/wire.hh"

namespace chisel::concurrent { class ConcurrentChisel; }
namespace chisel::telemetry { class MetricRegistry; }

namespace chisel::replica {

/** Follower tuning. */
struct FollowerOptions
{
    /** No leader traffic for this long means the leader is dead. */
    uint64_t heartbeatTimeoutMs = 500;

    /** caughtUp() requires lag() <= this many records. */
    uint64_t lagBound = 64;

    /** Where shipped snapshot images spool before installation. */
    std::string spoolPath = "follower_snapshot.chs";

    /** Highest fencing epoch already seen (recovered state). */
    uint64_t initialMaxEpoch = 0;

    /** Handshake (Welcome) wait per connection, ms. */
    uint64_t handshakeTimeoutMs = 2000;

    /** Send an Ack at least every this many applied records. */
    uint64_t ackEvery = 32;
};

/** What promote() did. */
struct PromotionReport
{
    uint64_t epoch = 0;            ///< The new fencing epoch.
    uint64_t replayedRecords = 0;  ///< Journal-tail records applied.
    uint64_t lastAppliedSeq = 0;   ///< Head seq after promotion.
};

/** A point-in-time copy of the follower's state. */
struct FollowerStats
{
    uint64_t lastAppliedSeq = 0;
    uint64_t leaderLastSeq = 0;
    uint64_t lagRecords = 0;
    uint64_t recordsApplied = 0;
    uint64_t duplicatesSkipped = 0;
    uint64_t snapshotsInstalled = 0;
    uint64_t snapshotsDiscarded = 0;  ///< Partial/corrupt transfers.
    uint64_t connectionsServed = 0;
    uint64_t fenceRejects = 0;        ///< Stale-epoch leaders turned away.
    uint64_t maxEpochSeen = 0;
    uint64_t promotedEpoch = 0;       ///< 0 until promote().
    bool connected = false;
    bool caughtUp = false;
    bool promoted = false;
};

class Follower
{
  public:
    /**
     * @p engine is the warm standby (a concurrent::ConcurrentChisel);
     * it must have been built under the same ChiselConfig as the
     * leader (@p config_fingerprint).
     */
    Follower(concurrent::ConcurrentChisel &engine,
             uint64_t config_fingerprint,
             const FollowerOptions &options = {});
    ~Follower();

    Follower(const Follower &) = delete;
    Follower &operator=(const Follower &) = delete;

    // ---- Serving ----------------------------------------------------

    /**
     * Serve one leader connection to completion (drop, fence, or
     * stop()).  Blocking; tests drive PipeTransport ends through
     * this directly.
     */
    void handleConnection(ByteStream &stream);

    /**
     * Serve @p listener on a background thread: accept one leader at
     * a time and handleConnection each.  The listener must outlive
     * stop().
     */
    void start(TcpListener &listener);

    /** Stop the serve thread and drop the current connection. */
    void stop();

    // ---- Promotion --------------------------------------------------

    /**
     * Promote this follower to leader: stamps a fencing epoch one
     * past every epoch ever seen, optionally replays the tail of
     * @p journal_path (the old leader's journal — records with seq
     * beyond lastAppliedSeq(), so nothing journal-synced is lost even
     * if it was never shipped), records a FailedOver action on the
     * engine's health monitor, and starts fencing stale leaders.
     */
    PromotionReport promote(const std::string &journal_path = "");

    // ---- State ------------------------------------------------------

    uint64_t lastAppliedSeq() const
    {
        return lastApplied_.load(std::memory_order_acquire);
    }

    uint64_t leaderLastSeq() const
    {
        return leaderLastSeq_.load(std::memory_order_acquire);
    }

    /** Records the leader has durably logged but we have not applied. */
    uint64_t lag() const;

    bool connected() const
    {
        return connected_.load(std::memory_order_acquire);
    }

    bool promoted() const
    {
        return promotedEpoch_.load(std::memory_order_acquire) != 0;
    }

    /** The promotion epoch (0 before promote()). */
    uint64_t epoch() const
    {
        return promotedEpoch_.load(std::memory_order_acquire);
    }

    uint64_t maxEpochSeen() const
    {
        return maxEpochSeen_.load(std::memory_order_acquire);
    }

    /**
     * Ready to serve: promoted, or connected with replication lag
     * within options.lagBound.  The /healthz gate.
     */
    bool caughtUp() const;

    /** monotonicNowNs() of the last leader frame (0 = never). */
    uint64_t lastFrameNs() const
    {
        return lastFrameNs_.load(std::memory_order_acquire);
    }

    /**
     * True when a connection was established at some point but no
     * frame has arrived within heartbeatTimeout — the promotion
     * trigger.
     */
    bool leaderSilent() const;

    FollowerStats stats() const;

    /** Export stats as gauges under @p prefix (default "replica"). */
    void publish(telemetry::MetricRegistry &registry,
                 const std::string &prefix = "replica") const;

  private:
    /** In-flight snapshot transfer state (per connection). */
    struct SnapshotTransfer
    {
        bool active = false;
        uint64_t coveredSeq = 0;
        uint64_t totalBytes = 0;
        std::vector<uint8_t> image;
    };

    /** @return false to drop the connection. */
    bool handleFrame(ByteStream &stream, const Frame &frame,
                     SnapshotTransfer &xfer, uint64_t &since_ack);

    bool applyRecord(const persist::JournalRecord &rec);

    /**
     * Install a fully transferred, CRC-valid image.  @return false
     * when installation failed (spool or restore I/O) — the caller
     * must drop the connection rather than ack and apply later
     * records onto an engine missing the snapshot base.  The benign
     * already-past-this-image race reports true (state is consistent,
     * just ahead).
     */
    bool installSnapshot(SnapshotTransfer &xfer);
    void noteEpoch(uint64_t epoch);

    /** Epoch a leader must present; anything lower is fenced. */
    uint64_t requiredEpoch() const;

    concurrent::ConcurrentChisel &engine_;
    uint64_t fingerprint_;
    FollowerOptions options_;

    /** Serializes record application against promote(). */
    mutable std::mutex applyMutex_;

    std::thread serveThread_;
    bool started_ = false;
    std::atomic<bool> stopping_{false};

    std::mutex streamMutex_;
    ByteStream *activeStream_ = nullptr;

    std::atomic<uint64_t> lastApplied_{0};
    std::atomic<uint64_t> leaderLastSeq_{0};
    std::atomic<uint64_t> lastFrameNs_{0};
    std::atomic<uint64_t> maxEpochSeen_{0};
    std::atomic<uint64_t> promotedEpoch_{0};
    std::atomic<bool> connected_{false};
    std::atomic<bool> everConnected_{false};

    std::atomic<uint64_t> recordsApplied_{0};
    std::atomic<uint64_t> duplicatesSkipped_{0};
    std::atomic<uint64_t> snapshotsInstalled_{0};
    std::atomic<uint64_t> snapshotsDiscarded_{0};
    std::atomic<uint64_t> connectionsServed_{0};
    std::atomic<uint64_t> fenceRejects_{0};
};

} // namespace chisel::replica

#endif // CHISEL_REPLICA_FOLLOWER_HH
