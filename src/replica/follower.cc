#include "replica/follower.hh"

#include <algorithm>
#include <cstdio>

#include "common/clock.hh"
#include "common/logging.hh"
#include "concurrent/concurrent_engine.hh"
#include "persist/codec.hh"
#include "persist/journal.hh"
#include "telemetry/flight.hh"
#include "telemetry/metrics.hh"

namespace chisel::replica {

Follower::Follower(concurrent::ConcurrentChisel &engine,
                   uint64_t config_fingerprint,
                   const FollowerOptions &options)
    : engine_(engine), fingerprint_(config_fingerprint),
      options_(options)
{
    maxEpochSeen_.store(options.initialMaxEpoch,
                        std::memory_order_release);
}

Follower::~Follower()
{
    stop();
}

// ---- State -----------------------------------------------------------

uint64_t
Follower::lag() const
{
    uint64_t head = leaderLastSeq_.load(std::memory_order_acquire);
    uint64_t applied = lastApplied_.load(std::memory_order_acquire);
    return head > applied ? head - applied : 0;
}

bool
Follower::caughtUp() const
{
    if (promoted())
        return true;
    return connected() && lag() <= options_.lagBound;
}

bool
Follower::leaderSilent() const
{
    if (!everConnected_.load(std::memory_order_acquire) || promoted())
        return false;
    uint64_t last = lastFrameNs_.load(std::memory_order_acquire);
    if (last == 0)
        return false;
    return monotonicNowNs() - last >
           options_.heartbeatTimeoutMs * 1000000ull;
}

void
Follower::noteEpoch(uint64_t epoch)
{
    uint64_t prev = maxEpochSeen_.load(std::memory_order_relaxed);
    while (epoch > prev &&
           !maxEpochSeen_.compare_exchange_weak(
               prev, epoch, std::memory_order_acq_rel))
        ;
}

uint64_t
Follower::requiredEpoch() const
{
    // Before promotion: any epoch at least as new as the newest ever
    // seen is legitimate.  After promoting at epoch E, *we* are the
    // epoch-E leader — only a successor (epoch > E) may ship to us.
    uint64_t promoted_at =
        promotedEpoch_.load(std::memory_order_acquire);
    uint64_t seen = maxEpochSeen_.load(std::memory_order_acquire);
    if (promoted_at != 0)
        return promoted_at + 1;
    return seen;
}

// ---- Serving ---------------------------------------------------------

void
Follower::handleConnection(ByteStream &stream)
{
    connectionsServed_.fetch_add(1, std::memory_order_relaxed);
    FrameReader reader;

    if (!sendFrame(stream,
                   makeHello(0, fingerprint_,
                             lastApplied_.load(
                                 std::memory_order_acquire),
                             maxEpochSeen_.load(
                                 std::memory_order_acquire))))
        return;

    Frame welcome;
    if (!readFrame(stream, reader, welcome,
                   options_.handshakeTimeoutMs))
        return;
    if (welcome.type != FrameType::Welcome)
        return;
    if (welcome.fingerprint != fingerprint_) {
        warn("replica: leader config fingerprint mismatch (ours " +
             std::to_string(fingerprint_) + ", theirs " +
             std::to_string(welcome.fingerprint) + "); rejecting");
        return;
    }
    if (welcome.epoch < requiredEpoch()) {
        // A revived stale leader: fence it and drop the connection.
        fenceRejects_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(ReplicaFence, 0, welcome.epoch,
                            requiredEpoch());
        sendFrame(stream,
                  makeFenced(maxEpochSeen_.load(
                                 std::memory_order_acquire),
                             requiredEpoch()));
        return;
    }
    noteEpoch(welcome.epoch);
    leaderLastSeq_.store(
        std::max(leaderLastSeq_.load(std::memory_order_relaxed),
                 welcome.lastSeq),
        std::memory_order_release);
    lastFrameNs_.store(monotonicNowNs(), std::memory_order_release);
    connected_.store(true, std::memory_order_release);
    everConnected_.store(true, std::memory_order_release);

    SnapshotTransfer xfer;
    uint64_t since_ack = 0;
    bool alive = true;
    while (alive && !stopping_.load(std::memory_order_acquire)) {
        Frame f;
        bool progressed = false;
        while (reader.next(f)) {
            progressed = true;
            lastFrameNs_.store(monotonicNowNs(),
                               std::memory_order_release);
            if (f.epoch < requiredEpoch()) {
                fenceRejects_.fetch_add(1, std::memory_order_relaxed);
                CHISEL_FLIGHT_EVENT(ReplicaFence, 0, f.epoch,
                                    requiredEpoch());
                sendFrame(stream,
                          makeFenced(maxEpochSeen_.load(
                                         std::memory_order_acquire),
                                     requiredEpoch()));
                alive = false;
                break;
            }
            noteEpoch(f.epoch);
            if (!handleFrame(stream, f, xfer, since_ack)) {
                alive = false;
                break;
            }
        }
        if (!alive || reader.bad())
            break;
        if (!progressed) {
            uint8_t buf[8192];
            int n = stream.recv(buf, sizeof(buf), 50);
            if (n < 0)
                break;
            if (n > 0)
                reader.feed(buf, static_cast<size_t>(n));
        }
    }

    if (xfer.active)
        snapshotsDiscarded_.fetch_add(1, std::memory_order_relaxed);
    connected_.store(false, std::memory_order_release);
}

bool
Follower::handleFrame(ByteStream &stream, const Frame &frame,
                      SnapshotTransfer &xfer, uint64_t &since_ack)
{
    switch (frame.type) {
      case FrameType::Record: {
        persist::JournalRecord rec;
        try {
            rec = persist::decodeJournalRecord(frame.payload.data(),
                                               frame.payload.size());
        } catch (const persist::DecodeError &) {
            return false;  // Corrupt shipment: drop and resync.
        }
        if (applyRecord(rec) &&
            ++since_ack >= options_.ackEvery) {
            since_ack = 0;
            sendFrame(stream,
                      makeAck(maxEpochSeen_.load(
                                  std::memory_order_acquire),
                              lastApplied_.load(
                                  std::memory_order_acquire)));
        }
        return true;
      }
      case FrameType::SnapshotBegin:
        if (frame.totalBytes > kMaxSnapshotBytes) {
            warn("replica: refusing " +
                 std::to_string(frame.totalBytes) +
                 "-byte snapshot transfer");
            return false;
        }
        xfer.active = true;
        xfer.coveredSeq = frame.coveredSeq;
        xfer.totalBytes = frame.totalBytes;
        xfer.image.clear();
        xfer.image.reserve(frame.totalBytes);
        return true;
      case FrameType::SnapshotChunk:
        if (!xfer.active || frame.offset != xfer.image.size() ||
            xfer.image.size() + frame.payload.size() >
                xfer.totalBytes)
            return false;  // Out-of-order/oversized: discard transfer.
        xfer.image.insert(xfer.image.end(), frame.payload.begin(),
                          frame.payload.end());
        return true;
      case FrameType::SnapshotEnd: {
        if (!xfer.active || xfer.image.size() != xfer.totalBytes ||
            persist::crc32(xfer.image.data(), xfer.image.size()) !=
                frame.imageCrc) {
            xfer = SnapshotTransfer{};
            snapshotsDiscarded_.fetch_add(1,
                                          std::memory_order_relaxed);
            return false;
        }
        bool installed = installSnapshot(xfer);
        xfer = SnapshotTransfer{};
        if (!installed)
            return false;  // No base installed: never ack past it.
        since_ack = 0;
        sendFrame(stream,
                  makeAck(maxEpochSeen_.load(
                              std::memory_order_acquire),
                          lastApplied_.load(
                              std::memory_order_acquire)));
        return true;
      }
      case FrameType::Heartbeat: {
        uint64_t prev =
            leaderLastSeq_.load(std::memory_order_relaxed);
        while (frame.lastSeq > prev &&
               !leaderLastSeq_.compare_exchange_weak(
                   prev, frame.lastSeq, std::memory_order_acq_rel))
            ;
        // Answer with our position so the leader's lag gauge moves
        // even when the record stream is idle.
        sendFrame(stream,
                  makeAck(maxEpochSeen_.load(
                              std::memory_order_acquire),
                          lastApplied_.load(
                              std::memory_order_acquire)));
        since_ack = 0;
        return true;
      }
      case FrameType::Fenced:
        // A leader never fences a follower; treat as protocol abuse.
        return false;
      default:
        // Hello/Welcome/Ack mid-stream: protocol violation.
        return false;
    }
}

bool
Follower::applyRecord(const persist::JournalRecord &rec)
{
    std::lock_guard<std::mutex> lock(applyMutex_);
    uint64_t applied = lastApplied_.load(std::memory_order_acquire);
    switch (rec.type) {
      case persist::JournalRecord::Type::Update:
        if (rec.seq <= applied) {
            duplicatesSkipped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        engine_.apply(rec.update);
        lastApplied_.store(rec.seq, std::memory_order_release);
        {
            uint64_t prev =
                leaderLastSeq_.load(std::memory_order_relaxed);
            while (rec.seq > prev &&
                   !leaderLastSeq_.compare_exchange_weak(
                       prev, rec.seq, std::memory_order_acq_rel))
                ;
        }
        recordsApplied_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(ReplicaApply, rec.type, rec.seq, 0);
        return true;
      case persist::JournalRecord::Type::Housekeeping:
        // Stamped (not sequenced); duplicates on resume are benign —
        // purgeDirty is a maintenance sweep, not a state mutation
        // replay depends on (docs/replication.md).
        if (rec.seq < applied) {
            duplicatesSkipped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        engine_.purgeDirtyNow();
        recordsApplied_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(ReplicaApply, rec.type, rec.seq, 0);
        return true;
      case persist::JournalRecord::Type::ResizeMark:
        // Stamped like Housekeeping; a duplicate on resume is a
        // no-op anyway (resizeTo is idempotent on a matching config).
        if (rec.seq < applied) {
            duplicatesSkipped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        // Re-plan at the same point in the stream the leader did, so
        // both sides' spill/slow-path admission decisions agree from
        // here on.  An incompatible mark (geometry change) is refused
        // by resizeTo and logged; the stream continues.
        engine_.resizeTo(rec.resizeConfig);
        recordsApplied_.fetch_add(1, std::memory_order_relaxed);
        CHISEL_FLIGHT_EVENT(ReplicaApply, rec.type, rec.seq, 0);
        return true;
      case persist::JournalRecord::Type::Outcome:
      case persist::JournalRecord::Type::SnapshotMark:
        // Commit markers and snapshot anchors carry no engine state;
        // they matter to disk recovery, not to a live replica.
        CHISEL_FLIGHT_EVENT(ReplicaApply, rec.type, rec.seq, 0);
        return false;
    }
    return false;
}

bool
Follower::installSnapshot(SnapshotTransfer &xfer)
{
    std::lock_guard<std::mutex> lock(applyMutex_);
    if (xfer.coveredSeq <=
        lastApplied_.load(std::memory_order_acquire)) {
        // We are already past this image (a resume raced a snapshot
        // decision); installing it would rewind the engine.  The
        // session may continue: our state covers the image.
        snapshotsDiscarded_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    // Spool to disk and install through the engine's pointer-flip
    // restore; a partial/corrupt image never got this far (CRC).
    FILE *f = std::fopen(options_.spoolPath.c_str(), "wb");
    if (f == nullptr) {
        warn("replica: cannot spool snapshot to '" +
             options_.spoolPath + "'");
        snapshotsDiscarded_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    bool wrote = std::fwrite(xfer.image.data(), 1, xfer.image.size(),
                             f) == xfer.image.size();
    wrote = std::fclose(f) == 0 && wrote;
    if (!wrote || !engine_.restoreFromSnapshot(options_.spoolPath)) {
        warn("replica: shipped snapshot failed to install");
        snapshotsDiscarded_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    lastApplied_.store(xfer.coveredSeq, std::memory_order_release);
    snapshotsInstalled_.fetch_add(1, std::memory_order_relaxed);
    CHISEL_FLIGHT_EVENT(ReplicaApply, FrameType::SnapshotEnd,
                        xfer.coveredSeq, xfer.image.size());
    return true;
}

void
Follower::start(TcpListener &listener)
{
    if (started_)
        return;
    started_ = true;
    stopping_.store(false, std::memory_order_release);
    serveThread_ = std::thread([this, &listener] {
        while (!stopping_.load(std::memory_order_acquire)) {
            std::unique_ptr<ByteStream> stream = listener.accept(100);
            if (!stream)
                continue;
            {
                std::lock_guard<std::mutex> lock(streamMutex_);
                activeStream_ = stream.get();
            }
            handleConnection(*stream);
            {
                std::lock_guard<std::mutex> lock(streamMutex_);
                activeStream_ = nullptr;
            }
            stream->shutdown();
        }
    });
}

void
Follower::stop()
{
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(streamMutex_);
        if (activeStream_)
            activeStream_->shutdown();
    }
    if (serveThread_.joinable())
        serveThread_.join();
    started_ = false;
}

// ---- Promotion -------------------------------------------------------

PromotionReport
Follower::promote(const std::string &journal_path)
{
    std::lock_guard<std::mutex> lock(applyMutex_);
    PromotionReport report;
    uint64_t applied = lastApplied_.load(std::memory_order_acquire);

    if (!journal_path.empty()) {
        // Replay the old leader's durable tail: every journal-synced
        // update beyond our replicated position gets applied, so an
        // acknowledged route can only be lost if its journal record
        // was lost too — which the leader's durability contract
        // (append-before-ack) rules out.
        persist::JournalScan scan =
            persist::scanJournal(journal_path, fingerprint_);
        if (scan.headerOk) {
            for (const persist::JournalRecord &rec : scan.records) {
                if (rec.type ==
                        persist::JournalRecord::Type::Update &&
                    rec.seq > applied) {
                    engine_.apply(rec.update);
                    applied = rec.seq;
                    ++report.replayedRecords;
                } else if (rec.type == persist::JournalRecord::Type::
                                           Housekeeping &&
                           rec.seq >= applied) {
                    // Stamped with the preceding update's seq, not
                    // sequenced — an exact-seq match means the mark
                    // sits right at our replicated position and has
                    // not been applied yet.  Re-applying is benign.
                    engine_.purgeDirtyNow();
                    ++report.replayedRecords;
                } else if (rec.type == persist::JournalRecord::Type::
                                           ResizeMark &&
                           rec.seq >= applied) {
                    // Same stamping rule; resizeTo is idempotent on a
                    // matching config, so a duplicate is a no-op.
                    engine_.resizeTo(rec.resizeConfig);
                    ++report.replayedRecords;
                }
            }
            lastApplied_.store(applied, std::memory_order_release);
        } else {
            warn("replica: promotion journal '" + journal_path +
                 "' unreadable (" + scan.error +
                 "); promoting from replicated state only");
        }
    }

    uint64_t new_epoch =
        std::max(maxEpochSeen_.load(std::memory_order_acquire),
                 promotedEpoch_.load(std::memory_order_acquire)) +
        1;
    promotedEpoch_.store(new_epoch, std::memory_order_release);
    noteEpoch(new_epoch);
    engine_.monitor().recordFailover();
    CHISEL_FLIGHT_EVENT(ReplicaPromote, 0, new_epoch,
                        report.replayedRecords);
    inform("replica: promoted to leader at epoch " +
           std::to_string(new_epoch) + " (replayed " +
           std::to_string(report.replayedRecords) +
           " journal records)");

    report.epoch = new_epoch;
    report.lastAppliedSeq = applied;
    return report;
}

// ---- Introspection ---------------------------------------------------

FollowerStats
Follower::stats() const
{
    FollowerStats s;
    s.lastAppliedSeq = lastAppliedSeq();
    s.leaderLastSeq = leaderLastSeq();
    s.lagRecords = lag();
    s.recordsApplied =
        recordsApplied_.load(std::memory_order_relaxed);
    s.duplicatesSkipped =
        duplicatesSkipped_.load(std::memory_order_relaxed);
    s.snapshotsInstalled =
        snapshotsInstalled_.load(std::memory_order_relaxed);
    s.snapshotsDiscarded =
        snapshotsDiscarded_.load(std::memory_order_relaxed);
    s.connectionsServed =
        connectionsServed_.load(std::memory_order_relaxed);
    s.fenceRejects = fenceRejects_.load(std::memory_order_relaxed);
    s.maxEpochSeen = maxEpochSeen();
    s.promotedEpoch = epoch();
    s.connected = connected();
    s.caughtUp = caughtUp();
    s.promoted = promoted();
    return s;
}

void
Follower::publish(telemetry::MetricRegistry &registry,
                  const std::string &prefix) const
{
    FollowerStats s = stats();
    auto set = [&](const char *name, uint64_t v) {
        registry.gauge(prefix + "." + name)
            .set(static_cast<double>(v));
    };
    set("last_applied_seq", s.lastAppliedSeq);
    set("leader_last_seq", s.leaderLastSeq);
    set("lag_records", s.lagRecords);
    set("records_applied", s.recordsApplied);
    set("duplicates_skipped", s.duplicatesSkipped);
    set("snapshots_installed", s.snapshotsInstalled);
    set("snapshots_discarded", s.snapshotsDiscarded);
    set("connections_served", s.connectionsServed);
    set("fence_rejects", s.fenceRejects);
    set("max_epoch_seen", s.maxEpochSeen);
    set("promoted_epoch", s.promotedEpoch);
    set("connected", s.connected ? 1 : 0);
    set("caught_up", s.caughtUp ? 1 : 0);
    set("promoted", s.promoted ? 1 : 0);
}

} // namespace chisel::replica
