/**
 * @file
 * Naive chained hash table — the strawman of Section 1.
 *
 * Collisions are resolved by chaining, so the worst-case probe count
 * is unbounded; the probe statistics this class exposes quantify the
 * non-determinism the paper argues routers cannot tolerate.
 */

#ifndef CHISEL_HASHTABLE_CHAINED_HH
#define CHISEL_HASHTABLE_CHAINED_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/key128.hh"
#include "hash/h3.hh"

namespace chisel {

/**
 * A chained hash table from fixed-length keys to 32-bit values.
 */
class ChainedHashTable
{
  public:
    /**
     * @param buckets Number of buckets.
     * @param key_len Key length in bits.
     * @param seed Hash seed.
     */
    ChainedHashTable(size_t buckets, unsigned key_len, uint64_t seed);

    /** Insert or overwrite.  @return true if newly inserted. */
    bool insert(const Key128 &key, uint32_t value);

    /** Remove.  @return true if present. */
    bool erase(const Key128 &key);

    /**
     * Lookup; also reports via @p probes (if non-null) how many chain
     * entries were examined — the lookup-time variability measure.
     */
    std::optional<uint32_t> find(const Key128 &key,
                                 size_t *probes = nullptr) const;

    /** Number of stored keys. */
    size_t size() const { return size_; }

    /** Length of the longest chain (worst-case lookup cost). */
    size_t maxChainLength() const;

    /** Average probes over all stored keys. */
    double averageProbes() const;

    /** Number of buckets. */
    size_t buckets() const { return table_.size(); }

  private:
    struct Entry
    {
        Key128 key;
        uint32_t value;
    };

    size_t bucketOf(const Key128 &key) const;

    unsigned keyLen_;
    H3Hash hash_;
    std::vector<std::vector<Entry>> table_;
    size_t size_ = 0;
};

} // namespace chisel

#endif // CHISEL_HASHTABLE_CHAINED_HH
