#include "hashtable/ebf.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitops.hh"

namespace chisel {

EbfConfig
ebfPaperConfig(unsigned key_len)
{
    EbfConfig c;
    c.sizeFactor = 12.8;
    c.keyLen = key_len;
    return c;
}

EbfConfig
poorEbfPaperConfig(unsigned key_len)
{
    EbfConfig c;
    c.sizeFactor = 6.0;
    c.keyLen = key_len;
    return c;
}

ExtendedBloomFilter::ExtendedBloomFilter(size_t capacity,
                                         const EbfConfig &config)
    : config_(config),
      capacity_(std::max<size_t>(capacity, 1)),
      cbf_(static_cast<size_t>(std::ceil(
               config.sizeFactor * static_cast<double>(capacity_))),
           config.k, config.counterBits, config.seed),
      buckets_(cbf_.size())
{
}

size_t
ExtendedBloomFilter::chooseBucket(const Key128 &key) const
{
    auto locs = cbf_.locations(key, config_.keyLen);
    size_t best = locs[0];
    uint32_t best_count = cbf_.counterAt(locs[0]);
    for (size_t i = 1; i < locs.size(); ++i) {
        uint32_t c = cbf_.counterAt(locs[i]);
        if (c < best_count) {   // strict: leftmost wins ties (d-left)
            best = locs[i];
            best_count = c;
        }
    }
    return best;
}

void
ExtendedBloomFilter::bulkBuild(
    const std::vector<std::pair<Key128, uint32_t>> &entries)
{
    cbf_.clear();
    for (auto &b : buckets_)
        b.clear();
    size_ = 0;

    // Phase 1: hash every key into the counting Bloom filter.
    for (const auto &[key, value] : entries) {
        (void)value;
        cbf_.insert(key, config_.keyLen);
    }
    // Phase 2: place each key in its minimum-counter bucket.
    for (const auto &[key, value] : entries) {
        buckets_[chooseBucket(key)].push_back(Entry{key, value});
        ++size_;
    }
}

void
ExtendedBloomFilter::insert(const Key128 &key, uint32_t value)
{
    // Overwrite when present: search all candidate buckets, since the
    // counters may steer differently now than at the original insert.
    for (size_t loc : cbf_.locations(key, config_.keyLen)) {
        for (auto &e : buckets_[loc]) {
            if (e.key == key) {
                e.value = value;
                return;
            }
        }
    }

    cbf_.insert(key, config_.keyLen);
    buckets_[chooseBucket(key)].push_back(Entry{key, value});
    ++size_;
}

bool
ExtendedBloomFilter::erase(const Key128 &key)
{
    for (size_t loc : cbf_.locations(key, config_.keyLen)) {
        auto &bucket = buckets_[loc];
        for (size_t i = 0; i < bucket.size(); ++i) {
            if (bucket[i].key == key) {
                bucket[i] = bucket.back();
                bucket.pop_back();
                cbf_.remove(key, config_.keyLen);
                --size_;
                return true;
            }
        }
    }
    return false;
}

std::optional<uint32_t>
ExtendedBloomFilter::find(const Key128 &key,
                          size_t *off_chip_probes) const
{
    if (!cbf_.query(key, config_.keyLen)) {
        if (off_chip_probes)
            *off_chip_probes = 0;   // Filtered on-chip; no DRAM touch.
        return std::nullopt;
    }

    size_t chosen = chooseBucket(key);
    size_t probes = 0;
    for (const auto &e : buckets_[chosen]) {
        ++probes;
        if (e.key == key) {
            if (off_chip_probes)
                *off_chip_probes = probes;
            return e.value;
        }
    }
    probes = std::max<size_t>(probes, 1);

    // Fallback for online-inserted keys whose min-counter location
    // has since shifted: probe the remaining candidate buckets.
    for (size_t loc : cbf_.locations(key, config_.keyLen)) {
        if (loc == chosen)
            continue;
        for (const auto &e : buckets_[loc]) {
            ++probes;
            if (e.key == key) {
                if (off_chip_probes)
                    *off_chip_probes = probes;
                return e.value;
            }
        }
    }
    if (off_chip_probes)
        *off_chip_probes = probes;
    return std::nullopt;
}

size_t
ExtendedBloomFilter::collidedBuckets() const
{
    size_t n = 0;
    for (const auto &b : buckets_) {
        if (b.size() > 1)
            ++n;
    }
    return n;
}

double
ExtendedBloomFilter::collisionRate() const
{
    if (size_ == 0)
        return 0.0;
    size_t keys_in_collided = 0;
    for (const auto &b : buckets_) {
        if (b.size() > 1)
            keys_in_collided += b.size();
    }
    return static_cast<double>(keys_in_collided) /
           static_cast<double>(size_);
}

uint64_t
ExtendedBloomFilter::onChipBits() const
{
    return cbf_.storageBits();
}

uint64_t
ExtendedBloomFilter::offChipBits() const
{
    uint64_t entry_bits = config_.keyLen + addressBits(capacity_);
    return static_cast<uint64_t>(buckets_.size()) * entry_bits;
}

std::pair<uint64_t, uint64_t>
ExtendedBloomFilter::storageModel(size_t n, const EbfConfig &config)
{
    auto slots = static_cast<uint64_t>(
        std::ceil(config.sizeFactor * static_cast<double>(n)));
    uint64_t on_chip = slots * config.counterBits;
    uint64_t off_chip = slots * (config.keyLen + addressBits(n));
    return {on_chip, off_chip};
}

} // namespace chisel
