/**
 * @file
 * Extended Bloom Filter (Song, Dharmapurikar, Turner, Lockwood;
 * SIGCOMM 2005) — the hash-based baseline of Sections 2 and 6.1.
 *
 * EBF is a two-level structure: an on-chip counting Bloom filter with
 * m' counters and an off-chip hash table with m' buckets.  Every key
 * is hashed to k counter locations; it is stored in the bucket whose
 * counter is smallest (leftmost tie-break, d-left style).  A lookup
 * reads the k counters and probes only the minimum-counter bucket, so
 * the expected off-chip access count is one — but collisions are only
 * made rare, not impossible, which is the property Chisel improves on.
 *
 * Storage model (Figure 8): the paper quotes collision probabilities
 * of 1 in 50 / 1,000 / 2,500,000 for table sizes 3N / 6N / 12N and
 * evaluates "EBF" at the 1-in-2M design point (~12.8N) and
 * "poor-EBF" at 1-in-1000 (6N).  Off-chip entries hold the key plus
 * a next-hop pointer; on-chip counters are 4 bits.
 */

#ifndef CHISEL_HASHTABLE_EBF_HH
#define CHISEL_HASHTABLE_EBF_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bloom/counting_bloom.hh"
#include "common/key128.hh"

namespace chisel {

/** Parameters of an EBF instance. */
struct EbfConfig
{
    /** Table size factor c: buckets = counters = c * n. */
    double sizeFactor = 12.8;

    /** Number of hash functions. */
    unsigned k = 3;

    /** On-chip counter width in bits. */
    unsigned counterBits = 4;

    /** Key length in bits. */
    unsigned keyLen = 32;

    /** Hash seed. */
    uint64_t seed = 0xEBF0;
};

/** The two design points the paper evaluates. */
EbfConfig ebfPaperConfig(unsigned key_len);       ///< 1-in-2M collisions.
EbfConfig poorEbfPaperConfig(unsigned key_len);   ///< 1-in-1000.

/**
 * Functional EBF over fixed-length keys.
 */
class ExtendedBloomFilter
{
  public:
    /**
     * @param capacity Number of keys provisioned for (n).
     * @param config Design parameters.
     */
    ExtendedBloomFilter(size_t capacity, const EbfConfig &config);

    /**
     * Bulk build, exactly as in [21]: first hash *all* keys into the
     * counting Bloom filter, then place each key in its
     * minimum-counter bucket.  The min-counter choice is stable for
     * later lookups because the counters no longer change.
     */
    void
    bulkBuild(const std::vector<std::pair<Key128, uint32_t>> &entries);

    /**
     * Online insert (counters first, then bucket choice).  Later
     * inserts can shift other keys' minimum-counter location, so
     * lookups fall back to the remaining candidate buckets on a miss
     * — extra off-chip probes that the bulk build avoids and that
     * find() reports.
     */
    void insert(const Key128 &key, uint32_t value);

    /** Remove a key.  @return true if present. */
    bool erase(const Key128 &key);

    /**
     * Lookup.  @p off_chip_probes (if non-null) receives the number
     * of off-chip bucket entries examined — >1 means a collision was
     * encountered, the event Chisel eliminates.
     */
    std::optional<uint32_t> find(const Key128 &key,
                                 size_t *off_chip_probes = nullptr) const;

    /** Number of keys stored. */
    size_t size() const { return size_; }

    /** Buckets whose load exceeds one (collisions present). */
    size_t collidedBuckets() const;

    /** Fraction of stored keys residing in a collided bucket. */
    double collisionRate() const;

    /** On-chip storage in bits (the counting Bloom filter). */
    uint64_t onChipBits() const;

    /** Off-chip storage in bits (key + next-hop pointer per slot). */
    uint64_t offChipBits() const;

    /**
     * Worst-case storage model without building a table — used by the
     * Figure 8 sweep.  Returns {on-chip bits, off-chip bits}.
     */
    static std::pair<uint64_t, uint64_t>
    storageModel(size_t n, const EbfConfig &config);

  private:
    struct Entry
    {
        Key128 key;
        uint32_t value;
    };

    /** Bucket the key would be placed in (min counter, leftmost). */
    size_t chooseBucket(const Key128 &key) const;

    EbfConfig config_;
    size_t capacity_;
    CountingBloomFilter cbf_;
    std::vector<std::vector<Entry>> buckets_;
    size_t size_ = 0;
};

} // namespace chisel

#endif // CHISEL_HASHTABLE_EBF_HH
