/**
 * @file
 * d-random and d-left multiple-choice hash tables (Section 2).
 *
 * d-random (Azar et al.): d hash functions into one table; insert
 * into the least-loaded of the d buckets, ties broken randomly.
 * d-left (Broder & Mitzenmacher): d sub-tables, one per function;
 * ties broken towards the leftmost sub-table, allowing the d probes
 * to proceed in parallel.  Both reduce, but do not eliminate,
 * collisions — the overflow statistics exposed here are the point of
 * comparison with Chisel's collision-free guarantee.
 */

#ifndef CHISEL_HASHTABLE_DLEFT_HH
#define CHISEL_HASHTABLE_DLEFT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/key128.hh"
#include "common/random.hh"
#include "hash/h3.hh"

namespace chisel {

/**
 * Multiple-choice hash table in either d-random or d-left mode.
 */
class MultiChoiceHashTable
{
  public:
    enum class Mode { DRandom, DLeft };

    /**
     * @param buckets Total buckets (split across sub-tables in d-left
     *        mode; rounded up to a multiple of d).
     * @param d Number of choices.
     * @param bucket_capacity Entries per bucket before overflow.
     * @param mode Tie-break / layout policy.
     * @param key_len Key length in bits.
     * @param seed Hash and tie-break seed.
     */
    MultiChoiceHashTable(size_t buckets, unsigned d,
                         unsigned bucket_capacity, Mode mode,
                         unsigned key_len, uint64_t seed);

    /**
     * Insert a key.  @return false when every candidate bucket is
     * full (an overflow — counted in overflows()).
     */
    bool insert(const Key128 &key, uint32_t value);

    /** Lookup; examines all d buckets (they can be read in parallel). */
    std::optional<uint32_t> find(const Key128 &key) const;

    /** Keys stored. */
    size_t size() const { return size_; }

    /** Inserts rejected because all candidate buckets were full. */
    size_t overflows() const { return overflows_; }

    /** Maximum bucket load reached. */
    size_t maxLoad() const;

    /** Number of buckets holding more than one key (collisions). */
    size_t collidedBuckets() const;

  private:
    struct Entry
    {
        Key128 key;
        uint32_t value;
    };

    /** Candidate bucket of function @p i. */
    size_t bucketOf(unsigned i, const Key128 &key) const;

    Mode mode_;
    unsigned d_;
    unsigned bucketCapacity_;
    unsigned keyLen_;
    size_t subTableSize_;
    H3Family family_;
    mutable Rng rng_;
    std::vector<std::vector<Entry>> table_;
    size_t size_ = 0;
    size_t overflows_ = 0;
};

} // namespace chisel

#endif // CHISEL_HASHTABLE_DLEFT_HH
