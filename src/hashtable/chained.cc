#include "hashtable/chained.hh"

#include <algorithm>
#include <cassert>

namespace chisel {

ChainedHashTable::ChainedHashTable(size_t buckets, unsigned key_len,
                                   uint64_t seed)
    : keyLen_(key_len), hash_(64, seed), table_(std::max<size_t>(buckets, 1))
{
}

size_t
ChainedHashTable::bucketOf(const Key128 &key) const
{
    return static_cast<size_t>(hash_.hash(key, keyLen_) % table_.size());
}

bool
ChainedHashTable::insert(const Key128 &key, uint32_t value)
{
    auto &chain = table_[bucketOf(key)];
    for (auto &e : chain) {
        if (e.key == key) {
            e.value = value;
            return false;
        }
    }
    chain.push_back(Entry{key, value});
    ++size_;
    return true;
}

bool
ChainedHashTable::erase(const Key128 &key)
{
    auto &chain = table_[bucketOf(key)];
    for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].key == key) {
            chain[i] = chain.back();
            chain.pop_back();
            --size_;
            return true;
        }
    }
    return false;
}

std::optional<uint32_t>
ChainedHashTable::find(const Key128 &key, size_t *probes) const
{
    const auto &chain = table_[bucketOf(key)];
    size_t n = 0;
    for (const auto &e : chain) {
        ++n;
        if (e.key == key) {
            if (probes)
                *probes = n;
            return e.value;
        }
    }
    if (probes)
        *probes = std::max<size_t>(chain.size(), 1);
    return std::nullopt;
}

size_t
ChainedHashTable::maxChainLength() const
{
    size_t mx = 0;
    for (const auto &chain : table_)
        mx = std::max(mx, chain.size());
    return mx;
}

double
ChainedHashTable::averageProbes() const
{
    if (size_ == 0)
        return 0.0;
    // A key at chain position i costs i+1 probes; summing over chains
    // gives sum_len (len*(len+1)/2).
    uint64_t total = 0;
    for (const auto &chain : table_)
        total += chain.size() * (chain.size() + 1) / 2;
    return static_cast<double>(total) / static_cast<double>(size_);
}

} // namespace chisel
