#include "hashtable/dleft.hh"

#include <algorithm>
#include <cassert>

#include "common/bitops.hh"

namespace chisel {

MultiChoiceHashTable::MultiChoiceHashTable(size_t buckets, unsigned d,
                                           unsigned bucket_capacity,
                                           Mode mode, unsigned key_len,
                                           uint64_t seed)
    : mode_(mode),
      d_(d),
      bucketCapacity_(bucket_capacity),
      keyLen_(key_len),
      subTableSize_(divCeil(std::max<size_t>(buckets, d), d)),
      family_(d, 64, seed),
      rng_(seed ^ 0x7ea5eedULL),
      table_(mode == Mode::DLeft ? subTableSize_ * d
                                 : std::max<size_t>(buckets, 1))
{
    assert(d >= 1);
    assert(bucket_capacity >= 1);
}

size_t
MultiChoiceHashTable::bucketOf(unsigned i, const Key128 &key) const
{
    uint64_t h = family_.hash(i, key, keyLen_);
    if (mode_ == Mode::DLeft)
        return static_cast<size_t>(i) * subTableSize_ +
               static_cast<size_t>(h % subTableSize_);
    return static_cast<size_t>(h % table_.size());
}

bool
MultiChoiceHashTable::insert(const Key128 &key, uint32_t value)
{
    // Overwrite if already present.
    for (unsigned i = 0; i < d_; ++i) {
        auto &bucket = table_[bucketOf(i, key)];
        for (auto &e : bucket) {
            if (e.key == key) {
                e.value = value;
                return true;
            }
        }
    }

    // Choose the least-loaded candidate bucket.
    size_t best = SIZE_MAX;
    size_t best_load = 0;
    for (unsigned i = 0; i < d_; ++i) {
        size_t b = bucketOf(i, key);
        size_t load = table_[b].size();
        bool better;
        if (best == SIZE_MAX) {
            better = true;
        } else if (load < best_load) {
            better = true;
        } else if (load == best_load && mode_ == Mode::DRandom) {
            // d-random breaks ties uniformly at random.
            better = rng_.nextBool(0.5);
        } else {
            better = false;   // d-left keeps the leftmost.
        }
        if (better) {
            best = b;
            best_load = load;
        }
    }

    if (best_load >= bucketCapacity_) {
        ++overflows_;
        return false;
    }
    table_[best].push_back(Entry{key, value});
    ++size_;
    return true;
}

std::optional<uint32_t>
MultiChoiceHashTable::find(const Key128 &key) const
{
    for (unsigned i = 0; i < d_; ++i) {
        const auto &bucket = table_[bucketOf(i, key)];
        for (const auto &e : bucket) {
            if (e.key == key)
                return e.value;
        }
    }
    return std::nullopt;
}

size_t
MultiChoiceHashTable::maxLoad() const
{
    size_t mx = 0;
    for (const auto &b : table_)
        mx = std::max(mx, b.size());
    return mx;
}

size_t
MultiChoiceHashTable::collidedBuckets() const
{
    size_t n = 0;
    for (const auto &b : table_) {
        if (b.size() > 1)
            ++n;
    }
    return n;
}

} // namespace chisel
