#include "shard/partition.hh"

#include "common/logging.hh"

namespace chisel::shard {

ShardSelector::ShardSelector(size_t shards, unsigned partition_bits,
                             uint64_t seed)
    : shards_(shards), bits_(partition_bits), seed_(seed),
      hash_(32, seed)
{
    if (shards_ == 0)
        fatalError("ShardSelector: shard count must be >= 1");
    if (bits_ == 0 || bits_ > 64)
        fatalError("ShardSelector: partition bits must be in 1..64");
    if (shards_ > (1u << (bits_ < 31 ? bits_ : 31)))
        warn("ShardSelector: more shards than partition buckets; "
             "some shards will own no keys");
}

} // namespace chisel::shard
