/**
 * @file
 * ShardedChisel: the keyspace partitioned across N fault-isolated
 * engine shards (docs/sharding.md).
 *
 * Each shard owns a full ConcurrentChisel — its own engine image
 * pair, bounded update queue, control thread, TTL/GC clock, and
 * five-state HealthMonitor — plus its own write-ahead journal and
 * snapshot lane under `<persistDir>/shard-<i>/`.  A stable front-end
 * hash (ShardSelector) routes every key and prefix to its shard;
 * prefixes shorter than the partition width are installed in every
 * shard so single-shard lookups still return the correct longest
 * match.
 *
 * The point of the split is *containment*: a parity storm, setup
 * failure streak, or watchdog trip quarantines one shard's keyspace
 * slice, and the recovery ladder (purge -> scrub -> resetup ->
 * snapshot-restore) runs on that shard's control thread without
 * pausing siblings.  lookup()/post() themselves route around
 * nothing — shedding is a service-layer decision (ChiselService
 * consults shardHealth() per request; /healthz turns 503 only when a
 * majority of shards are sick).
 *
 * Persistence is per shard: each journal is stamped with a
 * fingerprint binding the engine geometry AND the shard identity
 * (index, count, partition bits, hash seed), so a journal can never
 * be replayed into the wrong slice; a `shards.meta` file at the root
 * of the persist directory pins the partition geometry and a reopen
 * with different parameters is refused.  Warm restart recovers every
 * shard independently through the persist ladder, refreshes the
 * shard snapshot to cover the replayed tail, and installs it with
 * zero full Bloomier setups.
 */

#ifndef CHISEL_SHARD_SHARDED_HH
#define CHISEL_SHARD_SHARDED_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "concurrent/concurrent_engine.hh"
#include "persist/journal.hh"
#include "persist/recovery.hh"
#include "shard/partition.hh"

namespace chisel::telemetry { class MetricRegistry; }

namespace chisel::shard {

/** Construction options for ShardedChisel. */
struct ShardedOptions
{
    /** Engine shards (>= 1). */
    size_t shards = 4;

    /** Key bits hashed by the front-end partition (docs/sharding.md). */
    unsigned partitionBits = 8;

    /** Front-end hash seed; part of the persisted geometry. */
    uint64_t hashSeed = ShardSelector::kDefaultSeed;

    /** Per-shard engine configuration (identical across shards). */
    ChiselConfig config;

    /**
     * Per-shard ConcurrentChisel template.  Journal hooks and
     * recoverySnapshotPath are overwritten per shard (the sharded
     * layer owns journaling); everything else applies to each shard
     * as-is.
     */
    concurrent::ConcurrentOptions engine;

    /**
     * Per-shard control-thread fault injectors (chaos harnesses arm
     * one shard without touching siblings).  Indexed by shard; missing
     * or null entries fall back to engine.controlFaultInjector.
     */
    std::vector<fault::FaultInjector *> controlFaultInjectors;

    /**
     * Root of the sharded persistence layout; empty disables
     * journaling and snapshots entirely.  Layout:
     *
     *     <persistDir>/shards.meta            partition geometry pin
     *     <persistDir>/shard-<i>/journal.log  per-shard WAL
     *     <persistDir>/shard-<i>/snapshot.chs per-shard snapshot
     */
    std::string persistDir;

    /** Journal fsync batching (1 = strict, every record). */
    size_t fsyncEvery = 1;

    /** Run the route-by-route recovery audit per shard on restart. */
    bool audit = false;
};

/** What one shard's warm restart did (persist mode only). */
struct ShardRecovery
{
    persist::RecoverySource source = persist::RecoverySource::ColdSetup;
    uint64_t fallbacks = 0;
    uint64_t recordsReplayed = 0;
    uint64_t lastSeq = 0;
    bool auditRan = false;
    bool auditPassed = false;
    size_t routes = 0;
};

/** Point-in-time view of one shard (healthz, soak audits). */
struct ShardStatus
{
    health::HealthState state = health::HealthState::Healthy;
    bool induced = false;   ///< state comes from induceHealth().
    bool serving = false;   ///< not Degraded/Quarantined.
    uint64_t generation = 0;
    size_t routes = 0;
    size_t pendingUpdates = 0;
    uint64_t updatesApplied = 0;
    uint64_t expired = 0;
    uint64_t quarantineEntries = 0;  ///< monitor + forced.
    uint64_t healthTransitions = 0;
    uint64_t lastSeq = 0;            ///< 0 without a journal.
    uint64_t lastDurableSeq = 0;
};

class ShardedChisel
{
  public:
    static constexpr size_t kBroadcast = ShardSelector::kBroadcast;

    /**
     * Build (or warm-restart) the shard set.  With persistDir set,
     * every shard runs the recovery ladder against its own journal +
     * snapshot lane before serving; recovery() reports what each
     * found.  @p initial seeds shards on first boot (sliced by the
     * partition; broadcast prefixes go to every shard).
     */
    ShardedChisel(const RoutingTable &initial,
                  const ShardedOptions &options);

    ~ShardedChisel();

    ShardedChisel(const ShardedChisel &) = delete;
    ShardedChisel &operator=(const ShardedChisel &) = delete;

    // ---- Routing ---------------------------------------------------

    const ShardSelector &selector() const { return selector_; }
    size_t shards() const { return shards_.size(); }
    size_t shardOf(const Key128 &key) const
    {
        return selector_.shardOf(key);
    }
    /** Owning shard, or kBroadcast for short prefixes. */
    size_t shardOf(const Prefix &prefix) const
    {
        return selector_.shardOf(prefix);
    }

    // ---- Read side (any thread, wait-free) -------------------------

    LookupResult lookup(const Key128 &key) const;
    concurrent::TaggedLookup lookupTagged(const Key128 &key) const;

    // ---- Write side ------------------------------------------------

    /** One (shard, journal seq) pair an update landed on. */
    struct ShardSeq
    {
        size_t shard = 0;
        uint64_t seq = 0;
    };

    /** What apply() did, across every shard it touched. */
    struct ApplyResult
    {
        /** Worst outcome across targeted shards. */
        UpdateOutcome outcome;
        /** Owning shard, or kBroadcast. */
        size_t shard = 0;
        /** Highest journal seq assigned (0 without a journal). */
        uint64_t seq = 0;
        /** Per-shard seq assignments (one entry, or one per shard
         * for a broadcast); the durable-ack gate for services. */
        std::vector<ShardSeq> parts;
    };

    /** Apply synchronously to the owning shard (all, if broadcast). */
    ApplyResult apply(const Update &update);

    UpdateOutcome announce(const Prefix &prefix, NextHop next_hop,
                           uint32_t ttl_ms = 0);
    UpdateOutcome withdraw(const Prefix &prefix);

    /**
     * Enqueue on the owning shard's control thread (every shard, if
     * broadcast).  Single producer thread across ALL shards — the
     * per-shard queues keep their SPSC contract because the sharded
     * facade is the one producer.
     */
    bool post(const Update &update);

    /** Block until every shard's queue and stage are drained. */
    void flush();

    /** Posted-but-unapplied updates, summed over shards. */
    size_t pendingUpdates() const;

    // ---- Per-shard access ------------------------------------------

    concurrent::ConcurrentChisel &shardEngine(size_t i);
    const concurrent::ConcurrentChisel &shardEngine(size_t i) const;

    /** The shard's journal; null without persistence. */
    persist::UpdateJournal *journal(size_t i);

    /** Block until @p seq is fsync-durable on shard @p i. */
    bool ensureDurable(size_t i, uint64_t seq);
    uint64_t lastDurableSeq(size_t i) const;

    // ---- Health and containment ------------------------------------

    /**
     * Effective health of shard @p i: an active induceHealth()
     * override, else the shard monitor's state.
     */
    health::HealthState shardHealth(size_t i) const;

    /**
     * Force shard @p i to report @p state for @p ms milliseconds
     * (0 = until cleared with Healthy).  The containment analogue of
     * ChiselService::induceHealth, scoped to one shard: drills and
     * operators quarantine a single slice without faulting it.
     */
    void induceHealth(size_t i, health::HealthState state,
                      uint64_t ms = 0);

    /** True unless shard @p i is Degraded/Quarantined. */
    bool shardServing(size_t i) const;

    /** Shards currently Degraded or Quarantined. */
    size_t sickShards() const;

    /** True when a strict majority of shards are sick. */
    bool majoritySick() const;

    /**
     * Whole-plane health for single-value consumers (Ping, the
     * service matrix): Healthy while fewer than a majority of shards
     * are sick — one quarantined shard must not shed its siblings'
     * traffic — Degraded (or Quarantined, when a majority are that
     * far gone) past the majority threshold.
     */
    health::HealthState aggregateHealth() const;

    /** Times shard @p i entered Quarantined (monitor + forced). */
    uint64_t quarantineEntries(size_t i) const;

    ShardStatus status(size_t i) const;

    // ---- Persistence -----------------------------------------------

    /**
     * Snapshot every shard (stamped with its journal seq, taken
     * under the shard's writer lock so state and seq agree exactly)
     * and append the covering SnapshotMark.  No-op without
     * persistence.  @return shards snapshotted.
     */
    size_t saveSnapshots();

    /** Per-shard warm-restart reports (empty without persistence). */
    const std::vector<ShardRecovery> &recovery() const
    {
        return recovery_;
    }

    /** `<persistDir>/shard-<i>` (empty without persistence). */
    std::string shardDir(size_t i) const;

    // ---- Aggregates and test hooks ---------------------------------

    /** Routes summed over shards (broadcast routes count once per
     * shard that stores them). */
    size_t routeCount() const;

    /** Updates applied, summed over shards. */
    uint64_t updatesApplied() const;

    /** Sum of shard generations (a monotonic plane-wide version). */
    uint64_t generation() const;

    /** TTL entries expired, summed over shards. */
    uint64_t expired() const;

    /** One healthTick per shard (tests; normally the control
     * threads run the monitor). */
    void healthTickAll();

    /** One gcTick per shard; @return entries expired. */
    size_t gcTickAll();

    /** Advance every shard's logical TTL clock (ttlWallClock off). */
    void advanceTtlClockAll(uint64_t ms);

    /** Deep consistency check of every shard. */
    bool selfCheck() const;

    /**
     * Publish per-shard gauges into @p registry under @p prefix with
     * an embedded Prometheus label (`<prefix>.routes{shard="i"}`),
     * plus plane-wide aggregates (docs/sharding.md).
     */
    void publish(telemetry::MetricRegistry &registry,
                 const std::string &prefix = "shard") const;

  private:
    struct Shard
    {
        std::string dir;
        std::string journalPath;
        std::string snapshotPath;
        std::unique_ptr<persist::UpdateJournal> journal;
        std::unique_ptr<concurrent::ConcurrentChisel> engine;

        /** induceHealth() override (mirrors ChiselService). */
        std::atomic<uint8_t> inducedState{
            static_cast<uint8_t>(health::HealthState::kCount)};
        std::atomic<uint64_t> inducedUntilNs{0};

        /** induceHealth(Quarantined) count (monitor can't see it). */
        std::atomic<uint64_t> forcedQuarantines{0};
    };

    /** Build shard @p i's engine (cold or via the recovery ladder). */
    void buildShard(size_t i, const RoutingTable &slice);

    /** Write or verify `<persistDir>/shards.meta`. */
    void pinGeometry() const;

    ShardSeq applyToShard(size_t i, const Update &update,
                          UpdateOutcome &outcome);

    ShardedOptions options_;
    ShardSelector selector_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ShardRecovery> recovery_;
};

/**
 * The fingerprint stamped into shard @p i's journal: the engine's
 * elastic fingerprint (survives live resizes) mixed with the shard
 * identity, so a journal replays only into the exact slice that
 * wrote it.
 */
uint64_t shardJournalFingerprint(const ChiselConfig &config,
                                 size_t shard, size_t shard_count,
                                 unsigned partition_bits,
                                 uint64_t hash_seed);

} // namespace chisel::shard

#endif // CHISEL_SHARD_SHARDED_HH
