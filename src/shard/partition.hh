/**
 * @file
 * Front-end keyspace partitioning for the sharded dataplane
 * (docs/sharding.md).
 *
 * ShardSelector maps every lookup key — and every route prefix — to
 * one of N engine shards using an H3 hash over the key's top
 * *partition bits* (the paper's d-way partitioning lifted from
 * sub-tables to whole engines, RSS-style).  The map is a pure
 * function of (shard count, partition bits, seed): deterministic
 * across restarts, identical in every process that opens the same
 * sharded persist directory, and independent of table contents.
 *
 * Prefixes at least as long as the partition width land on exactly
 * the shard that serves every key under them (a key and a prefix
 * covering it share their top partition bits, and the hash reads
 * nothing else).  Shorter prefixes cover keys in *multiple* shards;
 * shardOf() returns kBroadcast for them and ShardedChisel installs
 * the route in every shard, so any single-shard lookup still finds
 * the correct longest match.
 */

#ifndef CHISEL_SHARD_PARTITION_HH
#define CHISEL_SHARD_PARTITION_HH

#include <cstdint>

#include "hash/h3.hh"
#include "route/prefix.hh"

namespace chisel::shard {

class ShardSelector
{
  public:
    /** shardOf(prefix) result for prefixes shorter than the
     * partition width: the route belongs to every shard. */
    static constexpr size_t kBroadcast = ~static_cast<size_t>(0);

    /** Default H3 seed; a config constant, never randomized — the
     * key-to-shard map must survive restarts byte-for-byte. */
    static constexpr uint64_t kDefaultSeed = 0x5EEDC4153E17ULL;

    /**
     * @param shards          Shard count (>= 1).
     * @param partition_bits  Key bits hashed to pick a shard (1..64).
     *        Prefixes shorter than this broadcast to all shards, so
     *        keep it at or below the table's shortest common prefix
     *        length (8 suits IPv4 DFZ tables: nothing shorter than a
     *        /8 carries real traffic).
     * @param seed            H3 seed (fixed per deployment).
     */
    explicit ShardSelector(size_t shards, unsigned partition_bits = 8,
                           uint64_t seed = kDefaultSeed);

    /** The shard serving @p key. */
    size_t
    shardOf(const Key128 &key) const
    {
        // Hash the top partition bits only (masked for determinism:
        // H3 ignores bits past len, but the mask makes key/prefix
        // agreement explicit), then map the 32-bit hash onto
        // [0, shards) multiplicatively — no modulo bias, and stable
        // for a fixed shard count.
        uint64_t h = hash_.hash(key.masked(bits_), bits_);
        return static_cast<size_t>((h * static_cast<uint64_t>(shards_))
                                   >> 32);
    }

    /** The shard owning @p prefix, or kBroadcast if it spans all. */
    size_t
    shardOf(const Prefix &prefix) const
    {
        if (prefix.length() < bits_)
            return kBroadcast;
        return shardOf(prefix.bits());
    }

    /** True if @p prefix must be installed in every shard. */
    bool
    broadcasts(const Prefix &prefix) const
    {
        return prefix.length() < bits_;
    }

    size_t shards() const { return shards_; }
    unsigned partitionBits() const { return bits_; }
    uint64_t seed() const { return seed_; }

  private:
    size_t shards_;
    unsigned bits_;
    uint64_t seed_;
    H3Hash hash_;
};

} // namespace chisel::shard

#endif // CHISEL_SHARD_PARTITION_HH
