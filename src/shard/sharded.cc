#include "shard/sharded.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "core/resize.hh"
#include "persist/snapshot.hh"
#include "telemetry/metrics.hh"

namespace chisel::shard {

namespace {

/**
 * Journal seq assigned by the onJournalUpdate hook for the update the
 * current thread is applying.  The hook runs synchronously inside the
 * shard's writer lock on the applying thread, so this is race-free:
 * a control thread's GC Expire appends land in that thread's copy.
 */
thread_local uint64_t t_assignedSeq = 0;

uint64_t
mix64(uint64_t x)
{
    // splitmix64 finalizer: full-avalanche mixing for the identity
    // fields folded into the shard fingerprint.
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
isSick(health::HealthState s)
{
    return s == health::HealthState::Degraded ||
           s == health::HealthState::Quarantined;
}

/** Rank outcomes so a broadcast reports its worst shard. */
int
outcomeRank(const UpdateOutcome &o)
{
    if (o.status == UpdateStatus::Rejected)
        return 2;
    if (o.degraded())
        return 1;
    return 0;
}

} // anonymous namespace

uint64_t
shardJournalFingerprint(const ChiselConfig &config, size_t shard,
                        size_t shard_count, unsigned partition_bits,
                        uint64_t hash_seed)
{
    // The elastic kernel survives live resizes (core/resize.hh), so a
    // shard journal stays valid across them; the mixed-in identity
    // refuses replay into any other slice or geometry.
    uint64_t fp = elasticFingerprint(config);
    fp ^= mix64(0x53484152Du ^ static_cast<uint64_t>(shard));
    fp ^= mix64(static_cast<uint64_t>(shard_count) << 32 |
                partition_bits);
    fp ^= mix64(hash_seed);
    // Never collide with the reserved "accept anything" value.
    return fp ? fp : 1;
}

ShardedChisel::ShardedChisel(const RoutingTable &initial,
                             const ShardedOptions &options)
    : options_(options),
      selector_(options.shards, options.partitionBits, options.hashSeed)
{
    if (options_.shards == 0)
        fatalError("ShardedChisel: shard count must be >= 1");

    if (!options_.persistDir.empty()) {
        std::filesystem::create_directories(options_.persistDir);
        pinGeometry();
    }

    // Slice the seed table: every prefix to its owning shard,
    // broadcast prefixes to all of them.
    std::vector<RoutingTable> slices(options_.shards);
    for (const Route &r : initial.routes()) {
        size_t s = selector_.shardOf(r.prefix);
        if (s == kBroadcast) {
            for (RoutingTable &t : slices)
                t.add(r.prefix, r.nextHop);
        } else {
            slices[s].add(r.prefix, r.nextHop);
        }
    }

    shards_.reserve(options_.shards);
    for (size_t i = 0; i < options_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    recovery_.resize(options_.persistDir.empty() ? 0 : options_.shards);

    for (size_t i = 0; i < options_.shards; ++i)
        buildShard(i, slices[i]);
}

ShardedChisel::~ShardedChisel() = default;

void
ShardedChisel::pinGeometry() const
{
    namespace fs = std::filesystem;
    std::string path = options_.persistDir + "/shards.meta";

    char want[160];
    std::snprintf(want, sizeof(want),
                  "chisel-shards v1\nshards %zu\nbits %u\nseed %" PRIu64
                  "\n",
                  options_.shards, options_.partitionBits,
                  options_.hashSeed);

    if (fs::exists(path)) {
        std::ifstream in(path);
        std::string have((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (have != want)
            fatalError("ShardedChisel: " + path +
                       " pins a different partition geometry; refusing "
                       "to reshard existing journals");
        return;
    }

    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << want;
        if (!out)
            fatalError("ShardedChisel: cannot write " + tmp);
    }
    fs::rename(tmp, path);
}

void
ShardedChisel::buildShard(size_t i, const RoutingTable &slice)
{
    Shard &sh = *shards_[i];
    concurrent::ConcurrentOptions copts = options_.engine;
    if (i < options_.controlFaultInjectors.size() &&
        options_.controlFaultInjectors[i])
        copts.controlFaultInjector = options_.controlFaultInjectors[i];

    if (options_.persistDir.empty()) {
        sh.engine = std::make_unique<concurrent::ConcurrentChisel>(
            slice, options_.config, copts);
        return;
    }

    sh.dir = shardDir(i);
    std::filesystem::create_directories(sh.dir);
    sh.journalPath = sh.dir + "/journal.log";
    sh.snapshotPath = sh.dir + "/snapshot.chs";
    copts.recoverySnapshotPath = sh.snapshotPath;

    uint64_t fp = shardJournalFingerprint(
        options_.config, i, options_.shards, options_.partitionBits,
        options_.hashSeed);

    // Warm restart: run the recovery ladder against this shard's
    // lane, then refresh the snapshot so it covers the replayed tail
    // and install *that* image — the serving pair is built by
    // snapshot decode, not by re-running Bloomier setups.
    persist::RecoveryOptions ro;
    ro.journalPath = sh.journalPath;
    ro.snapshotPath = sh.snapshotPath;
    ro.config = options_.config;
    ro.initialTable = slice;
    ro.audit = options_.audit;
    ro.expectFingerprint = fp;
    persist::RecoveryReport report = persist::recoverEngine(ro);

    persist::saveSnapshot(sh.snapshotPath, *report.engine,
                          report.lastSeq);

    sh.journal = std::make_unique<persist::UpdateJournal>(
        sh.journalPath, fp, options_.fsyncEvery);
    sh.journal->appendSnapshotMark(report.lastSeq);
    sh.journal->sync();

    persist::UpdateJournal *journal = sh.journal.get();
    copts.onJournalUpdate = [journal](const Update &u) -> uint64_t {
        uint64_t seq = journal->append(u);
        t_assignedSeq = seq;
        return seq;
    };
    copts.onJournalOutcome = [journal](uint64_t seq,
                                       const UpdateOutcome &out) {
        journal->appendOutcome(seq, out);
    };
    copts.onResize = [journal](const ChiselConfig &grown, uint64_t) {
        journal->appendResizeMark(grown);
    };

    sh.engine = std::make_unique<concurrent::ConcurrentChisel>(
        RoutingTable{}, report.engine->config(), copts);
    if (!sh.engine->restoreFromSnapshot(sh.snapshotPath)) {
        // Defensive: the snapshot we just wrote failed to load.
        // Rebuild from the recovered route set instead (setups paid).
        warn("shard " + std::to_string(i) +
             ": fresh snapshot unreadable; rebuilding cold");
        sh.engine = std::make_unique<concurrent::ConcurrentChisel>(
            report.engine->exportTable(), report.engine->config(),
            copts);
    }

    ShardRecovery &rec = recovery_[i];
    rec.source = report.source;
    rec.fallbacks = report.fallbacks;
    rec.recordsReplayed = report.recordsReplayed;
    rec.lastSeq = report.lastSeq;
    rec.auditRan = report.auditRan;
    rec.auditPassed = report.auditPassed;
    rec.routes = sh.engine->routeCount();
}

std::string
ShardedChisel::shardDir(size_t i) const
{
    if (options_.persistDir.empty())
        return {};
    return options_.persistDir + "/shard-" + std::to_string(i);
}

// ---- Read side -------------------------------------------------------------

LookupResult
ShardedChisel::lookup(const Key128 &key) const
{
    return shards_[selector_.shardOf(key)]->engine->lookup(key);
}

concurrent::TaggedLookup
ShardedChisel::lookupTagged(const Key128 &key) const
{
    return shards_[selector_.shardOf(key)]->engine->lookupTagged(key);
}

// ---- Write side ------------------------------------------------------------

ShardedChisel::ShardSeq
ShardedChisel::applyToShard(size_t i, const Update &update,
                            UpdateOutcome &outcome)
{
    t_assignedSeq = 0;
    UpdateOutcome out = shards_[i]->engine->apply(update);
    if (outcomeRank(out) >= outcomeRank(outcome))
        outcome = out;
    return {i, t_assignedSeq};
}

ShardedChisel::ApplyResult
ShardedChisel::apply(const Update &update)
{
    ApplyResult r;
    r.shard = selector_.shardOf(update.prefix);
    if (r.shard == kBroadcast) {
        for (size_t i = 0; i < shards_.size(); ++i)
            r.parts.push_back(applyToShard(i, update, r.outcome));
    } else {
        r.parts.push_back(applyToShard(r.shard, update, r.outcome));
    }
    for (const ShardSeq &p : r.parts)
        if (p.seq > r.seq)
            r.seq = p.seq;
    return r;
}

UpdateOutcome
ShardedChisel::announce(const Prefix &prefix, NextHop next_hop,
                        uint32_t ttl_ms)
{
    Update u;
    u.kind = UpdateKind::Announce;
    u.prefix = prefix;
    u.nextHop = next_hop;
    u.ttlMs = ttl_ms;
    return apply(u).outcome;
}

UpdateOutcome
ShardedChisel::withdraw(const Prefix &prefix)
{
    Update u;
    u.kind = UpdateKind::Withdraw;
    u.prefix = prefix;
    return apply(u).outcome;
}

bool
ShardedChisel::post(const Update &update)
{
    size_t s = selector_.shardOf(update.prefix);
    if (s == kBroadcast) {
        bool ok = true;
        for (auto &sh : shards_)
            ok = sh->engine->post(update) && ok;
        return ok;
    }
    return shards_[s]->engine->post(update);
}

void
ShardedChisel::flush()
{
    for (auto &sh : shards_)
        sh->engine->flush();
}

size_t
ShardedChisel::pendingUpdates() const
{
    size_t n = 0;
    for (const auto &sh : shards_)
        n += sh->engine->pendingUpdates();
    return n;
}

// ---- Per-shard access ------------------------------------------------------

concurrent::ConcurrentChisel &
ShardedChisel::shardEngine(size_t i)
{
    return *shards_[i]->engine;
}

const concurrent::ConcurrentChisel &
ShardedChisel::shardEngine(size_t i) const
{
    return *shards_[i]->engine;
}

persist::UpdateJournal *
ShardedChisel::journal(size_t i)
{
    return shards_[i]->journal.get();
}

bool
ShardedChisel::ensureDurable(size_t i, uint64_t seq)
{
    persist::UpdateJournal *j = shards_[i]->journal.get();
    return j ? j->ensureDurable(seq) : false;
}

uint64_t
ShardedChisel::lastDurableSeq(size_t i) const
{
    const persist::UpdateJournal *j = shards_[i]->journal.get();
    return j ? j->lastDurableSeq() : 0;
}

// ---- Health and containment ------------------------------------------------

health::HealthState
ShardedChisel::shardHealth(size_t i) const
{
    const Shard &sh = *shards_[i];
    uint8_t induced = sh.inducedState.load(std::memory_order_acquire);
    if (induced !=
        static_cast<uint8_t>(health::HealthState::kCount)) {
        uint64_t until = sh.inducedUntilNs.load(std::memory_order_acquire);
        if (until == 0 || steadyNowNs() < until)
            return static_cast<health::HealthState>(induced);
    }
    return sh.engine->healthState();
}

void
ShardedChisel::induceHealth(size_t i, health::HealthState state,
                            uint64_t ms)
{
    Shard &sh = *shards_[i];
    if (state == health::HealthState::Healthy) {
        sh.inducedState.store(
            static_cast<uint8_t>(health::HealthState::kCount),
            std::memory_order_release);
        return;
    }
    if (state == health::HealthState::Quarantined)
        sh.forcedQuarantines.fetch_add(1, std::memory_order_relaxed);
    sh.inducedUntilNs.store(ms == 0 ? 0
                                    : steadyNowNs() + ms * 1'000'000ULL,
                            std::memory_order_release);
    sh.inducedState.store(static_cast<uint8_t>(state),
                          std::memory_order_release);
}

bool
ShardedChisel::shardServing(size_t i) const
{
    return !isSick(shardHealth(i));
}

size_t
ShardedChisel::sickShards() const
{
    size_t n = 0;
    for (size_t i = 0; i < shards_.size(); ++i)
        if (isSick(shardHealth(i)))
            ++n;
    return n;
}

bool
ShardedChisel::majoritySick() const
{
    return sickShards() * 2 > shards_.size();
}

health::HealthState
ShardedChisel::aggregateHealth() const
{
    size_t sick = 0;
    size_t quarantined = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        health::HealthState s = shardHealth(i);
        if (isSick(s))
            ++sick;
        if (s == health::HealthState::Quarantined)
            ++quarantined;
    }
    if (sick * 2 <= shards_.size())
        return health::HealthState::Healthy;
    return quarantined * 2 > shards_.size()
               ? health::HealthState::Quarantined
               : health::HealthState::Degraded;
}

uint64_t
ShardedChisel::quarantineEntries(size_t i) const
{
    const Shard &sh = *shards_[i];
    return sh.engine->monitor().entered(
               health::HealthState::Quarantined) +
           sh.forcedQuarantines.load(std::memory_order_relaxed);
}

ShardStatus
ShardedChisel::status(size_t i) const
{
    const Shard &sh = *shards_[i];
    ShardStatus st;
    st.state = shardHealth(i);
    st.induced = sh.inducedState.load(std::memory_order_acquire) !=
                 static_cast<uint8_t>(health::HealthState::kCount);
    st.serving = !isSick(st.state);
    st.generation = sh.engine->generation();
    st.routes = sh.engine->routeCount();
    st.pendingUpdates = sh.engine->pendingUpdates();
    st.updatesApplied = sh.engine->updatesApplied();
    st.expired = sh.engine->expired();
    st.quarantineEntries = quarantineEntries(i);
    st.healthTransitions = sh.engine->monitor().transitions();
    if (sh.journal) {
        st.lastSeq = sh.journal->lastSeq();
        st.lastDurableSeq = sh.journal->lastDurableSeq();
    }
    return st;
}

// ---- Persistence -----------------------------------------------------------

size_t
ShardedChisel::saveSnapshots()
{
    size_t saved = 0;
    for (auto &sh : shards_) {
        if (!sh->journal)
            continue;
        persist::UpdateJournal *journal = sh->journal.get();
        // The seq provider runs under the shard's writer lock, where
        // the journal can't advance: state and coverage agree exactly.
        uint64_t covered = 0;
        size_t bytes = sh->engine->saveSnapshot(
            sh->snapshotPath, [journal, &covered]() {
                covered = journal->lastSeq();
                return covered;
            });
        if (bytes > 0) {
            journal->appendSnapshotMark(covered);
            journal->sync();
            ++saved;
        }
    }
    return saved;
}

// ---- Aggregates and test hooks ---------------------------------------------

size_t
ShardedChisel::routeCount() const
{
    size_t n = 0;
    for (const auto &sh : shards_)
        n += sh->engine->routeCount();
    return n;
}

uint64_t
ShardedChisel::updatesApplied() const
{
    uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->engine->updatesApplied();
    return n;
}

uint64_t
ShardedChisel::generation() const
{
    uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->engine->generation();
    return n;
}

uint64_t
ShardedChisel::expired() const
{
    uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->engine->expired();
    return n;
}

void
ShardedChisel::healthTickAll()
{
    for (auto &sh : shards_)
        sh->engine->healthTick();
}

size_t
ShardedChisel::gcTickAll()
{
    size_t n = 0;
    for (auto &sh : shards_)
        n += sh->engine->gcTick();
    return n;
}

void
ShardedChisel::advanceTtlClockAll(uint64_t ms)
{
    for (auto &sh : shards_)
        sh->engine->advanceTtlClock(ms);
}

bool
ShardedChisel::selfCheck() const
{
    for (const auto &sh : shards_)
        if (!sh->engine->selfCheck())
            return false;
    return true;
}

void
ShardedChisel::publish(telemetry::MetricRegistry &registry,
                       const std::string &prefix) const
{
    registry.gauge(prefix + ".count")
        .set(static_cast<double>(shards_.size()));
    registry.gauge(prefix + ".sick")
        .set(static_cast<double>(sickShards()));
    registry.gauge(prefix + ".majority_sick").set(majoritySick() ? 1 : 0);
    registry.gauge(prefix + ".routes_total")
        .set(static_cast<double>(routeCount()));

    for (size_t i = 0; i < shards_.size(); ++i) {
        ShardStatus st = status(i);
        std::string label = "{shard=\"" + std::to_string(i) + "\"}";
        registry.gauge(prefix + ".routes" + label)
            .set(static_cast<double>(st.routes));
        registry.gauge(prefix + ".state" + label)
            .set(static_cast<double>(
                static_cast<unsigned>(st.state)));
        registry.gauge(prefix + ".serving" + label)
            .set(st.serving ? 1 : 0);
        registry.gauge(prefix + ".pending" + label)
            .set(static_cast<double>(st.pendingUpdates));
        registry.gauge(prefix + ".updates_applied" + label)
            .set(static_cast<double>(st.updatesApplied));
        registry.gauge(prefix + ".quarantine_entries" + label)
            .set(static_cast<double>(st.quarantineEntries));
        registry.gauge(prefix + ".generation" + label)
            .set(static_cast<double>(st.generation));
    }
}

} // namespace chisel::shard
