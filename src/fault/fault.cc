#include "fault/fault.hh"

#include <unordered_map>

namespace chisel::fault {

namespace detail {
thread_local FaultInjector *g_activeInjector = nullptr;
} // namespace detail

namespace {

/** Process-wide injector ids (an address could be reused). */
std::atomic<uint64_t> g_nextInjectorId{1};

struct ThreadStream
{
    uint64_t ordinal;
    Rng rng;
};

/**
 * This thread's per-injector PRNG streams.  Entries for destroyed
 * injectors linger until thread exit — a few dozen bytes each, and
 * ids are never reused, so a stale entry can never be misread.
 */
std::unordered_map<uint64_t, ThreadStream> &
threadStreams()
{
    thread_local std::unordered_map<uint64_t, ThreadStream> streams;
    return streams;
}

} // anonymous namespace

FaultInjector::FaultInjector(uint64_t seed)
    : seed_(seed),
      id_(g_nextInjectorId.fetch_add(1, std::memory_order_relaxed))
{}

Rng &
FaultInjector::threadRng()
{
    auto &streams = threadStreams();
    auto it = streams.find(id_);
    if (it == streams.end()) {
        uint64_t ordinal =
            nextOrdinal_.fetch_add(1, std::memory_order_relaxed);
        // Golden-ratio stride decorrelates the streams; ordinal 0
        // XORs with 0, so the first thread reproduces the stream the
        // old single-threaded injector produced from the same seed.
        Rng rng(seed_ ^ (ordinal * 0x9E3779B97F4A7C15ULL));
        it = streams.emplace(id_, ThreadStream{ordinal, rng}).first;
    }
    return it->second.rng;
}

uint64_t
FaultInjector::threadOrdinal()
{
    threadRng();
    return threadStreams().at(id_).ordinal;
}

const char *
faultPointName(FaultPoint p)
{
    switch (p) {
      case FaultPoint::BloomierSetupFail: return "bloomier_setup_fail";
      case FaultPoint::ForceNonSingleton: return "force_non_singleton";
      case FaultPoint::TcamOverflow: return "tcam_overflow";
      case FaultPoint::BitFlipIndex: return "bit_flip_index";
      case FaultPoint::BitFlipFilter: return "bit_flip_filter";
      case FaultPoint::BitFlipBitVector: return "bit_flip_bitvector";
      case FaultPoint::BitFlipResult: return "bit_flip_result";
      case FaultPoint::JournalTornWrite: return "journal_torn_write";
      case FaultPoint::SnapshotCorrupt: return "snapshot_corrupt";
      case FaultPoint::JournalIoError: return "journal_io_error";
      case FaultPoint::NetStalledPeer: return "net_stalled_peer";
      case FaultPoint::NetPartialWrite: return "net_partial_write";
      case FaultPoint::NetMidFrameReset: return "net_mid_frame_reset";
      case FaultPoint::NetAcceptStorm: return "net_accept_storm";
      case FaultPoint::kCount: break;
    }
    return "unknown";
}

uint64_t
FaultInjector::totalFires() const
{
    uint64_t total = 0;
    for (const State &s : states_)
        total += s.fires;
    return total;
}

} // namespace chisel::fault
