#include "fault/fault.hh"

namespace chisel::fault {

namespace detail {
thread_local FaultInjector *g_activeInjector = nullptr;
} // namespace detail

const char *
faultPointName(FaultPoint p)
{
    switch (p) {
      case FaultPoint::BloomierSetupFail: return "bloomier_setup_fail";
      case FaultPoint::ForceNonSingleton: return "force_non_singleton";
      case FaultPoint::TcamOverflow: return "tcam_overflow";
      case FaultPoint::BitFlipIndex: return "bit_flip_index";
      case FaultPoint::BitFlipFilter: return "bit_flip_filter";
      case FaultPoint::BitFlipBitVector: return "bit_flip_bitvector";
      case FaultPoint::BitFlipResult: return "bit_flip_result";
      case FaultPoint::JournalTornWrite: return "journal_torn_write";
      case FaultPoint::SnapshotCorrupt: return "snapshot_corrupt";
      case FaultPoint::kCount: break;
    }
    return "unknown";
}

uint64_t
FaultInjector::totalFires() const
{
    uint64_t total = 0;
    for (const State &s : states_)
        total += s.fires;
    return total;
}

} // namespace chisel::fault
