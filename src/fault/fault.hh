/**
 * @file
 * Deterministic, seedable fault injection.
 *
 * The robustness story of Section 4.4 rests on rare events — Bloomier
 * setup failures, inserts with no singleton slot, spillover-TCAM
 * overflow — plus the soft errors any SRAM/eDRAM deployment must
 * survive.  None of these can be provoked reliably from the outside,
 * so the hardened paths they trigger would otherwise ship untested.
 * This header plants explicit injection points at each of them.
 *
 * The design mirrors the tracing hooks (telemetry/trace.hh):
 *
 *  - compiled out entirely when CHISEL_FAULT_INJECTION_ENABLED is 0
 *    (CMake option CHISEL_ENABLE_FAULT_INJECTION=OFF), leaving zero
 *    code at every injection point;
 *  - when compiled in, each point is a thread-local pointer load and
 *    predictable branch while no injector is installed — the default
 *    state, so production behaviour is unchanged;
 *  - an installed FaultInjector decides each firing from an
 *    explicitly seeded Rng, so a failing fault scenario replays
 *    exactly from its seed.
 *
 * Usage:
 *
 *     fault::FaultInjector inj(1234);
 *     inj.arm(fault::FaultPoint::TcamOverflow, 1.0, 3);
 *     fault::ScopedInjector scope(&inj);
 *     engine.announce(...);   // next 3 TCAM inserts report "full"
 */

#ifndef CHISEL_FAULT_FAULT_HH
#define CHISEL_FAULT_FAULT_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/random.hh"
#include "telemetry/flight.hh"
#include "concurrent/relaxed.hh"

#ifndef CHISEL_FAULT_INJECTION_ENABLED
#define CHISEL_FAULT_INJECTION_ENABLED 1
#endif

namespace chisel::fault {

/**
 * Where a fault can be injected — the taxonomy of
 * docs/robustness.md.
 */
enum class FaultPoint : uint8_t
{
    /**
     * Bloomier peeling failure: one extra entry is force-evicted
     * during a partition rebuild/setup, as if the hash functions had
     * produced an unpeelable core (exercises reseed-retry and the
     * spillover TCAM).
     */
    BloomierSetupFail,

    /**
     * Suppress the singleton fast path of an Index insert, forcing
     * the O(partition) rebuild (Figure 14's rare "Resetups" class).
     */
    ForceNonSingleton,

    /**
     * A bounded TCAM reports "full" on insert even when it has room
     * (exercises the software slow-path degradation ladder).
     */
    TcamOverflow,

    /** Soft error: flip one stored bit in an Index Table slot. */
    BitFlipIndex,

    /** Soft error: flip one stored bit in a Filter Table entry. */
    BitFlipFilter,

    /** Soft error: flip one stored bit in a Bit-vector Table entry. */
    BitFlipBitVector,

    /** Soft error: flip one stored bit in a Result Table slot. */
    BitFlipResult,

    /**
     * Crash mid-append: the journal writes only a leading fragment of
     * the current record and then behaves as if the process died —
     * subsequent appends are swallowed (docs/persistence.md).
     * Exercises torn-tail discard in the journal reader.
     */
    JournalTornWrite,

    /**
     * Flip one bit of a snapshot payload after its CRC was computed,
     * so the image on disk is internally inconsistent.  Exercises the
     * CRC gate and the fall-back-to-previous-snapshot ladder.
     */
    SnapshotCorrupt,

    /**
     * The journal's backing store refuses a write (the ENOSPC model):
     * no byte of the record lands, the journal latches ioFailed and
     * refuses all later appends.  Exercises the stop-acknowledging
     * degradation contract (docs/persistence.md).
     */
    JournalIoError,

    /**
     * The RPC service stops draining one connection's output queue
     * this poll round, as if the peer's receive window were stuck at
     * zero (the stalled-peer model).  Exercises the bounded output
     * queue and the write-stall disconnect (docs/service.md).
     */
    NetStalledPeer,

    /**
     * The RPC service writes only a prefix of the bytes it meant to
     * send this round, leaving the rest queued — a short write under
     * socket-buffer pressure.  Exercises partial-write resumption.
     */
    NetPartialWrite,

    /**
     * The RPC service hard-closes a connection after writing part of
     * a frame, so the client's reader sees a truncated frame at the
     * reset.  Exercises client-side poison-and-reconnect.
     */
    NetMidFrameReset,

    /**
     * An accepted connection is closed immediately, before any byte
     * is served (the accept-storm / overload-refusal model).
     * Exercises client connect-retry with backoff.
     */
    NetAcceptStorm,

    kCount,
};

constexpr size_t kFaultPointCount =
    static_cast<size_t>(FaultPoint::kCount);

/** Lower-case point name used in logs and test diagnostics. */
const char *faultPointName(FaultPoint p);

/**
 * Fault decision engine, shareable across threads.
 *
 * Each point is disarmed until arm()ed with a firing probability and
 * an optional budget of firings.  Decisions consume a PRNG in poll
 * order, so a fixed seed plus a fixed workload reproduces the exact
 * same fault schedule.
 *
 * Thread safety (docs/concurrency.md): one injector may be installed
 * on several threads at once.  Each thread draws from its own PRNG
 * stream, seeded `seed ^ (ordinal * golden_ratio)` where the ordinal
 * counts the order in which threads first touched this injector —
 * the first thread's stream is therefore byte-identical to the old
 * single-threaded injector, and every thread's schedule is
 * reproducible as long as the set of polling threads and their
 * per-thread poll orders are (cross-thread interleaving never mixes
 * streams).  Arm state and counters are atomics; polls and fires
 * tally across all threads.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed);

    /**
     * Arm @p point: each poll fires with probability @p probability;
     * after @p max_fires firings (0 = unlimited) the point reverts to
     * inert.
     */
    void
    arm(FaultPoint point, double probability, uint64_t max_fires = 0)
    {
        State &s = state(point);
        s.probability.store(probability, std::memory_order_relaxed);
        s.maxFires = max_fires;
        // Armed last: a poll that sees armed also sees the params.
        s.armed.store(true, std::memory_order_release);
    }

    /** Disarm @p point (counters are retained). */
    void disarm(FaultPoint point) { state(point).armed = false; }

    /**
     * One poll of @p point: true if the fault fires now.  Called by
     * the injection sites via CHISEL_FAULT_FIRE.
     */
    bool
    shouldFire(FaultPoint point)
    {
        State &s = state(point);
        ++s.polls;
        if (!s.armed.load(std::memory_order_acquire))
            return false;
        uint64_t budget = s.maxFires;
        if (budget != 0 && s.fires >= budget)
            return false;
        if (!threadRng().nextBool(
                s.probability.load(std::memory_order_relaxed)))
            return false;
        ++s.fires;
        CHISEL_FLIGHT_EVENT(FaultFired, point, s.fires, 0);
        return true;
    }

    /**
     * Deterministic choice in [0, bound) for a firing fault's target
     * (which slot, which bit).  @p bound must be > 0.
     */
    uint64_t draw(uint64_t bound) { return threadRng().nextBelow(bound); }

    /** Polls of @p point so far (armed or not). */
    uint64_t polls(FaultPoint point) const
    {
        return stateOf(point).polls;
    }

    /** Firings of @p point so far. */
    uint64_t fires(FaultPoint point) const
    {
        return stateOf(point).fires;
    }

    /** Firings across all points. */
    uint64_t totalFires() const;

    /** This thread's ordinal for this injector (0 = first toucher). */
    uint64_t threadOrdinal();

  private:
    struct State
    {
        concurrent::RelaxedFlag armed;
        std::atomic<double> probability{0.0};
        concurrent::RelaxedU64 maxFires;
        concurrent::RelaxedU64 polls;
        concurrent::RelaxedU64 fires;
    };

    State &state(FaultPoint p)
    {
        return states_[static_cast<size_t>(p)];
    }
    const State &stateOf(FaultPoint p) const
    {
        return states_[static_cast<size_t>(p)];
    }

    /** This thread's PRNG stream for this injector. */
    Rng &threadRng();

    uint64_t seed_;
    uint64_t id_;   ///< Process-unique, keys the thread stream cache.
    std::atomic<uint64_t> nextOrdinal_{0};
    std::array<State, kFaultPointCount> states_{};
};

namespace detail {
/** The thread's installed injector; nullptr disables every point. */
extern thread_local FaultInjector *g_activeInjector;
} // namespace detail

/** Injector currently installed on this thread, or nullptr. */
inline FaultInjector *
activeInjector()
{
#if CHISEL_FAULT_INJECTION_ENABLED
    return detail::g_activeInjector;
#else
    return nullptr;
#endif
}

/**
 * RAII install/restore of the thread's injector (nestable).  A no-op
 * shell when injection is compiled out.
 */
class ScopedInjector
{
  public:
#if CHISEL_FAULT_INJECTION_ENABLED
    explicit ScopedInjector(FaultInjector *injector)
        : prev_(detail::g_activeInjector)
    {
        detail::g_activeInjector = injector;
    }

    ~ScopedInjector() { detail::g_activeInjector = prev_; }
#else
    explicit ScopedInjector(FaultInjector *) {}
#endif

    ScopedInjector(const ScopedInjector &) = delete;
    ScopedInjector &operator=(const ScopedInjector &) = delete;

  private:
#if CHISEL_FAULT_INJECTION_ENABLED
    FaultInjector *prev_;
#endif
};

} // namespace chisel::fault

#if CHISEL_FAULT_INJECTION_ENABLED

/**
 * One poll of injection point @p point; evaluates to true when the
 * fault fires.  Usable directly in a condition:
 *
 *     if (CHISEL_FAULT_FIRE(TcamOverflow))
 *         return false;   // pretend the TCAM is full
 */
#define CHISEL_FAULT_FIRE(point)                                       \
    (::chisel::fault::activeInjector() != nullptr &&                   \
     ::chisel::fault::activeInjector()->shouldFire(                    \
         ::chisel::fault::FaultPoint::point))

#else

#define CHISEL_FAULT_FIRE(point) (false)

#endif // CHISEL_FAULT_INJECTION_ENABLED

#endif // CHISEL_FAULT_FAULT_HH
