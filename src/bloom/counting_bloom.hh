/**
 * @file
 * Counting Bloom filter (Fan et al., SIGCOMM 1998).
 *
 * The on-chip first level of the Extended Bloom Filter baseline
 * (Song et al., SIGCOMM 2005) is a counting Bloom filter whose
 * counter values steer lookups to the least-loaded hash bucket.
 */

#ifndef CHISEL_BLOOM_COUNTING_BLOOM_HH
#define CHISEL_BLOOM_COUNTING_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/key128.hh"
#include "hash/h3.hh"

namespace chisel {

/**
 * Counting Bloom filter with saturating counters.
 */
class CountingBloomFilter
{
  public:
    /**
     * @param counters Number of counters.
     * @param k Number of hash functions.
     * @param counter_bits Width of each counter (for storage modelling
     *        and saturation; typical hardware value is 4).
     * @param seed Hash-family seed.
     */
    CountingBloomFilter(size_t counters, unsigned k,
                        unsigned counter_bits, uint64_t seed);

    /** Increment the k counters of a key. */
    void insert(const Key128 &key, unsigned len);

    /** Decrement the k counters of a key (assumes it was inserted). */
    void remove(const Key128 &key, unsigned len);

    /** Membership: all k counters non-zero. */
    bool query(const Key128 &key, unsigned len) const;

    /** The k counter locations of a key, in hash-function order. */
    std::vector<size_t> locations(const Key128 &key, unsigned len) const;

    /** Counter value at a location. */
    uint32_t counterAt(size_t location) const { return counters_[location]; }

    /** Number of counters. */
    size_t size() const { return counters_.size(); }

    /** Counter width in bits (storage model). */
    unsigned counterBits() const { return counterBits_; }

    /** Total on-chip bits: counters * width. */
    uint64_t storageBits() const;

    /** Number of saturated counters so far (diagnostic). */
    size_t saturations() const { return saturations_; }

    void clear();

  private:
    H3Family family_;
    std::vector<uint32_t> counters_;
    unsigned counterBits_;
    uint32_t maxCount_;
    size_t saturations_ = 0;
};

} // namespace chisel

#endif // CHISEL_BLOOM_COUNTING_BLOOM_HH
