#include "bloom/counting_bloom.hh"

#include <cassert>

#include "common/bitops.hh"

namespace chisel {

CountingBloomFilter::CountingBloomFilter(size_t counters, unsigned k,
                                         unsigned counter_bits,
                                         uint64_t seed)
    : family_(k, 64, seed),
      counters_(counters, 0),
      counterBits_(counter_bits),
      maxCount_(static_cast<uint32_t>(lowMask(counter_bits)))
{
    assert(counters >= 1);
    assert(k >= 1);
    assert(counter_bits >= 1 && counter_bits <= 32);
}

std::vector<size_t>
CountingBloomFilter::locations(const Key128 &key, unsigned len) const
{
    std::vector<size_t> locs(family_.size());
    for (unsigned i = 0; i < family_.size(); ++i)
        locs[i] = static_cast<size_t>(
            family_.hash(i, key, len) % counters_.size());
    return locs;
}

void
CountingBloomFilter::insert(const Key128 &key, unsigned len)
{
    for (size_t loc : locations(key, len)) {
        if (counters_[loc] >= maxCount_) {
            ++saturations_;
            continue;
        }
        ++counters_[loc];
    }
}

void
CountingBloomFilter::remove(const Key128 &key, unsigned len)
{
    for (size_t loc : locations(key, len)) {
        if (counters_[loc] > 0 && counters_[loc] < maxCount_)
            --counters_[loc];
    }
}

bool
CountingBloomFilter::query(const Key128 &key, unsigned len) const
{
    for (size_t loc : locations(key, len)) {
        if (counters_[loc] == 0)
            return false;
    }
    return true;
}

uint64_t
CountingBloomFilter::storageBits() const
{
    return static_cast<uint64_t>(counters_.size()) * counterBits_;
}

void
CountingBloomFilter::clear()
{
    std::fill(counters_.begin(), counters_.end(), 0);
    saturations_ = 0;
}

} // namespace chisel
