#include "bloom/bloom.hh"

#include <cassert>
#include <cmath>

#include "common/bitops.hh"

namespace chisel {

BloomFilter::BloomFilter(size_t bits, unsigned k, uint64_t seed)
    : bits_(divCeil(bits, 64) * 64),
      family_(k, 64, seed),
      words_(bits_ / 64, 0)
{
    assert(bits >= 1);
    assert(k >= 1);
}

size_t
BloomFilter::bitIndex(unsigned fn, const Key128 &key, unsigned len) const
{
    return static_cast<size_t>(family_.hash(fn, key, len) % bits_);
}

void
BloomFilter::insert(const Key128 &key, unsigned len)
{
    for (unsigned i = 0; i < family_.size(); ++i) {
        size_t b = bitIndex(i, key, len);
        words_[b / 64] |= uint64_t(1) << (b % 64);
    }
    ++count_;
}

bool
BloomFilter::query(const Key128 &key, unsigned len) const
{
    for (unsigned i = 0; i < family_.size(); ++i) {
        size_t b = bitIndex(i, key, len);
        if (!((words_[b / 64] >> (b % 64)) & 1))
            return false;
    }
    return true;
}

double
BloomFilter::fillRatio() const
{
    size_t set = 0;
    for (uint64_t w : words_)
        set += popcount64(w);
    return static_cast<double>(set) / static_cast<double>(bits_);
}

double
BloomFilter::theoreticalFpp(size_t bits, unsigned k, size_t n)
{
    double m = static_cast<double>(bits);
    double fill = 1.0 - std::exp(-static_cast<double>(k) * n / m);
    return std::pow(fill, k);
}

void
BloomFilter::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
}

} // namespace chisel
