/**
 * @file
 * Plain Bloom filter (Bloom, CACM 1970).
 *
 * Used as a substrate and as the ancestor of the Bloomier filter; the
 * Dharmapurikar-style per-length membership scheme in the related-work
 * comparison is built from these.
 */

#ifndef CHISEL_BLOOM_BLOOM_HH
#define CHISEL_BLOOM_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/key128.hh"
#include "hash/h3.hh"

namespace chisel {

/**
 * A Bloom filter over (key, length) pairs with k H3 hash functions.
 */
class BloomFilter
{
  public:
    /**
     * @param bits Number of filter bits (rounded up to a multiple of 64).
     * @param k Number of hash functions.
     * @param seed Hash-family seed.
     */
    BloomFilter(size_t bits, unsigned k, uint64_t seed);

    /** Insert the top @p len bits of @p key. */
    void insert(const Key128 &key, unsigned len);

    /** Membership query; false positives possible, negatives exact. */
    bool query(const Key128 &key, unsigned len) const;

    /** Number of filter bits. */
    size_t bits() const { return bits_; }

    /** Number of hash functions. */
    unsigned k() const { return family_.size(); }

    /** Number of inserted elements. */
    size_t count() const { return count_; }

    /** Fraction of bits set. */
    double fillRatio() const;

    /** Theoretical false-positive probability for n inserted keys. */
    static double theoreticalFpp(size_t bits, unsigned k, size_t n);

    /** Reset to empty. */
    void clear();

  private:
    size_t bitIndex(unsigned fn, const Key128 &key, unsigned len) const;

    size_t bits_;
    H3Family family_;
    std::vector<uint64_t> words_;
    size_t count_ = 0;
};

} // namespace chisel

#endif // CHISEL_BLOOM_BLOOM_HH
