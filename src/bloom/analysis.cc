#include "bloom/analysis.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace chisel {

namespace {

/**
 * log of one term of Equation 3:
 *   s * [ (k/2 + 1) - (k/2) ln 2 ] + (s k / 2) * ln(s k / m)
 * (natural log).
 */
double
logTerm(double s, double m, double k)
{
    double coeff = (k / 2.0 + 1.0) - (k / 2.0) * std::log(2.0);
    return s * coeff + (s * k / 2.0) * std::log(s * k / m);
}

/**
 * Natural-log of the Equation 3 sum, computed by accumulating terms
 * with log-sum-exp.  Terms initially decrease geometrically (for
 * m > kn the log term is concave in s with negative slope at s=1),
 * so the sum converges quickly; we stop once a term is 60 nats below
 * the running total or the term index reaches n.
 */
double
logSum(size_t n, size_t m, unsigned k)
{
    assert(n >= 1 && m >= 1 && k >= 1);
    double md = static_cast<double>(m);
    double kd = static_cast<double>(k);

    double log_total = -std::numeric_limits<double>::infinity();
    for (size_t s = 1; s <= n; ++s) {
        double lt = logTerm(static_cast<double>(s), md, kd);
        if (log_total == -std::numeric_limits<double>::infinity()) {
            log_total = lt;
        } else if (lt > log_total) {
            log_total = lt + std::log1p(std::exp(log_total - lt));
        } else {
            log_total += std::log1p(std::exp(lt - log_total));
        }
        // Terms with sk >= m make the bound vacuous (> 1); they also
        // grow, so once we are past the useful regime stop early when
        // the term is negligible relative to the total.
        if (lt < log_total - 60.0 && s > 8)
            break;
        if (log_total > 0.0)
            break;  // Bound already exceeds 1; it is vacuous.
    }
    return log_total;
}

} // anonymous namespace

double
bloomierSetupFailureBound(size_t n, size_t m, unsigned k)
{
    double lt = logSum(n, m, k);
    if (lt > 0.0)
        return 1.0;
    return std::exp(lt);
}

double
bloomierSetupFailureBoundLog10(size_t n, size_t m, unsigned k)
{
    double lt = logSum(n, m, k);
    return std::min(lt, 0.0) / std::log(10.0);
}

double
repeatedFailureProbability(size_t n, size_t m, unsigned k,
                           unsigned attempts)
{
    double log10_once = bloomierSetupFailureBoundLog10(n, m, k);
    double log10_all = log10_once * attempts;
    if (log10_all < -300.0)
        return 0.0;
    return std::pow(10.0, log10_all);
}

} // namespace chisel
