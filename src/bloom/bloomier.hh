/**
 * @file
 * Bloomier filter (Chazelle, Kilian, Rubinfeld, Tal; SODA 2004), with
 * the Chisel extensions of Sections 4.1, 4.2 and 4.4:
 *
 *  - codes stored in the Index Table are *pointers* into an external
 *    table of n locations (Equation 4), not the k-valued hτ of the
 *    original construction;
 *  - incremental insertion through singleton slots;
 *  - d-way logical partitioning by a hash checksum, so that the rare
 *    insert with no singleton rebuilds only 1/d of the keys;
 *  - spillover handling: keys the peeling cannot place are reported
 *    so the caller can park them in a small spillover TCAM.
 *
 * The Index Table is segmented: hash function i indexes only segment
 * i of a partition, mirroring the FPGA prototype's "3-way segmented
 * memory" and guaranteeing that a key's k slots are distinct (XOR
 * recovery breaks if two of a key's slots coincide).
 *
 * Lookup evaluates Equation 2: XOR of the k slot values yields the
 * encoded code for any key that was inserted.  For absent keys the
 * XOR is arbitrary — the caller must verify against the stored key
 * (the Filter Table) to eliminate false positives, per Section 4.2.
 */

#ifndef CHISEL_BLOOM_BLOOMIER_HH
#define CHISEL_BLOOM_BLOOMIER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitops.hh"
#include "common/key128.hh"
#include "hash/h3.hh"
#include "hash/mix.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/** Construction parameters for a Bloomier filter. */
struct BloomierConfig
{
    /** Number of hash functions (paper design point: 3). */
    unsigned k = 3;

    /** Index-table slots per key, m/n (paper design point: 3). */
    double ratio = 3.0;

    /** Key length in bits; all keys of one filter share it. */
    unsigned keyLen = 32;

    /** Logical partitions d (Section 4.4.2); 1 disables partitioning. */
    unsigned partitions = 1;

    /** Hash-family seed. */
    uint64_t seed = 0xC0FFEE;
};

/**
 * A dynamic Bloomier filter mapping fixed-length keys to codes.
 *
 * Codes are arbitrary 32-bit values chosen by the caller (Chisel
 * passes Filter/Result-table slot indices).  The filter maintains a
 * software registry of its keys — the "shadow copy" of Section 4.4 —
 * so that partitions can be rebuilt; the hardware image is the slot
 * array returned by storage accessors.
 */
class BloomierFilter
{
  public:
    /** How an insert was accomplished (Figure 14's categories). */
    enum class InsertMethod
    {
        Singleton,   ///< Encoded directly into an empty slot, O(1).
        Rebuild,     ///< Required re-running setup on one partition.
        Failed,      ///< Could not be placed even after rebuild.
        Duplicate,   ///< Key already present; nothing done.
    };

    /** Result of an insert. */
    struct InsertResult
    {
        InsertMethod method = InsertMethod::Failed;
        /**
         * Keys (with their codes) evicted during a rebuild because
         * peeling could not place them; the caller must park them in
         * the spillover TCAM.  The inserted key itself appears here
         * when method == Failed.
         */
        std::vector<std::pair<Key128, uint32_t>> spilled;
    };

    /** Cumulative operation counters. */
    struct Stats
    {
        uint64_t singletonInserts = 0;
        uint64_t rebuilds = 0;
        uint64_t spilledKeys = 0;
        uint64_t erases = 0;
        uint64_t reseeds = 0;
        /**
         * Full setup() passes (bulk peeling over every partition) —
         * the expensive cold-start event a snapshot restore avoids;
         * warm restarts assert this stays flat (docs/persistence.md).
         */
        uint64_t setups = 0;
    };

    /**
     * @param capacity Number of keys the filter is provisioned for
     *        (n); the Index Table gets ceil(ratio*n) slots, rounded
     *        up so that every partition has k equal segments.
     * @param config Construction parameters.
     */
    BloomierFilter(size_t capacity, const BloomierConfig &config);

    /**
     * Bulk setup: replaces the current content with @p entries and
     * runs the peeling setup on every partition.
     *
     * @return Keys that could not be placed (for the spillover TCAM);
     *         empty on full success.
     */
    std::vector<std::pair<Key128, uint32_t>>
    setup(const std::vector<std::pair<Key128, uint32_t>> &entries);

    /**
     * Insert one key.  Tries the O(1) singleton encode first; if no
     * slot of the key is unoccupied, rebuilds the key's partition.
     */
    InsertResult insert(const Key128 &key, uint32_t code);

    /**
     * Remove a key's occupancy.  Its stale encoding remains in the
     * slot array — harmless, since lookups of other keys never XOR
     * it, and the Filter Table check rejects the removed key.
     *
     * @return true if the key was present.
     */
    bool erase(const Key128 &key);

    /**
     * Equation 2: XOR of the key's k slots.  For inserted keys this
     * is the code passed to insert(); for absent keys it is garbage
     * that the caller must filter (Section 4.2).
     *
     * @param parity_ok When non-null, set to false if any of the k
     *        slots read fails its parity check (soft-error detection;
     *        the returned code must then not be trusted).
     */
    uint32_t lookupCode(const Key128 &key,
                        bool *parity_ok = nullptr) const;

    /** Software registry membership (exact; no false positives). */
    bool contains(const Key128 &key) const;

    /** Code of a key per the software registry, if present. */
    std::optional<uint32_t> findCode(const Key128 &key) const;

    /**
     * True if inserting @p key now would find a singleton slot, i.e.
     * would be O(1).  Used by tests and by the update classifier.
     */
    bool hasSingletonSlot(const Key128 &key) const;

    /** Number of keys currently placed (excluding spilled). */
    size_t size() const { return size_; }

    /** Provisioned capacity n. */
    size_t capacity() const { return capacity_; }

    /** Total Index Table slots m. */
    size_t slots() const { return slots_.size(); }

    /** Number of logical partitions. */
    unsigned partitions() const { return partitions_; }

    /** Slots per partition (a rebuild rewrites this many). */
    size_t partitionSlots() const { return partitionSlots_; }

    /** Width of one Index Table slot in bits (storage model). */
    unsigned slotWidthBits() const { return slotWidthBits_; }

    /** Total Index Table storage in bits: m * slot width. */
    uint64_t storageBits() const;

    /** Operation counters. */
    const Stats &stats() const { return stats_; }

    /** Remove everything. */
    void clear();

    /**
     * Replace the hash family with one derived from @p seed and clear
     * the filter.  Used by the bounded-retry ladder when a setup
     * cannot place every key: new hash functions give the peeling an
     * independent chance.  The caller must re-setup() afterwards.
     */
    void reseed(uint64_t seed);

    /** Seed currently in use (changes on reseed). */
    uint64_t seed() const { return config_.seed; }

    /**
     * Soft-error model: flip bit @p bit of Index slot @p slot without
     * updating its parity.  The corruption is detectable by the
     * parity check in lookupCode() until the slot is legitimately
     * rewritten.
     */
    void flipSlotBit(size_t slot, unsigned bit);

    /** True if @p slot passes its parity check. */
    bool
    parityOk(size_t slot) const
    {
        return (popcount64(slots_[slot]) & 1u) == parity_[slot];
    }

    /**
     * Consistency check (tests): every registered key's lookupCode
     * equals its registered code.  O(n).
     */
    bool selfCheck() const;

    /**
     * Serialize the filter: seed, the raw Index Table slot array
     * (whose contents encode the peeling result and cannot be
     * re-derived without re-running setup), the key registry and the
     * operation counters.  Geometry (capacity, k, ratio, partitions)
     * is not written — it is fixed by the constructor arguments, and
     * loadState() requires the running instance to match.
     */
    void saveState(persist::Encoder &enc) const;

    /**
     * Restore from saveState() output: reseeds the hash family,
     * installs the slot array, re-registers every key and recomputes
     * occupancy counts and parity.  No peeling runs.  Throws
     * persist::DecodeError on malformed input (wrong slot count,
     * out-of-range code, duplicate key).
     */
    void loadState(persist::Decoder &dec);

  private:
    using Registry =
        std::unordered_map<Key128, uint32_t, Key128Hasher>;

    /** Partition index of a key (the hash checksum of Section 4.4.2). */
    unsigned partitionOf(const Key128 &key) const;

    /** The k slot indices of a key, one per segment of its partition. */
    void slotsOf(const Key128 &key, unsigned partition,
                 size_t out[]) const;

    /** Write the encoding of (key, code) into slot @p target. */
    void encodeAt(const Key128 &key, unsigned partition, uint32_t code,
                  size_t target);

    /** Store @p value at @p slot, keeping its parity bit current. */
    void
    writeSlot(size_t slot, uint32_t value)
    {
        slots_[slot] = value;
        parity_[slot] =
            static_cast<uint8_t>(popcount64(value) & 1u);
    }

    /**
     * Re-run the peeling setup on partition @p p.  Keys that cannot
     * be placed are removed from the registry and appended to
     * @p spilled with their codes.
     */
    void rebuildPartition(unsigned p,
                          std::vector<std::pair<Key128, uint32_t>>
                              &spilled);

    size_t capacity_;
    BloomierConfig config_;
    unsigned partitions_;
    size_t partitionSlots_;   ///< Slots per partition (k segments).
    size_t segmentSlots_;     ///< Slots per segment.
    unsigned slotWidthBits_;

    H3Family family_;
    H3Hash checksum_;         ///< Partition selector.

    std::vector<uint32_t> slots_;     ///< The Index Table D[].
    std::vector<uint8_t> parity_;     ///< Even-parity bit per slot.
    std::vector<uint32_t> counts_;    ///< Occupancy per slot.
    std::vector<Registry> registry_;  ///< Per-partition key registry.
    size_t size_ = 0;
    Stats stats_;
};

} // namespace chisel

#endif // CHISEL_BLOOM_BLOOMIER_HH
