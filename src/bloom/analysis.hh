/**
 * @file
 * Analytic bounds for Bloomier-filter setup (paper Equation 3).
 *
 * The setup (peeling) algorithm fails when no singleton can be found;
 * Chazelle et al. bound the failure probability for n keys, an Index
 * Table of m >= kn slots and k hash functions by
 *
 *     P(fail) <= sum_{s=1..n} (e^{k/2+1} / 2^{k/2})^s (s k / m)^{s k / 2}
 *
 * Figures 2 and 3 of the paper plot exactly this bound; the functions
 * here evaluate it in log space so the 1e-35-scale values those plots
 * reach do not underflow.
 */

#ifndef CHISEL_BLOOM_ANALYSIS_HH
#define CHISEL_BLOOM_ANALYSIS_HH

#include <cstddef>

namespace chisel {

/**
 * Upper bound on Bloomier setup-failure probability (Equation 3).
 *
 * @param n Number of keys.
 * @param m Index Table slots (m >= k*n for the bound to be useful).
 * @param k Number of hash functions.
 * @return The bound, clamped to [0, 1].
 */
double bloomierSetupFailureBound(size_t n, size_t m, unsigned k);

/**
 * log10 of the bound; meaningful even when the bound itself
 * underflows a double (e.g. k=7 at large m/n).
 */
double bloomierSetupFailureBoundLog10(size_t n, size_t m, unsigned k);

/**
 * Probability that the same setup fails @p attempts consecutive times
 * with independent hash seeds (Section 4.1's 1e-14, 1e-21, ... series).
 */
double repeatedFailureProbability(size_t n, size_t m, unsigned k,
                                  unsigned attempts);

} // namespace chisel

#endif // CHISEL_BLOOM_ANALYSIS_HH
