#include "bloom/bloomier.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "persist/codec.hh"
#include "telemetry/trace.hh"

namespace chisel {

BloomierFilter::BloomierFilter(size_t capacity,
                               const BloomierConfig &config)
    : capacity_(std::max<size_t>(capacity, 1)),
      config_(config),
      partitions_(std::max(1u, config.partitions)),
      family_(config.k, 64, config.seed),
      checksum_(std::max(1u, ceilLog2(std::max(
          1u, config.partitions))), config.seed ^ 0x5eedc0deULL)
{
    if (config.k < 2)
        fatalError("BloomierFilter requires k >= 2");
    if (config.ratio < 1.0)
        fatalError("BloomierFilter requires ratio >= 1");

    // Segment size: each partition holds k equal segments; round up
    // so that m >= ratio * capacity.
    double want = config.ratio * static_cast<double>(capacity_);
    size_t per_segment = static_cast<size_t>(std::ceil(
        want / (static_cast<double>(partitions_) * config.k)));
    per_segment = std::max<size_t>(per_segment, 2);
    segmentSlots_ = per_segment;
    partitionSlots_ = segmentSlots_ * config.k;

    size_t m = partitionSlots_ * partitions_;
    slots_.assign(m, 0);
    parity_.assign(m, 0);
    counts_.assign(m, 0);
    registry_.resize(partitions_);

    // Codes are pointers into an n-entry table (Equation 4).
    slotWidthBits_ = addressBits(capacity_);
}

unsigned
BloomierFilter::partitionOf(const Key128 &key) const
{
    if (partitions_ == 1)
        return 0;
    return static_cast<unsigned>(
        checksum_.hash(key, config_.keyLen) % partitions_);
}

void
BloomierFilter::slotsOf(const Key128 &key, unsigned partition,
                        size_t out[]) const
{
    size_t base = static_cast<size_t>(partition) * partitionSlots_;
    for (unsigned i = 0; i < config_.k; ++i) {
        out[i] = base + i * segmentSlots_ +
            static_cast<size_t>(
                family_.hash(i, key, config_.keyLen) % segmentSlots_);
    }
}

void
BloomierFilter::encodeAt(const Key128 &key, unsigned partition,
                         uint32_t code, size_t target)
{
    size_t locs[8];
    slotsOf(key, partition, locs);
    uint32_t v = code;
    bool found = false;
    for (unsigned i = 0; i < config_.k; ++i) {
        if (locs[i] == target) {
            found = true;
            continue;
        }
        v ^= slots_[locs[i]];
    }
    panicIf(!found, "encodeAt target not in key's hash neighborhood");
    CHISEL_TRACE_WRITE(Index, target, (slotWidthBits_ + 7) / 8);
    writeSlot(target, v);
}

uint32_t
BloomierFilter::lookupCode(const Key128 &key, bool *parity_ok) const
{
    size_t locs[8];
    slotsOf(key, partitionOf(key), locs);
    uint32_t v = 0;
    const uint32_t slot_bytes = (slotWidthBits_ + 7) / 8;
    for (unsigned i = 0; i < config_.k; ++i) {
        // One hardware access per segment probe (k per lookup).
        CHISEL_TRACE_ACCESS(Index, locs[i], slot_bytes);
        v ^= slots_[locs[i]];
        if (parity_ok && !parityOk(locs[i]))
            *parity_ok = false;
    }
    return v;
}

void
BloomierFilter::reseed(uint64_t seed)
{
    config_.seed = seed;
    family_ = H3Family(config_.k, 64, seed);
    checksum_ = H3Hash(
        std::max(1u, ceilLog2(std::max(1u, config_.partitions))),
        seed ^ 0x5eedc0deULL);
    clear();
    ++stats_.reseeds;
}

void
BloomierFilter::flipSlotBit(size_t slot, unsigned bit)
{
    panicIf(slot >= slots_.size(), "flipSlotBit slot out of range");
    slots_[slot] ^= uint32_t(1) << (bit % std::max(1u, slotWidthBits_));
}

bool
BloomierFilter::contains(const Key128 &key) const
{
    return registry_[partitionOf(key)].contains(key);
}

std::optional<uint32_t>
BloomierFilter::findCode(const Key128 &key) const
{
    const Registry &reg = registry_[partitionOf(key)];
    auto it = reg.find(key);
    if (it == reg.end())
        return std::nullopt;
    return it->second;
}

bool
BloomierFilter::hasSingletonSlot(const Key128 &key) const
{
    size_t locs[8];
    slotsOf(key, partitionOf(key), locs);
    for (unsigned i = 0; i < config_.k; ++i) {
        if (counts_[locs[i]] == 0)
            return true;
    }
    return false;
}

BloomierFilter::InsertResult
BloomierFilter::insert(const Key128 &key, uint32_t code)
{
    unsigned p = partitionOf(key);
    Registry &reg = registry_[p];
    if (reg.contains(key))
        return InsertResult{InsertMethod::Duplicate, {}};

    size_t locs[8];
    slotsOf(key, p, locs);

    // Fast path: a singleton slot lets us encode in O(1) (§4.4.2).
    size_t singleton = SIZE_MAX;
    for (unsigned i = 0; i < config_.k; ++i) {
        if (counts_[locs[i]] == 0) {
            singleton = locs[i];
            break;
        }
    }
    // Injection point: pretend no singleton exists, forcing the rare
    // partition-rebuild path (polled only when it changes behaviour).
    if (singleton != SIZE_MAX && CHISEL_FAULT_FIRE(ForceNonSingleton))
        singleton = SIZE_MAX;

    reg.emplace(key, code);
    for (unsigned i = 0; i < config_.k; ++i)
        ++counts_[locs[i]];
    ++size_;

    if (singleton != SIZE_MAX) {
        encodeAt(key, p, code, singleton);
        ++stats_.singletonInserts;
        return InsertResult{InsertMethod::Singleton, {}};
    }

    // Slow path: re-run setup on this key's partition only.
    InsertResult result;
    ++stats_.rebuilds;
    rebuildPartition(p, result.spilled);

    bool self_spilled = false;
    for (const auto &[k2, c2] : result.spilled) {
        if (k2 == key && c2 == code)
            self_spilled = true;
    }
    result.method = self_spilled ? InsertMethod::Failed
                                 : InsertMethod::Rebuild;
    return result;
}

bool
BloomierFilter::erase(const Key128 &key)
{
    unsigned p = partitionOf(key);
    Registry &reg = registry_[p];
    auto it = reg.find(key);
    if (it == reg.end())
        return false;
    reg.erase(it);

    size_t locs[8];
    slotsOf(key, p, locs);
    for (unsigned i = 0; i < config_.k; ++i) {
        panicIf(counts_[locs[i]] == 0,
                "BloomierFilter occupancy underflow");
        --counts_[locs[i]];
    }
    --size_;
    ++stats_.erases;
    return true;
}

std::vector<std::pair<Key128, uint32_t>>
BloomierFilter::setup(
    const std::vector<std::pair<Key128, uint32_t>> &entries)
{
    ++stats_.setups;
    clear();
    for (const auto &[key, code] : entries) {
        unsigned p = partitionOf(key);
        Registry &reg = registry_[p];
        if (reg.contains(key))
            fatalError("BloomierFilter::setup: duplicate key");
        reg.emplace(key, code);
        size_t locs[8];
        slotsOf(key, p, locs);
        for (unsigned i = 0; i < config_.k; ++i)
            ++counts_[locs[i]];
        ++size_;
    }

    std::vector<std::pair<Key128, uint32_t>> spilled;
    for (unsigned p = 0; p < partitions_; ++p)
        rebuildPartition(p, spilled);
    return spilled;
}

void
BloomierFilter::rebuildPartition(
    unsigned p, std::vector<std::pair<Key128, uint32_t>> &spilled)
{
    Registry &reg = registry_[p];
    size_t base = static_cast<size_t>(p) * partitionSlots_;

    // Local snapshot of the partition's entries, in canonical (key)
    // order: the peel outcome must not depend on hash-map iteration
    // order, or a rebuild replayed after snapshot restore could
    // assign different slots than the original run.
    std::vector<std::pair<Key128, uint32_t>> entries(reg.begin(),
                                                     reg.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    size_t n = entries.size();

    // Per-slot peeling state, local indices [0, partitionSlots_).
    std::vector<uint32_t> cnt(partitionSlots_, 0);
    std::vector<uint32_t> xorsum(partitionSlots_, 0);
    std::vector<std::array<size_t, 8>> locs(n);

    for (size_t i = 0; i < n; ++i) {
        size_t raw[8];
        slotsOf(entries[i].first, p, raw);
        for (unsigned j = 0; j < config_.k; ++j) {
            size_t local = raw[j] - base;
            locs[i][j] = local;
            ++cnt[local];
            xorsum[local] ^= static_cast<uint32_t>(i);
        }
    }

    auto remove_entry = [&](size_t i) {
        for (unsigned j = 0; j < config_.k; ++j) {
            size_t l = locs[i][j];
            --cnt[l];
            xorsum[l] ^= static_cast<uint32_t>(i);
        }
    };

    // Peel: repeatedly pop singleton slots.  peel_slot[i] records the
    // slot through which entry i was peeled (its τ location).
    std::vector<size_t> peel_order;
    peel_order.reserve(n);
    std::vector<size_t> peel_slot(n, SIZE_MAX);
    std::vector<bool> peeled(n, false);

    std::deque<size_t> work;
    for (size_t s = 0; s < partitionSlots_; ++s) {
        if (cnt[s] == 1)
            work.push_back(s);
    }

    size_t peeled_count = 0;
    std::vector<bool> alive(n, true);

    // Injection point: evict one entry up front, as if the hash
    // functions had produced an unpeelable core containing it — the
    // construction-failure event of "Bloomier Filters: A second look".
    if (n > 0 && CHISEL_FAULT_FIRE(BloomierSetupFail)) {
        size_t victim =
            static_cast<size_t>(fault::activeInjector()->draw(n));
        alive[victim] = false;
        ++peeled_count;
        remove_entry(victim);
        for (unsigned j = 0; j < config_.k; ++j) {
            if (cnt[locs[victim][j]] == 1)
                work.push_back(locs[victim][j]);
        }
    }

    while (peeled_count < n) {
        bool progressed = false;
        while (!work.empty()) {
            size_t s = work.front();
            work.pop_front();
            if (cnt[s] != 1)
                continue;
            size_t i = xorsum[s];
            if (peeled[i] || !alive[i])
                continue;
            peeled[i] = true;
            peel_slot[i] = s;
            peel_order.push_back(i);
            ++peeled_count;
            progressed = true;
            remove_entry(i);
            for (unsigned j = 0; j < config_.k; ++j) {
                if (cnt[locs[i][j]] == 1)
                    work.push_back(locs[i][j]);
            }
        }
        if (peeled_count == n)
            break;
        if (!progressed || work.empty()) {
            // Stuck: every remaining entry sits on a cycle.  Evict the
            // most conflicted remaining entry to the spillover TCAM
            // (§4.1) and keep peeling.
            size_t victim = SIZE_MAX;
            uint64_t worst = 0;
            for (size_t i = 0; i < n; ++i) {
                if (peeled[i] || !alive[i])
                    continue;
                uint64_t load = 0;
                for (unsigned j = 0; j < config_.k; ++j)
                    load += cnt[locs[i][j]];
                if (victim == SIZE_MAX || load > worst) {
                    victim = i;
                    worst = load;
                }
            }
            panicIf(victim == SIZE_MAX,
                    "Bloomier peeling stuck with no remaining entry");
            alive[victim] = false;
            ++peeled_count;
            remove_entry(victim);
            for (unsigned j = 0; j < config_.k; ++j) {
                if (cnt[locs[victim][j]] == 1)
                    work.push_back(locs[victim][j]);
            }
        }
    }

    // Evicted entries leave the registry and the global counts.
    for (size_t i = 0; i < n; ++i) {
        if (alive[i])
            continue;
        spilled.push_back(entries[i]);
        ++stats_.spilledKeys;
        reg.erase(entries[i].first);
        size_t raw[8];
        slotsOf(entries[i].first, p, raw);
        for (unsigned j = 0; j < config_.k; ++j)
            --counts_[raw[j]];
        --size_;
    }

    // Encode in reverse peel order (the paper's Γ): each write lands
    // in a slot no later write will read or touch.
    std::fill(slots_.begin() + base,
              slots_.begin() + base + partitionSlots_, 0);
    std::fill(parity_.begin() + base,
              parity_.begin() + base + partitionSlots_, 0);
    for (auto it = peel_order.rbegin(); it != peel_order.rend(); ++it) {
        size_t i = *it;
        encodeAt(entries[i].first, p, entries[i].second,
                 base + peel_slot[i]);
    }
}

uint64_t
BloomierFilter::storageBits() const
{
    return static_cast<uint64_t>(slots_.size()) * slotWidthBits_;
}

void
BloomierFilter::clear()
{
    std::fill(slots_.begin(), slots_.end(), 0);
    std::fill(parity_.begin(), parity_.end(), 0);
    std::fill(counts_.begin(), counts_.end(), 0);
    for (auto &reg : registry_)
        reg.clear();
    size_ = 0;
}

void
BloomierFilter::saveState(persist::Encoder &enc) const
{
    enc.u64(config_.seed);
    enc.u64(slots_.size());
    for (uint32_t s : slots_)
        enc.u32(s);
    enc.u64(size_);
    // Canonical (key-sorted) order: the image of a restored filter
    // must be byte-identical to the image it was restored from, so
    // hash-map iteration order must not leak into the encoding.
    std::vector<std::pair<Key128, uint32_t>> keys;
    keys.reserve(size_);
    for (const Registry &reg : registry_)
        keys.insert(keys.end(), reg.begin(), reg.end());
    std::sort(keys.begin(), keys.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[key, code] : keys) {
        enc.key(key);
        enc.u32(code);
    }
    enc.u64(stats_.singletonInserts);
    enc.u64(stats_.rebuilds);
    enc.u64(stats_.spilledKeys);
    enc.u64(stats_.erases);
    enc.u64(stats_.reseeds);
    enc.u64(stats_.setups);
}

void
BloomierFilter::loadState(persist::Decoder &dec)
{
    uint64_t seed = dec.u64();
    // reseed() rebuilds the hash family the slot contents were
    // encoded under and clears every table; counters restored below.
    reseed(seed);

    if (dec.u64() != slots_.size())
        throw persist::DecodeError("bloomier: slot count mismatch");
    for (size_t i = 0; i < slots_.size(); ++i)
        writeSlot(i, dec.u32());

    uint64_t n = dec.count(20);   // Key128 (16) + code (4).
    if (n > capacity_)
        throw persist::DecodeError("bloomier: more keys than capacity");
    for (uint64_t i = 0; i < n; ++i) {
        Key128 key = dec.key();
        uint32_t code = dec.u32();
        if (code >= capacity_)
            throw persist::DecodeError("bloomier: code out of range");
        unsigned p = partitionOf(key);
        auto [it, inserted] = registry_[p].emplace(key, code);
        (void)it;
        if (!inserted)
            throw persist::DecodeError("bloomier: duplicate key");
        size_t locs[8];
        slotsOf(key, p, locs);
        for (unsigned j = 0; j < config_.k; ++j)
            ++counts_[locs[j]];
    }
    size_ = n;

    stats_.singletonInserts = dec.u64();
    stats_.rebuilds = dec.u64();
    stats_.spilledKeys = dec.u64();
    stats_.erases = dec.u64();
    stats_.reseeds = dec.u64();
    stats_.setups = dec.u64();
}

bool
BloomierFilter::selfCheck() const
{
    for (unsigned p = 0; p < partitions_; ++p) {
        for (const auto &[key, code] : registry_[p]) {
            if (lookupCode(key) != code)
                return false;
        }
    }
    return true;
}

} // namespace chisel
