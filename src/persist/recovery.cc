#include "persist/recovery.hh"

#include "common/logging.hh"
#include "core/resize.hh"

namespace chisel::persist {

const char *
recoverySourceName(RecoverySource s)
{
    switch (s) {
      case RecoverySource::Snapshot: return "snapshot";
      case RecoverySource::PreviousSnapshot: return "previous-snapshot";
      case RecoverySource::ColdSetup: return "cold-setup";
    }
    return "?";
}

namespace {

/**
 * Replay the journal tail after @p from_seq into @p engine, in stream
 * order.  The tail starts just past the record the recovered image
 * covers: the last SnapshotMark stamped seq == from_seq when one
 * exists, otherwise the last Update/Outcome with seq <= from_seq.
 * Sequence numbers alone cannot place the cut, because Housekeeping
 * records share the seq of the update they follow — a purge right
 * after the snapshot and a purge right before it carry the same seq,
 * and replaying the wrong one resurrects or destroys dirty groups.
 * From the cut on, Update records with seq > from_seq are re-applied
 * and Housekeeping records re-run, so maintenance mutations land
 * between the same updates they originally did.  A ResizeMark past
 * the cut re-runs the live rebuild: @p engine is replaced by one
 * re-planned under the marked config (hence the unique_ptr) — a no-op
 * when the recovered image already carries that config, which is how
 * a mark racing the snapshot rotation stays idempotent.  @return
 * records applied (updates + housekeeping + resizes).
 */
uint64_t
replayTail(std::unique_ptr<ChiselEngine> &engine,
           const JournalScan &scan, uint64_t from_seq,
           uint64_t &last_seq)
{
    size_t start = 0;
    for (size_t i = 0; i < scan.records.size(); ++i) {
        const JournalRecord &rec = scan.records[i];
        if (rec.type == JournalRecord::Type::SnapshotMark &&
            rec.seq == from_seq)
            start = i + 1;
    }
    if (start == 0 && from_seq > 0) {
        // No mark for this image (e.g. the mark's append was torn):
        // cut after the last record the image already accounts for.
        for (size_t i = 0; i < scan.records.size(); ++i) {
            const JournalRecord &rec = scan.records[i];
            if ((rec.type == JournalRecord::Type::Update ||
                 rec.type == JournalRecord::Type::Outcome) &&
                rec.seq <= from_seq)
                start = i + 1;
        }
    }

    uint64_t applied = 0;
    for (size_t i = start; i < scan.records.size(); ++i) {
        const JournalRecord &rec = scan.records[i];
        switch (rec.type) {
          case JournalRecord::Type::Update:
            if (rec.seq <= from_seq)
                break;
            engine->apply(rec.update);
            ++applied;
            if (rec.seq > last_seq)
                last_seq = rec.seq;
            break;
          case JournalRecord::Type::Housekeeping:
            if (rec.housekeeping ==
                JournalRecord::HousekeepingKind::PurgeDirty)
                engine->purgeDirty();
            ++applied;
            break;
          case JournalRecord::Type::ResizeMark:
            if (elasticCompatible(engine->config(),
                                  rec.resizeConfig) &&
                !(engine->config() == rec.resizeConfig)) {
                RoutingTable table = engine->exportTable();
                auto grown = std::make_unique<ChiselEngine>(
                    table, rec.resizeConfig);
                grown->adoptTtl(*engine);
                engine = std::move(grown);
                ++applied;
            }
            break;
          case JournalRecord::Type::Outcome:
          case JournalRecord::Type::SnapshotMark:
            break;
        }
    }
    return applied;
}

} // anonymous namespace

void
auditEngine(const ChiselEngine &engine, const RoutingTable &initial,
            const JournalScan &scan, RecoveryReport &report)
{
    // The reference: initial table advanced through every journaled
    // update — derived without touching any Chisel data structure, so
    // it cannot share a bug with the thing it checks.
    RoutingTable reference = initial;
    for (const JournalRecord &rec : scan.records) {
        if (rec.type != JournalRecord::Type::Update)
            continue;
        if (rec.update.kind == UpdateKind::Announce)
            reference.add(rec.update.prefix, rec.update.nextHop);
        else
            reference.remove(rec.update.prefix);
    }

    report.auditRan = true;
    report.auditMissing = 0;
    report.auditMismatched = 0;
    report.auditPhantom = 0;

    for (const Route &r : reference.routes()) {
        std::optional<NextHop> got = engine.find(r.prefix);
        if (!got)
            ++report.auditMissing;
        else if (*got != r.nextHop)
            ++report.auditMismatched;
    }
    for (const Route &r : engine.exportTable().routes()) {
        if (!reference.contains(r.prefix))
            ++report.auditPhantom;
    }
    report.auditPassed = report.auditMissing == 0 &&
                         report.auditMismatched == 0 &&
                         report.auditPhantom == 0;
}

RecoveryReport
recoverEngine(const RecoveryOptions &options)
{
    RecoveryReport report;

    // The journal first: every rung needs its valid prefix.  Accept
    // either the strict config fingerprint or the elastic (geometry
    // kernel) one — a journal that lived through a live resize is
    // stamped with the latter and is still this engine's history.
    JournalScan scan;
    if (!options.journalPath.empty()) {
        scan = scanJournal(options.journalPath, 0);
        if (scan.headerOk && options.expectFingerprint != 0) {
            // Caller pinned an exact identity (e.g. a per-shard
            // fingerprint binding the keyspace slice).
            if (scan.fingerprint != options.expectFingerprint) {
                scan.headerOk = false;
                scan.error = "journal written under a different "
                             "identity";
            }
        } else if (scan.headerOk &&
                   scan.fingerprint != configFingerprint(options.config) &&
                   scan.fingerprint != elasticFingerprint(options.config)) {
            scan.headerOk = false;
            scan.error = "journal written under a different config";
        }
        report.journalHeaderOk = scan.headerOk;
        report.journalError = scan.error;
        report.journalRecords = scan.records.size();
        report.journalTornTail = scan.truncatedTail;
        if (!scan.headerOk) {
            // An unusable journal contributes nothing to replay; the
            // snapshot rungs can still produce a consistent (if
            // stale) engine.  Count the loss as a fallback.
            ++report.fallbacks;
            scan = JournalScan{};
        }
    }

    // Rungs 1 and 2: snapshot, then its rotated predecessor.
    if (!options.snapshotPath.empty()) {
        SnapshotLoadResult primary =
            loadSnapshot(options.snapshotPath, &options.config,
                         /*allow_elastic=*/true);
        if (primary.status == SnapshotLoadStatus::Ok) {
            report.engine = std::move(primary.engine);
            report.source = RecoverySource::Snapshot;
            report.snapshotLoads = 1;
            report.lastSeq = primary.lastSeq;
        } else {
            report.snapshotError = primary.error;
            ++report.fallbacks;
            SnapshotLoadResult previous = loadSnapshot(
                previousSnapshotPath(options.snapshotPath),
                &options.config, /*allow_elastic=*/true);
            if (previous.status == SnapshotLoadStatus::Ok) {
                report.engine = std::move(previous.engine);
                report.source = RecoverySource::PreviousSnapshot;
                report.snapshotLoads = 1;
                report.lastSeq = previous.lastSeq;
            } else {
                report.previousSnapshotError = previous.error;
                ++report.fallbacks;
            }
        }
    }

    // Rung 3: cold setup — always succeeds, pays the Bloomier setups.
    if (report.engine == nullptr) {
        report.engine = std::make_unique<ChiselEngine>(
            options.initialTable, options.config);
        report.source = RecoverySource::ColdSetup;
        report.lastSeq = 0;
    }

    report.recordsReplayed =
        replayTail(report.engine, scan, report.lastSeq,
                   report.lastSeq);

    if (options.audit)
        auditEngine(*report.engine, options.initialTable, scan, report);

    return report;
}

} // namespace chisel::persist
