/**
 * @file
 * Crash recovery: snapshot + journal-tail replay with an adversarial
 * fallback ladder (docs/persistence.md).
 *
 * The ladder, top rung first:
 *
 *   1. primary snapshot  + replay journal records with seq > covered
 *   2. previous snapshot + replay the (longer) journal tail
 *   3. cold setup from the initial table + replay the whole journal
 *
 * Each rung is taken only when every rung above it failed (missing
 * file, CRC mismatch, version/config mismatch, malformed payload —
 * all reported, none fatal).  The journal itself is scanned with the
 * torn-tail rule: the valid record prefix is trusted, everything
 * after the first length/CRC violation is discarded.
 *
 * After the engine is rebuilt, an optional route-by-route audit
 * compares it against a reference table derived independently from
 * the initial table plus the journal — the recovered engine must
 * contain exactly the routes the durable history says it should.
 */

#ifndef CHISEL_PERSIST_RECOVERY_HH
#define CHISEL_PERSIST_RECOVERY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.hh"
#include "persist/journal.hh"
#include "persist/snapshot.hh"

namespace chisel::persist {

/** Inputs to recoverEngine(). */
struct RecoveryOptions
{
    /** Journal path; empty disables replay (snapshot-only restart). */
    std::string journalPath;

    /** Snapshot path; empty disables rungs 1 and 2. */
    std::string snapshotPath;

    /** Config the recovered engine must run under. */
    ChiselConfig config;

    /**
     * Routes the engine was originally built from, for the cold rung
     * and the audit reference (the journal records only post-boot
     * updates).  May be empty if the journal's first snapshot mark
     * covers boot — i.e. a snapshot was taken right after setup.
     */
    RoutingTable initialTable;

    /** Run the route-by-route audit after rebuilding. */
    bool audit = true;

    /**
     * Exact journal fingerprint to accept; 0 keeps the default rule
     * (the config's strict or elastic fingerprint).  The sharded
     * persistence layout stamps each shard's journal with a
     * fingerprint that also binds the shard identity
     * (shard::shardJournalFingerprint), so a journal can never be
     * replayed into the wrong keyspace slice.
     */
    uint64_t expectFingerprint = 0;
};

/** Which rung of the ladder produced the engine. */
enum class RecoverySource
{
    Snapshot,          ///< Rung 1: the primary snapshot.
    PreviousSnapshot,  ///< Rung 2: the rotated .prev image.
    ColdSetup,         ///< Rung 3: full rebuild (Bloomier setups paid).
};

const char *recoverySourceName(RecoverySource s);

/** Everything a recovery did and found. */
struct RecoveryReport
{
    /** The rebuilt engine; never null on return (cold rung always
     *  succeeds).  recoverEngine throws only on I/O-level surprises
     *  outside the modelled failure set. */
    std::unique_ptr<ChiselEngine> engine;

    RecoverySource source = RecoverySource::ColdSetup;

    /** Rungs that failed before one worked (0 = snapshot was good). */
    uint64_t fallbacks = 0;

    /** Snapshot images successfully restored (0 or 1). */
    uint64_t snapshotLoads = 0;

    /** Why rung 1 / rung 2 failed; empty when not attempted or ok. */
    std::string snapshotError;
    std::string previousSnapshotError;

    /** Journal scan summary. */
    bool journalHeaderOk = false;
    std::string journalError;
    uint64_t journalRecords = 0;
    bool journalTornTail = false;

    /** Update records re-applied to the engine. */
    uint64_t recordsReplayed = 0;

    /** Sequence number the engine is current through. */
    uint64_t lastSeq = 0;

    /** Audit outcome (meaningful when options.audit). */
    bool auditRan = false;
    bool auditPassed = false;
    uint64_t auditMissing = 0;     ///< Reference routes absent.
    uint64_t auditMismatched = 0;  ///< Present with the wrong next hop.
    uint64_t auditPhantom = 0;     ///< Engine routes not in reference.
};

/**
 * Run the recovery ladder.  See RecoveryOptions/RecoveryReport.
 * Throws ChiselError only for unmodelled I/O failures (e.g. the
 * journal exists but cannot be truncated).
 */
RecoveryReport recoverEngine(const RecoveryOptions &options);

/**
 * The audit alone: compare @p engine route-by-route against the
 * reference derived from @p initial plus the update records of
 * @p scan (applied in sequence order).  Fills the audit fields of
 * @p report.
 */
void auditEngine(const ChiselEngine &engine,
                 const RoutingTable &initial, const JournalScan &scan,
                 RecoveryReport &report);

} // namespace chisel::persist

#endif // CHISEL_PERSIST_RECOVERY_HH
