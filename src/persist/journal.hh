/**
 * @file
 * Write-ahead update journal (docs/persistence.md).
 *
 * Every announce/withdraw is appended — and fsync'd on a configurable
 * batch boundary — *before* the engine mutates, so a crash at any
 * instant loses at most the updates the sync policy admits losing.
 * After the engine applies an update, a second record carries its
 * structured UpdateOutcome; on recovery that record doubles as the
 * commit marker ("this update was fully applied before the crash").
 *
 * On-disk layout:
 *
 *     header  := magic "CHJ1" | u32 version | u64 config fingerprint
 *                | u32 CRC(previous fields)
 *     record  := u32 payload length | u32 CRC(payload) | payload
 *     payload := u8 type | u64 seq | type-specific fields
 *
 * The reader walks records until the first length/CRC violation and
 * discards everything from there on (torn-tail rule): a crash mid
 * append can only ever damage the final record, so the prefix that
 * passes CRC is exactly the prefix that was durable.
 */

#ifndef CHISEL_PERSIST_JOURNAL_HH
#define CHISEL_PERSIST_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/update_outcome.hh"
#include "route/updates.hh"

namespace chisel::persist {

/** Journal format version (bumped on any layout change). */
constexpr uint32_t kJournalVersion = 3;

/** One decoded journal record. */
struct JournalRecord
{
    enum class Type : uint8_t
    {
        Update = 1,        ///< An update, logged before it was applied.
        Outcome = 2,       ///< Commit marker: the update's outcome.
        SnapshotMark = 3,  ///< A snapshot covering seqs <= seq exists.
        Housekeeping = 4,  ///< A maintenance operation (e.g. purge).
        ResizeMark = 5,    ///< A live resize republished the engine
                           ///  under the embedded (grown) config.
    };

    /** What a Housekeeping record did to the engine. */
    enum class HousekeepingKind : uint8_t
    {
        PurgeDirty = 1,  ///< ChiselEngine::purgeDirty() was run.
    };

    Type type = Type::Update;

    /** Update sequence number (monotonic, assigned by the writer). */
    uint64_t seq = 0;

    /** Type::Update payload. */
    Update update;

    /** Type::Outcome payload (a flattened UpdateOutcome). */
    uint8_t cls = 0;
    uint8_t status = 0;
    uint32_t setupRetries = 0;
    uint32_t tcamOverflows = 0;
    uint32_t slowPathInserts = 0;
    uint32_t slowPathRejections = 0;
    uint32_t parityRecoveries = 0;

    /** Type::Housekeeping payload. */
    HousekeepingKind housekeeping = HousekeepingKind::PurgeDirty;

    /**
     * Type::ResizeMark payload: the full configuration the engine was
     * republished under.  Replay rebuilds its engine with this config
     * at the mark's stream position, so state after the mark (and any
     * snapshot fingerprinted with it) stays meaningful.
     */
    ChiselConfig resizeConfig;
};

/** Result of scanning a journal file or buffer. */
struct JournalScan
{
    /** False if the header is missing/corrupt/mismatched. */
    bool headerOk = false;

    /** Why headerOk is false; empty otherwise. */
    std::string error;

    /** Config fingerprint stamped in the header. */
    uint64_t fingerprint = 0;

    /** Every record up to the first invalid one. */
    std::vector<JournalRecord> records;

    /** Bytes of the file that form the valid prefix. */
    size_t validBytes = 0;

    /** True if bytes past validBytes were discarded (torn tail). */
    bool truncatedTail = false;

    /** Highest Update-record seq in the valid prefix (0 if none). */
    uint64_t lastSeq = 0;

    /** Highest seq with an Outcome (commit) record (0 if none). */
    uint64_t lastCommittedSeq = 0;

    /** Highest SnapshotMark seq (0 if none). */
    uint64_t lastSnapshotSeq = 0;
};

/**
 * Append-side of the journal.  Not copyable; movable.
 *
 * I/O errors throw ChiselError (they mean the durability contract is
 * already broken); format problems on open are reported through
 * scanJournal, which open() runs first to find the valid prefix.
 */
class UpdateJournal
{
  public:
    /**
     * Open @p path for appending, creating it (with a header) if
     * absent or empty.  An existing journal is scanned: its header
     * must carry @p config_fingerprint, and a torn tail is truncated
     * away so appends continue from the last valid record.
     *
     * @param fsync_every fsync after every Nth record (1 = every
     *        record, the strict default; 0 = never, trusting the OS).
     */
    UpdateJournal(const std::string &path, uint64_t config_fingerprint,
                  size_t fsync_every = 1);

    ~UpdateJournal();

    UpdateJournal(const UpdateJournal &) = delete;
    UpdateJournal &operator=(const UpdateJournal &) = delete;

    /**
     * Log an update *before* applying it.  @return the sequence
     * number assigned (monotonic from the scan's lastSeq + 1), or 0
     * if the record could NOT be durably logged (a write/fsync
     * failure, e.g. ENOSPC).  A zero return means the caller must
     * not acknowledge or apply the update: the durable history ends
     * at lastSeq(), and the journal refuses all further appends
     * (ioHealthy() turns false) so the failure is structural, not
     * silent (docs/persistence.md).
     */
    uint64_t append(const Update &update);

    /** Log the outcome of applied seq @p seq (the commit marker). */
    void appendOutcome(uint64_t seq, const UpdateOutcome &outcome);

    /** Record that a snapshot covering seqs <= @p seq was written. */
    void appendSnapshotMark(uint64_t seq);

    /**
     * Record a maintenance operation (e.g. a purgeDirty() sweep) that
     * mutates engine state outside the announce/withdraw stream.  The
     * record is stamped with the current lastSeq and does *not*
     * consume an update sequence number: replay re-runs it in stream
     * order between the surrounding updates.
     */
    void appendHousekeeping(JournalRecord::HousekeepingKind kind);

    /**
     * Record a live resize: the engine was republished under
     * @p config.  Stamped with the current lastSeq like housekeeping
     * records — replay re-runs the rebuild at the same stream
     * position between the surrounding updates.
     */
    void appendResizeMark(const ChiselConfig &config);

    /** Force an fsync now regardless of the batch policy. */
    void sync();

    /**
     * Make sure every record up to @p seq is fsync-covered before
     * acknowledging it: a no-op when lastDurableSeq() already covers
     * @p seq, one sync() otherwise.  @return true iff @p seq is
     * durable afterwards — false means the caller must NOT ack (the
     * sync failed, or the journal was already unhealthy).  This is
     * the ack gate of the RPC service (docs/service.md): under a
     * batched fsync policy it narrows the acked-but-lost window to
     * exactly zero without forcing fsync_every = 1 on the whole
     * stream.
     */
    bool ensureDurable(uint64_t seq);

    /**
     * False once any write/fsync has failed: the journal can no
     * longer uphold its durability contract, every later append is
     * refused, and the owner must stop acknowledging updates
     * (surface the condition as a Degraded outcome upstream).
     */
    bool ioHealthy() const { return !ioFailed_; }

    /** Write/fsync failures observed (the journal_io_errors counter). */
    uint64_t ioErrors() const { return ioErrors_; }

    /** Human-readable description of the first I/O failure. */
    const std::string &ioError() const { return ioError_; }

    /** Records appended by this writer (not counting preexisting). */
    uint64_t recordsWritten() const { return written_; }

    /** Sequence number of the last appended/preexisting update. */
    uint64_t lastSeq() const { return seq_; }

    /**
     * Highest update seq covered by a successful fsync.  Equal to
     * lastSeq() under the strict policy (fsync_every = 1); with a
     * batched policy, seqs in (lastDurableSeq(), lastSeq()] have been
     * written and flushed but not yet synced — if the batch fsync
     * then fails, exactly those seqs were acknowledged without being
     * durable, and recordIoError reports that window so owners can
     * un-ack or alert on the exposure.
     */
    uint64_t lastDurableSeq() const { return durableSeq_; }

    const std::string &path() const { return path_; }

  private:
    /**
     * @return false iff the record was refused by an I/O failure.
     * @p seq_after is the journal head once this record is durable
     * (the record's own seq for updates, the current head otherwise);
     * a batch-boundary fsync inside the write advances the durable
     * head to exactly that.
     */
    bool writeRecord(const std::vector<uint8_t> &payload,
                     uint64_t seq_after);

    /** sync() targeting @p head as the durable seq on success. */
    void syncTo(uint64_t head);

    /** Latch an I/O failure: count, flight-record, refuse appends. */
    void recordIoError(const std::string &what);

    std::string path_;
    FILE *file_ = nullptr;
    size_t fsyncEvery_;
    size_t sinceSync_ = 0;
    uint64_t seq_ = 0;
    uint64_t durableSeq_ = 0;
    uint64_t written_ = 0;
    /**
     * JournalTornWrite fired: the current record was half-written and
     * the "process" is considered dead — swallow all later appends.
     */
    bool torn_ = false;

    /** A write/fsync failed; the durability contract is void. */
    bool ioFailed_ = false;
    uint64_t ioErrors_ = 0;
    std::string ioError_;
};

/**
 * Encode one journal record payload (the bytes a journal frame's CRC
 * covers).  Shared with the replication layer (src/replica/), which
 * ships the exact same payloads over a byte stream so the follower
 * replays what the disk would have replayed.
 */
std::vector<uint8_t> encodeJournalRecord(const JournalRecord &rec);

/**
 * Decode one journal record payload; throws DecodeError on malformed
 * bytes (the replication receiver treats that as a corrupt shipment
 * and drops the connection).
 */
JournalRecord decodeJournalRecord(const uint8_t *data, size_t size);

/**
 * Scan a journal file.  Never throws on malformed content — a corrupt
 * journal is an expected recovery input, reported via the scan result.
 * @p expect_fingerprint 0 accepts any fingerprint.
 */
JournalScan scanJournal(const std::string &path,
                        uint64_t expect_fingerprint);

/** scanJournal over an in-memory image (tests, fuzzing). */
JournalScan scanJournalBuffer(const uint8_t *data, size_t size,
                              uint64_t expect_fingerprint);

} // namespace chisel::persist

#endif // CHISEL_PERSIST_JOURNAL_HH
