#include "persist/codec.hh"

#include <array>

namespace chisel::persist {

namespace {

/** The reflected CRC-32 table, computed once at first use. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const auto &table = crcTable();
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace chisel::persist
