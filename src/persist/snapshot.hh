/**
 * @file
 * CRC-checked engine snapshots (docs/persistence.md).
 *
 * A snapshot is a single binary image of the complete engine — every
 * sub-cell's Index/Filter/Bit-vector tables, the shared Result Table,
 * hash seeds, spill TCAM, slow-path map, dirty bits and counters — so
 * a restart is loadSnapshot() + journal-tail replay, with zero full
 * Bloomier setups.
 *
 * On-disk layout:
 *
 *     u32 magic "CHS1" | u32 version | u64 payload length
 *     | u32 CRC(payload) | payload
 *     payload := config | u64 lastSeq | engine state
 *
 * The config leads the payload so a snapshot written under a
 * different geometry is rejected *before* any deep decoding begins.
 *
 * Writes are atomic: the image goes to "<path>.tmp", is fsync'd, and
 * renamed over <path>; the previous snapshot is first rotated to
 * "<path>.prev" so the recovery ladder always has a fallback if the
 * fresh image turns out corrupt.
 */

#ifndef CHISEL_PERSIST_SNAPSHOT_HH
#define CHISEL_PERSIST_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.hh"

namespace chisel::persist {

/** Snapshot format version (bumped on any layout change). */
constexpr uint32_t kSnapshotVersion = 3;

/** Suffix of the rotated previous snapshot. */
std::string previousSnapshotPath(const std::string &path);

/**
 * Serialize @p engine as a complete snapshot image (header + CRC'd
 * payload) in memory — the exact bytes saveSnapshot would write.
 * Shared with the replication layer (src/replica/), which ships
 * images over the wire instead of through the filesystem.
 *
 * @param last_seq The journal sequence number the image covers.
 */
std::vector<uint8_t> encodeSnapshotImage(const ChiselEngine &engine,
                                         uint64_t last_seq);

/**
 * Write an atomic snapshot of @p engine to @p path, rotating any
 * existing snapshot to previousSnapshotPath(path) first.
 *
 * @param last_seq The journal sequence number the image covers: a
 *        recovery replays only records with seq > last_seq.
 * @return Bytes written.  Throws ChiselError on I/O failure.
 */
size_t saveSnapshot(const std::string &path, const ChiselEngine &engine,
                    uint64_t last_seq);

/** Why a snapshot load concluded as it did. */
enum class SnapshotLoadStatus
{
    Ok,               ///< Engine restored.
    Missing,          ///< File absent/unreadable.
    Corrupt,          ///< Bad magic, CRC, or malformed payload.
    VersionMismatch,  ///< Written by a different format version.
    ConfigMismatch,   ///< Written under a different ChiselConfig.
};

const char *snapshotLoadStatusName(SnapshotLoadStatus s);

/** Result of loadSnapshot(). */
struct SnapshotLoadResult
{
    SnapshotLoadStatus status = SnapshotLoadStatus::Missing;

    /** Diagnostic detail for any non-Ok status. */
    std::string error;

    /** Journal seq the image covers (valid when status == Ok). */
    uint64_t lastSeq = 0;

    /** The restored engine (non-null iff status == Ok). */
    std::unique_ptr<ChiselEngine> engine;
};

/**
 * Load a snapshot.  Never throws on malformed content — corrupt
 * images are an expected recovery input, reported via the status.
 *
 * @param expect When non-null, the config the caller is running
 *        under; a snapshot written under any other config is refused
 *        with ConfigMismatch.  When null, the embedded config is
 *        accepted as-is.
 * @param allow_elastic Accept an embedded config that differs from
 *        @p expect only in elastic capacity fields (core/resize.hh):
 *        a snapshot written after a live resize is still the same
 *        geometry, so a caller booting with the pre-resize config may
 *        adopt it.  The restored engine carries the embedded config —
 *        callers adopt it via engine->config().
 */
SnapshotLoadResult loadSnapshot(const std::string &path,
                                const ChiselConfig *expect,
                                bool allow_elastic = false);

/**
 * loadSnapshot over an in-memory image (tests, fuzzing).
 *
 * @param enforce_crc The fuzz target disables the CRC gate so inputs
 *        reach the structural decoder, which must then be memory-safe
 *        on arbitrary bytes.
 */
SnapshotLoadResult loadSnapshotBuffer(const uint8_t *data, size_t size,
                                      const ChiselConfig *expect,
                                      bool enforce_crc = true,
                                      bool allow_elastic = false);

} // namespace chisel::persist

#endif // CHISEL_PERSIST_SNAPSHOT_HH
