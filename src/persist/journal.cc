#include "persist/journal.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "persist/codec.hh"
#include "telemetry/flight.hh"

namespace chisel::persist {

namespace {

constexpr uint32_t kJournalMagic = 0x314A4843;   // "CHJ1"
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;   // magic ver fp crc
constexpr size_t kRecordHeaderBytes = 4 + 4;     // length crc

std::vector<uint8_t>
encodeHeader(uint64_t fingerprint)
{
    Encoder enc;
    enc.u32(kJournalMagic);
    enc.u32(kJournalVersion);
    enc.u64(fingerprint);
    enc.u32(crc32(enc.buffer().data(), enc.size()));
    return enc.buffer();
}

} // anonymous namespace

std::vector<uint8_t>
encodeJournalRecord(const JournalRecord &rec)
{
    Encoder enc;
    enc.u8(static_cast<uint8_t>(rec.type));
    enc.u64(rec.seq);
    switch (rec.type) {
      case JournalRecord::Type::Update:
        enc.u8(static_cast<uint8_t>(rec.update.kind));
        enc.prefix(rec.update.prefix);
        enc.u32(rec.update.nextHop);
        enc.u32(rec.update.ttlMs);
        break;
      case JournalRecord::Type::Outcome:
        enc.u8(rec.cls);
        enc.u8(rec.status);
        enc.u32(rec.setupRetries);
        enc.u32(rec.tcamOverflows);
        enc.u32(rec.slowPathInserts);
        enc.u32(rec.slowPathRejections);
        enc.u32(rec.parityRecoveries);
        break;
      case JournalRecord::Type::SnapshotMark:
        break;
      case JournalRecord::Type::Housekeeping:
        enc.u8(static_cast<uint8_t>(rec.housekeeping));
        break;
      case JournalRecord::Type::ResizeMark:
        encodeConfig(enc, rec.resizeConfig);
        break;
    }
    return enc.buffer();
}

/** Decode one record payload; throws DecodeError on malformed bytes. */
JournalRecord
decodeJournalRecord(const uint8_t *data, size_t size)
{
    Decoder dec(data, size);
    JournalRecord rec;
    uint8_t type = dec.u8();
    if (type < 1 || type > 5)
        throw DecodeError("journal record: unknown type");
    rec.type = static_cast<JournalRecord::Type>(type);
    rec.seq = dec.u64();
    switch (rec.type) {
      case JournalRecord::Type::Update: {
        uint8_t kind = dec.u8();
        if (kind > 2)
            throw DecodeError("journal record: bad update kind");
        rec.update.kind = static_cast<UpdateKind>(kind);
        rec.update.prefix = dec.prefix();
        rec.update.nextHop = dec.u32();
        rec.update.ttlMs = dec.u32();
        break;
      }
      case JournalRecord::Type::Outcome:
        rec.cls = dec.u8();
        rec.status = dec.u8();
        if (rec.cls >= kUpdateClassCount || rec.status > 2)
            throw DecodeError("journal record: bad outcome enums");
        rec.setupRetries = dec.u32();
        rec.tcamOverflows = dec.u32();
        rec.slowPathInserts = dec.u32();
        rec.slowPathRejections = dec.u32();
        rec.parityRecoveries = dec.u32();
        break;
      case JournalRecord::Type::SnapshotMark:
        break;
      case JournalRecord::Type::Housekeeping: {
        uint8_t kind = dec.u8();
        if (kind != 1)
            throw DecodeError("journal record: bad housekeeping kind");
        rec.housekeeping =
            static_cast<JournalRecord::HousekeepingKind>(kind);
        break;
      }
      case JournalRecord::Type::ResizeMark:
        rec.resizeConfig = decodeConfig(dec);
        break;
    }
    if (!dec.atEnd())
        throw DecodeError("journal record: trailing bytes");
    return rec;
}

JournalScan
scanJournalBuffer(const uint8_t *data, size_t size,
                  uint64_t expect_fingerprint)
{
    JournalScan scan;
    if (size < kHeaderBytes) {
        scan.error = "journal shorter than its header";
        return scan;
    }

    Decoder hdr(data, size);
    uint32_t magic = hdr.u32();
    uint32_t version = hdr.u32();
    uint64_t fingerprint = hdr.u64();
    uint32_t stored_crc = hdr.u32();
    if (magic != kJournalMagic) {
        scan.error = "journal magic mismatch";
        return scan;
    }
    if (crc32(data, kHeaderBytes - 4) != stored_crc) {
        scan.error = "journal header CRC mismatch";
        return scan;
    }
    if (version != kJournalVersion) {
        scan.error = "journal version mismatch";
        return scan;
    }
    scan.fingerprint = fingerprint;
    if (expect_fingerprint != 0 && fingerprint != expect_fingerprint) {
        scan.error = "journal written under a different config";
        return scan;
    }
    scan.headerOk = true;
    scan.validBytes = kHeaderBytes;

    size_t pos = kHeaderBytes;
    while (pos + kRecordHeaderBytes <= size) {
        Decoder rh(data + pos, kRecordHeaderBytes);
        uint32_t len = rh.u32();
        uint32_t stored = rh.u32();
        // An implausible length is corruption, not a record: stop.
        if (len == 0 || len > (1u << 20))
            break;
        if (pos + kRecordHeaderBytes + len > size)
            break;   // Partial final record (classic torn write).
        const uint8_t *payload = data + pos + kRecordHeaderBytes;
        if (crc32(payload, len) != stored)
            break;   // Bit rot or a torn write inside the payload.
        JournalRecord rec;
        try {
            rec = decodeJournalRecord(payload, len);
        } catch (const DecodeError &) {
            break;   // CRC passed but structure is nonsense: stop.
        }
        scan.records.push_back(rec);
        pos += kRecordHeaderBytes + len;
        scan.validBytes = pos;
        switch (rec.type) {
          case JournalRecord::Type::Update:
            if (rec.seq > scan.lastSeq)
                scan.lastSeq = rec.seq;
            break;
          case JournalRecord::Type::Outcome:
            if (rec.seq > scan.lastCommittedSeq)
                scan.lastCommittedSeq = rec.seq;
            break;
          case JournalRecord::Type::SnapshotMark:
            if (rec.seq > scan.lastSnapshotSeq)
                scan.lastSnapshotSeq = rec.seq;
            break;
          case JournalRecord::Type::Housekeeping:
          case JournalRecord::Type::ResizeMark:
            break;
        }
    }
    scan.truncatedTail = scan.validBytes < size;
    return scan;
}

JournalScan
scanJournal(const std::string &path, uint64_t expect_fingerprint)
{
    JournalScan scan;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        scan.error = "cannot open journal: " +
                     std::string(std::strerror(errno));
        return scan;
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    std::fclose(f);
    return scanJournalBuffer(bytes.data(), bytes.size(),
                             expect_fingerprint);
}

UpdateJournal::UpdateJournal(const std::string &path,
                             uint64_t config_fingerprint,
                             size_t fsync_every)
    : path_(path), fsyncEvery_(fsync_every)
{
    // Scan whatever is there: continue a valid journal, refuse a
    // foreign one, and truncate a torn tail before appending.
    JournalScan scan = scanJournal(path, config_fingerprint);
    bool fresh = !scan.headerOk && scan.error.rfind("cannot open", 0) == 0;
    if (!scan.headerOk && !fresh) {
        // Present but unusable (empty counts as "shorter than
        // header"): start over rather than append garbage to garbage.
        if (scan.error != "journal shorter than its header")
            fatalError("refusing to append to journal '" + path +
                       "': " + scan.error);
        fresh = true;
    }

    if (fresh) {
        file_ = std::fopen(path.c_str(), "wb");
        if (file_ == nullptr)
            fatalError("cannot create journal '" + path + "': " +
                       std::strerror(errno));
        std::vector<uint8_t> header = encodeHeader(config_fingerprint);
        if (std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size())
            fatalError("journal header write failed");
        sync();
    } else {
        if (scan.truncatedTail) {
            if (::truncate(path.c_str(),
                           static_cast<off_t>(scan.validBytes)) != 0)
                fatalError("cannot truncate torn journal tail: " +
                           std::string(std::strerror(errno)));
        }
        file_ = std::fopen(path.c_str(), "ab");
        if (file_ == nullptr)
            fatalError("cannot open journal '" + path + "': " +
                       std::strerror(errno));
        seq_ = scan.lastSeq;
        durableSeq_ = scan.lastSeq;  // The scanned prefix is on disk.
    }
}

UpdateJournal::~UpdateJournal()
{
    if (file_ != nullptr) {
        std::fflush(file_);
        std::fclose(file_);
    }
}

void
UpdateJournal::recordIoError(const std::string &what)
{
    // The durability contract is broken: latch the failure, count it,
    // leave a flight record, and refuse every later append so the
    // owner is forced to stop acknowledging (docs/persistence.md).
    // Deliberately NOT fatal: the serving path keeps running; only
    // the acknowledgement path degrades.
    ++ioErrors_;
    if (!ioFailed_) {
        ioFailed_ = true;
        ioError_ = what;
        if (seq_ > durableSeq_) {
            // Batched-fsync exposure: these seqs were acknowledged
            // (written + flushed) but never reached a successful
            // fsync, so the owner must treat them as possibly lost.
            ioError_ += "; seqs " + std::to_string(durableSeq_ + 1) +
                        ".." + std::to_string(seq_) +
                        " were acknowledged but may not be durable";
        }
        error("journal '" + path_ + "' degraded: " + ioError_);
    }
    CHISEL_FLIGHT_EVENT(JournalIoError, 0, seq_, ioErrors_);
}

bool
UpdateJournal::writeRecord(const std::vector<uint8_t> &payload,
                           uint64_t seq_after)
{
    if (torn_)
        return true;   // "Crashed" by a previous torn write.
    if (ioFailed_)
        return false;  // Durability already void; refuse loudly.

    Encoder framed;
    framed.u32(static_cast<uint32_t>(payload.size()));
    framed.u32(crc32(payload.data(), payload.size()));
    framed.bytes(payload.data(), payload.size());
    const std::vector<uint8_t> &bytes = framed.buffer();

    if (CHISEL_FAULT_FIRE(JournalTornWrite)) {
        // Crash mid-append: a leading fragment reaches the disk, the
        // rest never does, and neither does anything after it.
        size_t fragment = bytes.size() / 2;
        if (fragment == 0)
            fragment = 1;
        std::fwrite(bytes.data(), 1, fragment, file_);
        std::fflush(file_);
        torn_ = true;
        return true;
    }

    if (CHISEL_FAULT_FIRE(JournalIoError)) {
        // The modelled ENOSPC: the write is refused before any byte
        // lands, so the on-disk prefix stays exactly the acked set.
        recordIoError("injected write failure (ENOSPC model)");
        return false;
    }

    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) !=
        bytes.size()) {
        recordIoError("append failed: " +
                      std::string(std::strerror(errno)));
        return false;
    }
    ++written_;
    ++sinceSync_;
    if (fsyncEvery_ != 0 && sinceSync_ >= fsyncEvery_)
        syncTo(seq_after);
    else if (std::fflush(file_) != 0) {
        recordIoError("flush failed: " +
                      std::string(std::strerror(errno)));
        return false;
    }
    return !ioFailed_;
}

uint64_t
UpdateJournal::append(const Update &update)
{
    JournalRecord rec;
    rec.type = JournalRecord::Type::Update;
    rec.seq = seq_ + 1;
    rec.update = update;
    if (!writeRecord(encodeJournalRecord(rec), rec.seq))
        return 0;   // Not durable: the caller must not acknowledge.
    seq_ = rec.seq;
    CHISEL_FLIGHT_EVENT(JournalAppend, rec.type, rec.seq, 0);
    return rec.seq;
}

void
UpdateJournal::appendOutcome(uint64_t seq, const UpdateOutcome &outcome)
{
    JournalRecord rec;
    rec.type = JournalRecord::Type::Outcome;
    rec.seq = seq;
    rec.cls = static_cast<uint8_t>(outcome.cls);
    rec.status = static_cast<uint8_t>(outcome.status);
    rec.setupRetries = outcome.setupRetries;
    rec.tcamOverflows = outcome.tcamOverflows;
    rec.slowPathInserts = outcome.slowPathInserts;
    rec.slowPathRejections = outcome.slowPathRejections;
    rec.parityRecoveries = outcome.parityRecoveries;
    if (writeRecord(encodeJournalRecord(rec), seq_))
        CHISEL_FLIGHT_EVENT(JournalAppend, rec.type, rec.seq, 0);
}

void
UpdateJournal::appendSnapshotMark(uint64_t seq)
{
    JournalRecord rec;
    rec.type = JournalRecord::Type::SnapshotMark;
    rec.seq = seq;
    if (writeRecord(encodeJournalRecord(rec), seq_))
        CHISEL_FLIGHT_EVENT(JournalAppend, rec.type, rec.seq, 0);
}

void
UpdateJournal::appendHousekeeping(JournalRecord::HousekeepingKind kind)
{
    JournalRecord rec;
    rec.type = JournalRecord::Type::Housekeeping;
    rec.seq = seq_;   // Stamped, not consumed: updates keep their seqs.
    rec.housekeeping = kind;
    if (writeRecord(encodeJournalRecord(rec), seq_))
        CHISEL_FLIGHT_EVENT(JournalAppend, rec.type, rec.seq, 0);
}

void
UpdateJournal::appendResizeMark(const ChiselConfig &config)
{
    JournalRecord rec;
    rec.type = JournalRecord::Type::ResizeMark;
    rec.seq = seq_;   // Stamped, not consumed, like housekeeping.
    rec.resizeConfig = config;
    if (writeRecord(encodeJournalRecord(rec), seq_))
        CHISEL_FLIGHT_EVENT(JournalAppend, rec.type, rec.seq, 0);
}

void
UpdateJournal::sync()
{
    syncTo(seq_);
}

bool
UpdateJournal::ensureDurable(uint64_t seq)
{
    if (torn_ || ioFailed_)
        return false;
    if (durableSeq_ >= seq)
        return true;
    if (seq > seq_)
        return false;   // Never appended; nothing to make durable.
    syncTo(seq_);
    return !ioFailed_ && durableSeq_ >= seq;
}

void
UpdateJournal::syncTo(uint64_t head)
{
    if (torn_ || ioFailed_)
        return;
    if (CHISEL_FAULT_FIRE(JournalIoError)) {
        // The modelled batch-fsync failure: everything flushed since
        // the last successful sync was acked but is now suspect.
        recordIoError("injected fsync failure (batch-sync model)");
        return;
    }
    if (std::fflush(file_) != 0) {
        recordIoError("fflush failed: " +
                      std::string(std::strerror(errno)));
        return;
    }
    if (::fsync(fileno(file_)) != 0) {
        recordIoError("fsync failed: " +
                      std::string(std::strerror(errno)));
        return;
    }
    sinceSync_ = 0;
    durableSeq_ = head;
    CHISEL_FLIGHT_EVENT(JournalSync, 0, head, 0);
}

} // namespace chisel::persist
