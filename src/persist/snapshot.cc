#include "persist/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"
#include "core/resize.hh"
#include "fault/fault.hh"
#include "persist/codec.hh"
#include "telemetry/flight.hh"

namespace chisel::persist {

namespace {

constexpr uint32_t kSnapshotMagic = 0x31534843;   // "CHS1"
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;    // magic ver len crc

} // anonymous namespace

std::string
previousSnapshotPath(const std::string &path)
{
    return path + ".prev";
}

const char *
snapshotLoadStatusName(SnapshotLoadStatus s)
{
    switch (s) {
      case SnapshotLoadStatus::Ok: return "ok";
      case SnapshotLoadStatus::Missing: return "missing";
      case SnapshotLoadStatus::Corrupt: return "corrupt";
      case SnapshotLoadStatus::VersionMismatch: return "version-mismatch";
      case SnapshotLoadStatus::ConfigMismatch: return "config-mismatch";
    }
    return "?";
}

std::vector<uint8_t>
encodeSnapshotImage(const ChiselEngine &engine, uint64_t last_seq)
{
    Encoder payload;
    encodeConfig(payload, engine.config());
    payload.u64(last_seq);
    engine.saveState(payload);

    uint32_t payload_crc =
        crc32(payload.buffer().data(), payload.size());

    if (CHISEL_FAULT_FIRE(SnapshotCorrupt)) {
        // Bit rot between checksum and media: flip one payload bit
        // after the CRC was computed, so the image on disk fails its
        // own check.  Target drawn deterministically from the
        // injector so a failing scenario replays from its seed.
        fault::FaultInjector *inj = fault::activeInjector();
        uint64_t bit = inj->draw(payload.size() * 8);
        payload.buffer()[bit / 8] ^=
            static_cast<uint8_t>(1u << (bit % 8));
    }

    Encoder image;
    image.u32(kSnapshotMagic);
    image.u32(kSnapshotVersion);
    image.u64(payload.size());
    image.u32(payload_crc);
    image.bytes(payload.buffer().data(), payload.size());
    return std::move(image.buffer());
}

size_t
saveSnapshot(const std::string &path, const ChiselEngine &engine,
             uint64_t last_seq)
{
    Encoder image;
    image.buffer() = encodeSnapshotImage(engine, last_seq);

    // Atomic install: tmp + fsync + rename, with the old image
    // rotated aside first so recovery can fall back to it.
    std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        fatalError("cannot create snapshot '" + tmp + "': " +
                   std::strerror(errno));
    bool wrote = std::fwrite(image.buffer().data(), 1, image.size(),
                             f) == image.size();
    wrote = std::fflush(f) == 0 && wrote;
    wrote = ::fsync(fileno(f)) == 0 && wrote;
    std::fclose(f);
    if (!wrote) {
        std::remove(tmp.c_str());
        fatalError("snapshot write failed: " +
                   std::string(std::strerror(errno)));
    }

    // Rotation failure (no previous snapshot) is the common case.
    std::rename(path.c_str(), previousSnapshotPath(path).c_str());

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatalError("snapshot rename failed: " +
                   std::string(std::strerror(errno)));
    }
    CHISEL_FLIGHT_EVENT(SnapshotSave, 0, last_seq, image.size());
    return image.size();
}

SnapshotLoadResult
loadSnapshotBuffer(const uint8_t *data, size_t size,
                   const ChiselConfig *expect, bool enforce_crc,
                   bool allow_elastic)
{
    SnapshotLoadResult result;
    if (size < kHeaderBytes) {
        result.status = SnapshotLoadStatus::Corrupt;
        result.error = "snapshot shorter than its header";
        return result;
    }

    Decoder hdr(data, size);
    uint32_t magic = hdr.u32();
    uint32_t version = hdr.u32();
    uint64_t payload_len = hdr.u64();
    uint32_t stored_crc = hdr.u32();

    if (magic != kSnapshotMagic) {
        result.status = SnapshotLoadStatus::Corrupt;
        result.error = "snapshot magic mismatch";
        return result;
    }
    if (version != kSnapshotVersion) {
        result.status = SnapshotLoadStatus::VersionMismatch;
        result.error = "snapshot version " + std::to_string(version) +
                       " (expected " +
                       std::to_string(kSnapshotVersion) + ")";
        return result;
    }
    if (payload_len != size - kHeaderBytes) {
        result.status = SnapshotLoadStatus::Corrupt;
        result.error = "snapshot payload length mismatch";
        return result;
    }
    const uint8_t *payload = data + kHeaderBytes;
    if (enforce_crc && crc32(payload, payload_len) != stored_crc) {
        result.status = SnapshotLoadStatus::Corrupt;
        result.error = "snapshot payload CRC mismatch";
        return result;
    }

    try {
        Decoder dec(payload, payload_len);
        // Config first: geometry mismatch is decided before a single
        // table byte is decoded.
        ChiselConfig embedded = decodeConfig(dec);
        bool accepted =
            expect == nullptr || embedded == *expect ||
            (allow_elastic && elasticCompatible(embedded, *expect));
        if (!accepted) {
            result.status = SnapshotLoadStatus::ConfigMismatch;
            result.error =
                "snapshot written under a different config";
            return result;
        }
        result.lastSeq = dec.u64();
        result.engine = ChiselEngine::restoreState(embedded, dec);
        if (!dec.atEnd())
            throw DecodeError("snapshot has trailing bytes");
    } catch (const DecodeError &e) {
        result.status = SnapshotLoadStatus::Corrupt;
        result.error = e.what();
        result.engine.reset();
        return result;
    }

    result.status = SnapshotLoadStatus::Ok;
    return result;
}

SnapshotLoadResult
loadSnapshot(const std::string &path, const ChiselConfig *expect,
             bool allow_elastic)
{
    SnapshotLoadResult result;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        result.status = SnapshotLoadStatus::Missing;
        result.error = "cannot open snapshot '" + path + "': " +
                       std::strerror(errno);
        CHISEL_FLIGHT_EVENT(SnapshotLoad, result.status, 0, 0);
        return result;
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    std::fclose(f);
    result = loadSnapshotBuffer(bytes.data(), bytes.size(), expect,
                                true, allow_elastic);
    CHISEL_FLIGHT_EVENT(SnapshotLoad, result.status, result.lastSeq, 0);
    return result;
}

} // namespace chisel::persist
