/**
 * @file
 * Binary codec for the persistence layer (docs/persistence.md).
 *
 * Every on-disk artifact — journal records and engine snapshots — is
 * produced by an Encoder and consumed by a Decoder.  The format is
 * deliberately dumb: fixed-width little-endian integers, no varints,
 * no alignment, no back-references.  Dumb formats are the ones that
 * survive fuzzing: every read is bounds-checked and every failure is
 * a typed DecodeError, never undefined behaviour, because the
 * snapshot/journal readers must stay memory-safe even on inputs whose
 * CRC protection has been stripped (the libFuzzer target feeds them
 * exactly that).
 *
 * Element counts read from untrusted bytes are validated against the
 * bytes actually remaining (checkCount) before any container is
 * sized, so a corrupt length prefix cannot trigger a multi-gigabyte
 * allocation.
 */

#ifndef CHISEL_PERSIST_CODEC_HH
#define CHISEL_PERSIST_CODEC_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/key128.hh"
#include "route/prefix.hh"

namespace chisel::persist {

/**
 * Thrown by Decoder on any malformed input: truncation, an
 * out-of-range count, or a value that violates a structural
 * invariant of the field being decoded.  Callers of the persistence
 * readers treat it as "this artifact is corrupt" and move down the
 * recovery ladder; it never indicates a library bug.
 */
class DecodeError : public std::runtime_error
{
  public:
    explicit DecodeError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over @p len
 * bytes of @p data.  @p seed chains multi-buffer computations: pass
 * the previous return value to continue a running checksum.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/**
 * Append-only byte-buffer writer.  All integers are little-endian.
 */
class Encoder
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    void
    key(const Key128 &k)
    {
        u64(k.hi());
        u64(k.lo());
    }

    /** A Prefix: its defined bits plus one length byte. */
    void
    prefix(const Prefix &p)
    {
        key(p.bits());
        u8(static_cast<uint8_t>(p.length()));
    }

    void
    bytes(const void *data, size_t len)
    {
        const uint8_t *b = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), b, b + len);
    }

    const std::vector<uint8_t> &buffer() const { return buf_; }
    std::vector<uint8_t> &buffer() { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked reader over a borrowed byte span.  Throws
 * DecodeError instead of ever reading past the end.
 */
class Decoder
{
  public:
    Decoder(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit Decoder(const std::vector<uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {}

    uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    bool
    boolean()
    {
        uint8_t v = u8();
        if (v > 1)
            throw DecodeError("boolean field not 0/1");
        return v != 0;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    Key128
    key()
    {
        uint64_t hi = u64();
        uint64_t lo = u64();
        return Key128(hi, lo);
    }

    Prefix
    prefix()
    {
        Key128 bits = key();
        unsigned len = u8();
        if (len > Key128::maxBits)
            throw DecodeError("prefix length out of range");
        // Prefix() masks trailing bits; require them already zero so
        // re-encoding a decoded artifact is byte-identical.
        Prefix p(bits, len);
        if (p.bits() != bits)
            throw DecodeError("prefix has bits beyond its length");
        return p;
    }

    /**
     * Read an element count and require that @p min_bytes_each *
     * count bytes can still follow — the cheap structural check that
     * keeps corrupt length prefixes from driving allocations.
     */
    uint64_t
    count(uint64_t min_bytes_each = 1)
    {
        uint64_t n = u64();
        if (min_bytes_each == 0)
            min_bytes_each = 1;
        if (n > remaining() / min_bytes_each)
            throw DecodeError("element count exceeds remaining bytes");
        return n;
    }

    void
    need(size_t n) const
    {
        if (n > size_ - pos_)
            throw DecodeError("truncated input");
    }

    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }
    size_t position() const { return pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace chisel::persist

#endif // CHISEL_PERSIST_CODEC_HH
