#include "core/ttl.hh"

#include "persist/codec.hh"

namespace chisel {

void
TtlIndex::arm(const Prefix &prefix, uint64_t deadline_ms)
{
    deadlines_[prefix] = deadline_ms;
}

void
TtlIndex::disarm(const Prefix &prefix)
{
    deadlines_.erase(prefix);
}

bool
TtlIndex::armed(const Prefix &prefix) const
{
    return deadlines_.find(prefix) != deadlines_.end();
}

uint64_t
TtlIndex::deadline(const Prefix &prefix) const
{
    auto it = deadlines_.find(prefix);
    return it == deadlines_.end() ? 0 : it->second;
}

size_t
TtlIndex::collectExpired(uint64_t now_ms, size_t max,
                         std::vector<Prefix> &out) const
{
    size_t n = 0;
    for (const auto &[prefix, deadline] : deadlines_) {
        if (n >= max)
            break;
        if (deadline <= now_ms) {
            out.push_back(prefix);
            ++n;
        }
    }
    return n;
}

void
TtlIndex::saveState(persist::Encoder &enc) const
{
    enc.u64(deadlines_.size());
    for (const auto &[prefix, deadline] : deadlines_) {
        enc.prefix(prefix);
        enc.u64(deadline);
    }
}

void
TtlIndex::loadState(persist::Decoder &dec)
{
    deadlines_.clear();
    // prefix (17 bytes) + u64 deadline per entry.
    uint64_t n = dec.count(25);
    deadlines_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        Prefix p = dec.prefix();
        uint64_t deadline = dec.u64();
        deadlines_[p] = deadline;
    }
}

} // namespace chisel
