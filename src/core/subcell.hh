/**
 * @file
 * Chisel sub-cell: one collapsed-length lookup engine (Figure 6).
 *
 * A sub-cell serves the prefixes whose lengths fall in one interval
 * [base, top] of the collapse plan.  It owns:
 *
 *  - an Index Table (BloomierFilter) keyed by collapsed prefixes,
 *    whose encoded codes are Filter/Bit-vector slot indices;
 *  - a Filter Table holding the collapsed prefixes themselves, which
 *    eliminates false positives and carries the dirty bits;
 *  - a Bit-vector Table holding each group's 2^stride suffix bits
 *    and Result Table pointer;
 *  - the shadow state (per-group member sets) that drives updates.
 *
 * The Result Table is shared across sub-cells and passed in by the
 * engine.  A lookup makes exactly four table accesses: Index, Filter,
 * Bit-vector, Result — independent of key width.
 */

#ifndef CHISEL_CORE_SUBCELL_HH
#define CHISEL_CORE_SUBCELL_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bloom/bloomier.hh"
#include "concurrent/relaxed.hh"
#include "core/bitvector_table.hh"
#include "core/collapse.hh"
#include "core/filter_table.hh"
#include "core/result_table.hh"
#include "core/shadow.hh"
#include "health/damping.hh"
#include "route/table.hh"

namespace chisel {

namespace fault { class FaultInjector; }
namespace persist { class Encoder; class Decoder; }

/**
 * How an update was applied — the categories of Figure 14.
 */
enum class UpdateClass : uint8_t
{
    Withdraw,        ///< withdraw(p, l).
    RouteFlap,       ///< Announce restoring a recently withdrawn prefix.
    NextHopChange,   ///< Announce of an already-present prefix.
    AddCollapsed,    ///< New prefix landing on an existing group
                     ///  ("Add PC": bit-vector update only).
    SingletonInsert, ///< New group encoded via a singleton slot, O(1).
    Resetup,         ///< New group forcing a partition re-setup.
    Spill,           ///< Handled by the spillover TCAM.
    NoOp,            ///< Withdraw of an absent prefix, etc.
    Expire,          ///< TTL garbage collection retired the prefix.
};

/** Number of UpdateClass values (sizes stats/telemetry arrays). */
constexpr size_t kUpdateClassCount = 9;

/** Human-readable category name. */
const char *updateClassName(UpdateClass c);

/**
 * One sub-cell of the Chisel LPM engine.
 */
class SubCell
{
  public:
    /** Construction parameters. */
    struct Config
    {
        CellRange range;         ///< Lengths served: [base, top].
        unsigned stride = 4;     ///< Global collapse stride.
        size_t capacity = 1024;  ///< Groups provisioned.
        unsigned keyWidth = 32;  ///< For storage accounting.
        unsigned k = 3;
        double ratio = 3.0;
        unsigned partitions = 1;
        unsigned resultPointerBits = 22;
        uint64_t seed = 1;
        /**
         * Bounded-retry budget: when an Index setup cannot place
         * every key, retry with fresh hash seeds up to this many
         * times before evicting the stragglers to the spillover
         * path.
         */
        unsigned setupRetries = 3;
        /**
         * Retain emptied groups dirty for flap restoration
         * (Section 4.4.1).  Disabled only by the ablation that
         * quantifies what the dirty bit buys.
         */
        bool retainDirtyGroups = true;
        /**
         * Retention budget for dirty groups (0 = unbounded, the
         * paper's behaviour).  When a withdraw would push dirtyCount()
         * past the budget, the dirty group with the lowest decayed
         * flap penalty is evicted — decay-ordered, so hot flappers
         * keep their cheap-restore slots (docs/robustness.md).
         */
        size_t dirtyBudget = 0;
        /** Flap-damping parameters feeding the eviction order. */
        health::DampingConfig damping;
    };

    /** Result of a sub-cell probe. */
    struct Hit
    {
        bool hit = false;
        NextHop nextHop = kNoRoute;
        unsigned matchedLength = 0;
    };

    SubCell(const Config &config, ResultTable *results);

    /** True if this cell serves prefixes of @p len. */
    bool
    coversLength(unsigned len) const
    {
        return config_.range.covers(len);
    }

    /**
     * Bulk-load routes (all with covered lengths).  Routes whose
     * groups could not be placed are appended to @p displaced for
     * the engine's spillover TCAM.
     */
    void buildFrom(const std::vector<Route> &routes,
                   std::vector<Route> &displaced);

    /**
     * Probe the cell: the hardware four-access lookup sequence.
     */
    Hit lookup(const Key128 &key) const;

    /**
     * Announce a prefix with a covered length.  Groups displaced by
     * a Bloomier rebuild (or by capacity exhaustion) are dismantled
     * and their member routes appended to @p displaced.
     */
    UpdateClass announce(const Prefix &prefix, NextHop next_hop,
                         std::vector<Route> &displaced);

    /** Withdraw a prefix.  @return NoOp if it was not present. */
    UpdateClass withdraw(const Prefix &prefix);

    /** Exact-prefix membership (via shadow state). */
    std::optional<NextHop> find(const Prefix &prefix) const;

    /** Append every live route (dirty groups excluded) to @p out. */
    void exportRoutes(std::vector<Route> &out) const;

    /**
     * Purge all dirty (withdrawn-but-retained) groups, freeing their
     * Index and Filter slots.  Invoked by the engine and internally
     * when the Filter free list runs dry — the paper purges on
     * resetups (Section 4.4.1).
     */
    size_t purgeDirty();

    /** Live (non-dirty) collapsed groups. */
    size_t groupCount() const { return groups_.size() - dirtyCount_; }

    /** Original prefixes stored (excludes displaced ones). */
    size_t routeCount() const { return routes_; }

    /** Number of dirty groups currently retained. */
    size_t dirtyCount() const { return dirtyCount_; }

    /** High-water mark of dirtyCount() since construction/restore. */
    size_t dirtyPeak() const { return dirtyPeak_; }

    /** The flap damper driving suppress/evict decisions (tests). */
    const health::FlapDamper &damper() const { return damper_; }

    unsigned base() const { return config_.range.base; }
    unsigned top() const { return config_.range.top; }
    size_t capacity() const { return config_.capacity; }

    /** Construction parameters (snapshots re-create cells from them). */
    const Config &cellConfig() const { return config_; }

    /** Index Table storage in bits. */
    uint64_t indexBits() const { return index_.storageBits(); }

    /** Filter Table storage in bits. */
    uint64_t filterBits() const { return filter_.storageBits(); }

    /** Bit-vector Table storage in bits. */
    uint64_t bitvectorBits() const { return bitvec_.storageBits(); }

    /** Parity overhead: one bit per Index/Filter/Bit-vector word. */
    uint64_t
    parityBits() const
    {
        return index_.slots() + 2ull * config_.capacity;
    }

    /** Bloomier operation counters. */
    const BloomierFilter::Stats &indexStats() const
    {
        return index_.stats();
    }

    /**
     * Hardware words written by updates — what the shadow copy
     * transfers to the engine (Section 4.4: "the changed bit-vectors
     * alone need to be written").  One bit-vector entry, one Result
     * Table slot, one Index slot and one Filter entry each count as
     * one word.
     */
    struct WriteCounters
    {
        uint64_t bitvectorWrites = 0;
        uint64_t resultWrites = 0;
        uint64_t filterWrites = 0;

        uint64_t
        total() const
        {
            return bitvectorWrites + resultWrites + filterWrites;
        }
    };

    const WriteCounters &writeCounters() const { return writes_; }
    void resetWriteCounters() { writes_ = WriteCounters{}; }

    /** Index slots one partition rebuild rewrites. */
    size_t
    indexPartitionSlots() const
    {
        return index_.partitionSlots();
    }

    /**
     * Robustness counters (soft errors, retries) since construction.
     * Relaxed atomics: concurrent lookups bump parityDetected from
     * any reader thread (docs/concurrency.md).
     */
    struct FaultCounters
    {
        concurrent::RelaxedU64 parityDetected;   ///< Lookups served soft.
        concurrent::RelaxedU64 parityRecoveries; ///< recoverParity() runs.
        concurrent::RelaxedU64 setupRetries;     ///< Reseed-retry attempts.
    };

    const FaultCounters &faultCounters() const { return faults_; }

    /** Overload-resilience counters (docs/robustness.md). */
    struct HealthCounters
    {
        concurrent::RelaxedU64 dirtyEvictions;  ///< Budget evictions.
        concurrent::RelaxedU64 suppressedFlaps; ///< Flaps of damped groups.
    };

    const HealthCounters &healthCounters() const { return health_; }

    /**
     * True if a lookup detected a parity error since the last
     * recovery; the engine runs recoverParity() at its next update.
     */
    bool parityPending() const { return parityPending_; }

    /**
     * Walk every parity word of this cell's Index, Filter and
     * Bit-vector images, flagging the cell for recovery if any check
     * fails — the read side of the background scrubber
     * (docs/concurrency.md).  Const: only counters and the pending
     * flag (both atomic) change.  @return parity words that failed.
     */
    size_t verifyParity() const;

    /** Parity words a verifyParity() pass checks. */
    size_t
    parityWordCount() const
    {
        return index_.slots() + 2 * config_.capacity;
    }

    /**
     * Recover-by-resetup: re-derive every hardware word (Index,
     * Filter, Bit-vector, Result block) of this cell from the shadow
     * copy, scrubbing any soft error.  Groups the retried Index
     * setup still cannot place are dismantled into @p displaced.
     */
    void recoverParity(std::vector<Route> &displaced);

    /** Soft-error injection: corrupt one random Index slot bit. */
    void corruptIndexBit(fault::FaultInjector &injector);

    /** Soft-error injection: corrupt one random Filter key bit. */
    void corruptFilterBit(fault::FaultInjector &injector);

    /** Soft-error injection: corrupt one random Bit-vector bit. */
    void corruptBitVectorBit(fault::FaultInjector &injector);

    /**
     * Deep consistency check (tests): every shadow member is
     * retrievable through the hardware lookup path.
     */
    bool selfCheck() const;

    /**
     * Serialize the full cell state: Index/Filter/Bit-vector images,
     * group map (slot, result block, shadow members, dirty flag),
     * flap history and counters.  The shared Result Table is the
     * engine's to save.  Geometry comes from Config and is validated,
     * not duplicated.
     */
    void saveState(persist::Encoder &enc) const;

    /**
     * Restore from saveState(); throws persist::DecodeError on any
     * malformed field.  The cell must be freshly constructed with the
     * same Config used at save time.
     */
    void loadState(persist::Decoder &dec);

  private:
    /** Per-group state: the filter slot plus shadow members. */
    struct Group
    {
        uint32_t slot = 0;
        ShadowGroup shadow;
        uint32_t resultBase = 0;
        uint32_t resultSize = 0;   ///< Granted block size (0 = none).

        Group(uint32_t s, unsigned base, unsigned stride)
            : slot(s), shadow(base, stride)
        {}
    };

    using GroupMap =
        std::unordered_map<Key128, Group, Key128Hasher>;

    /** Collapsed key (Key128 of the group) for a covered prefix. */
    Key128
    collapsedKey(const Prefix &prefix) const
    {
        return prefix.bits().masked(config_.range.base);
    }

    /** Re-derive and write a group's hardware image. */
    void refreshImage(const Key128 &ckey, Group &group);

    /**
     * Shadow-copy fallback for a lookup that hit a parity error:
     * correct by construction, and flags the cell for recovery.
     */
    Hit softLookup(const Key128 &key, const Key128 &ckey) const;

    /**
     * Rebuild the Index from the shadow state (slots preserved),
     * retrying with fresh hash seeds up to Config::setupRetries
     * times; groups that still cannot be placed are dismantled into
     * @p displaced.  @return groups dismantled.
     */
    size_t resetupIndex(std::vector<Route> *displaced);

    /** Dismantle a group, releasing all hardware resources. */
    void dismantleGroup(const Key128 &ckey,
                        std::vector<Route> *displaced);

    /**
     * Evict lowest-penalty dirty groups until dirtyCount() respects
     * Config::dirtyBudget (no-op when the budget is 0).
     */
    void enforceDirtyBudget();

    /** Record a withdrawal for route-flap classification. */
    void noteRemoved(const Prefix &prefix);

    Config config_;
    ResultTable *results_;
    BloomierFilter index_;
    FilterTable filter_;
    BitVectorTable bitvec_;
    GroupMap groups_;
    std::unordered_set<Prefix, PrefixHasher> recentlyRemoved_;
    size_t routes_ = 0;
    size_t dirtyCount_ = 0;
    size_t dirtyPeak_ = 0;
    health::FlapDamper damper_;
    HealthCounters health_;
    WriteCounters writes_;
    /** Mutable: lookups (const) detect soft errors and flag them. */
    mutable FaultCounters faults_;
    mutable concurrent::RelaxedFlag parityPending_;
};

} // namespace chisel

#endif // CHISEL_CORE_SUBCELL_HH
