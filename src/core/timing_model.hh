/**
 * @file
 * Lookup timing model.
 *
 * Chisel's datapath is a short pipeline: hash, Index read (k
 * segments in parallel), Filter + Bit-vector reads (parallel
 * banks), Result read.  With each table in its own eDRAM bank the
 * stages overlap across consecutive lookups, so sustained throughput
 * is set by the *slowest single access*, not the end-to-end latency
 * — that is how 4 sequential accesses of a few nanoseconds each
 * sustain 200 Msps (Section 6.5), and how the FPGA prototype's
 * 100 MHz clock yields 100 Msps once its DDR bottleneck is removed
 * (Section 7).
 */

#ifndef CHISEL_CORE_TIMING_MODEL_HH
#define CHISEL_CORE_TIMING_MODEL_HH

#include <cstddef>

#include "core/storage_model.hh"
#include "mem/tech.hh"

namespace chisel {

/** Timing parameters of the on-chip memories. */
struct TimingParams
{
    /** Random-access time of an eDRAM macro, nanoseconds. */
    double edramAccessNs = 5.0;

    /** Hash / priority-encode logic latency, nanoseconds. */
    double logicNs = 2.0;

    /** Off-chip (Result Table) access time, nanoseconds. */
    double offChipNs = 40.0;
};

/** Latency/throughput summary for one configuration. */
struct TimingReport
{
    /** On-chip pipeline latency per lookup, nanoseconds. */
    double onChipLatencyNs = 0.0;

    /** Total latency including the off-chip next-hop fetch. */
    double totalLatencyNs = 0.0;

    /** Sustained throughput, million searches per second. */
    double throughputMsps = 0.0;

    /** Pipeline stages (one per sequential memory access + logic). */
    unsigned pipelineStages = 0;
};

/**
 * Derives latency and sustained throughput for a Chisel design.
 */
class ChiselTimingModel
{
  public:
    explicit ChiselTimingModel(const TimingParams &params = {});

    /**
     * Timing for a design with the given storage parameters.  The
     * key width does not appear: the pipeline is the same for IPv4
     * and IPv6 (Section 6.4.2).
     */
    TimingReport report(const StorageParams &params) const;

    const TimingParams &params() const { return params_; }

  private:
    TimingParams params_;
};

} // namespace chisel

#endif // CHISEL_CORE_TIMING_MODEL_HH
