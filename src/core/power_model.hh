/**
 * @file
 * Chisel power model (Sections 6.5, 6.7.2; Figures 13 and 16).
 *
 * Power = eDRAM dynamic + eDRAM static + logic.  Each lookup (at the
 * configured search rate) touches, in every sub-cell: the k Index
 * Table segments, the Filter Table and the Bit-vector Table; dynamic
 * energy per access follows the macro-size model of mem/edram.hh.
 * Logic contributes a fixed fraction of the eDRAM power ("around
 * 5-7%", Section 6.5).  The calibration of the underlying constants
 * to the paper's published anchor points is described in
 * mem/tech.hh.
 */

#ifndef CHISEL_CORE_POWER_MODEL_HH
#define CHISEL_CORE_POWER_MODEL_HH

#include <cstddef>

#include "core/storage_model.hh"
#include "mem/edram.hh"
#include "mem/tech.hh"

namespace chisel {

/** Power result split by contributor. */
struct PowerBreakdown
{
    double edramDynamicWatts = 0.0;
    double edramStaticWatts = 0.0;
    double logicWatts = 0.0;

    double
    totalWatts() const
    {
        return edramDynamicWatts + edramStaticWatts + logicWatts;
    }
};

/**
 * Worst-case Chisel power at a given search rate.
 */
class ChiselPowerModel
{
  public:
    explicit ChiselPowerModel(
        const Technology &tech = Technology::nec130nm());

    /**
     * Number of sub-cells a worst-case design provisions: the key
     * width divided by the lengths one cell covers (stride + 1).
     */
    static unsigned defaultCellCount(unsigned key_width,
                                     unsigned stride);

    /**
     * Worst-case power for @p n prefixes searched at @p msps million
     * searches per second.
     */
    PowerBreakdown worstCase(size_t n, const StorageParams &params,
                             double msps) const;

    /**
     * Measured (average-case) power for a built engine: uses the
     * engine's actual per-cell table sizes and its access pattern
     * (k segment reads + Filter + Bit-vector per cell per lookup).
     */
    PowerBreakdown measured(const class ChiselEngine &engine,
                            double msps) const;

    const Technology &technology() const { return tech_; }

  private:
    Technology tech_;
    EdramModel edram_;
};

} // namespace chisel

#endif // CHISEL_CORE_POWER_MODEL_HH
