/**
 * @file
 * Software slow-path route store — the last rung of the degradation
 * ladder (docs/robustness.md).
 *
 * When a route can enter neither a sub-cell (Bloomier setup failed
 * past the retry budget) nor the spillover TCAM (full, §4.1 sizes it
 * at 32 entries), dropping it would silently blackhole traffic.
 * Instead the engine parks it here: a plain software LPM store the
 * lookup path consults last.  Entries migrate back into the TCAM as
 * capacity frees up (withdrawals, resetups).
 *
 * This is deliberately *not* a Tcam: it models no hardware, carries
 * no trace hooks (a slow-path hit is a software detour, not a modeled
 * memory access) and hosts no fault-injection points (it is the
 * fallback of last resort and must stay dependable).
 */

#ifndef CHISEL_CORE_SLOWPATH_HH
#define CHISEL_CORE_SLOWPATH_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "route/table.hh"

namespace chisel {

/**
 * Priority-ordered (decreasing prefix length) software route store.
 */
class SlowPathMap
{
  public:
    /** Insert or overwrite.  @return true if the prefix was new. */
    bool insert(const Prefix &prefix, NextHop next_hop);

    /** Remove a prefix.  @return true if present. */
    bool erase(const Prefix &prefix);

    /** Update the next hop of an existing entry. */
    bool setNextHop(const Prefix &prefix, NextHop next_hop);

    /** Longest-prefix match. */
    std::optional<Route> lookup(const Key128 &key) const;

    /** Exact-match search. */
    std::optional<NextHop> find(const Prefix &prefix) const;

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** All entries, longest prefix first (drain order). */
    const std::vector<Route> &entries() const { return entries_; }

  private:
    std::vector<Route> entries_;   ///< Sorted by decreasing length.
};

} // namespace chisel

#endif // CHISEL_CORE_SLOWPATH_HH
