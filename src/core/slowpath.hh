/**
 * @file
 * Software slow-path route store — the last rung of the degradation
 * ladder (docs/robustness.md).
 *
 * When a route can enter neither a sub-cell (Bloomier setup failed
 * past the retry budget) nor the spillover TCAM (full, §4.1 sizes it
 * at 32 entries), dropping it would silently blackhole traffic.
 * Instead the engine parks it here: a plain software LPM store the
 * lookup path consults last.  Entries migrate back into the TCAM as
 * capacity frees up (withdrawals, resetups).
 *
 * The store is bounded and length-bucketed:
 *
 *  - a configurable capacity (ChiselConfig::slowPathCapacity) caps
 *    resident entries; inserts past it are *rejected* and counted, and
 *    the engine reports a hard-degraded UpdateOutcome — unbounded
 *    growth under a pathological update storm would otherwise turn
 *    the control plane into the failure;
 *  - entries are indexed by prefix length (one hash map per populated
 *    length), so insert/erase are O(1) and LPM lookup is one probe
 *    per populated length instead of a scan over every entry.
 *
 * This is deliberately *not* a Tcam: it models no hardware, carries
 * no trace hooks (a slow-path hit is a software detour, not a modeled
 * memory access) and hosts no fault-injection points (it is the
 * fallback of last resort and must stay dependable).
 */

#ifndef CHISEL_CORE_SLOWPATH_HH
#define CHISEL_CORE_SLOWPATH_HH

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "route/table.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * Bounded software route store, indexed by prefix length.
 */
class SlowPathMap
{
  public:
    /** @param capacity Maximum resident entries (0 = unbounded). */
    explicit SlowPathMap(size_t capacity = 0) : capacity_(capacity) {}

    /** How an insert concluded. */
    enum class Insert
    {
        Inserted,   ///< New entry stored.
        Updated,    ///< Prefix already present; next hop overwritten.
        Rejected,   ///< Store at capacity; the route was NOT stored.
    };

    /** Insert or overwrite; Rejected when full (counted). */
    Insert insert(const Prefix &prefix, NextHop next_hop);

    /** Remove a prefix.  @return true if present. */
    bool erase(const Prefix &prefix);

    /** Update the next hop of an existing entry. */
    bool setNextHop(const Prefix &prefix, NextHop next_hop);

    /** Longest-prefix match: one probe per populated length. */
    std::optional<Route> lookup(const Key128 &key) const;

    /** Exact-match search. */
    std::optional<NextHop> find(const Prefix &prefix) const;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Configured capacity (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /** Inserts refused because the store was full. */
    uint64_t rejected() const { return rejected_; }

    /** The longest resident entry (drain order), if any. */
    std::optional<Route> longest() const;

    /** All entries, longest prefix first. */
    std::vector<Route> entries() const;

    /** Serialize contents and counters (docs/persistence.md). */
    void saveState(persist::Encoder &enc) const;

    /** Restore from saveState output; throws persist::DecodeError. */
    void loadState(persist::Decoder &dec);

  private:
    /** Buckets keyed by length, longest first (lookup/drain order). */
    using Bucket = std::unordered_map<Prefix, NextHop, PrefixHasher>;
    using BucketMap = std::map<unsigned, Bucket, std::greater<unsigned>>;

    size_t capacity_;
    size_t size_ = 0;
    uint64_t rejected_ = 0;
    BucketMap buckets_;
};

} // namespace chisel

#endif // CHISEL_CORE_SLOWPATH_HH
