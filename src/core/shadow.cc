#include "core/shadow.hh"

#include <cassert>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace chisel {

ShadowGroup::ShadowGroup(unsigned base, unsigned stride)
    : base_(base), stride_(stride)
{
    panicIf(stride > 16, "ShadowGroup stride too large");
}

bool
ShadowGroup::announce(const Prefix &prefix, NextHop next_hop)
{
    panicIf(prefix.length() < base_ ||
            prefix.length() > base_ + stride_,
            "ShadowGroup member length outside cell range");
    auto [it, inserted] = members_.insert_or_assign(prefix, next_hop);
    (void)it;
    return inserted;
}

std::optional<NextHop>
ShadowGroup::withdraw(const Prefix &prefix)
{
    auto it = members_.find(prefix);
    if (it == members_.end())
        return std::nullopt;
    NextHop nh = it->second;
    members_.erase(it);
    return nh;
}

std::optional<NextHop>
ShadowGroup::find(const Prefix &prefix) const
{
    auto it = members_.find(prefix);
    if (it == members_.end())
        return std::nullopt;
    return it->second;
}

GroupImage
ShadowGroup::computeImage() const
{
    const uint64_t slots = uint64_t(1) << stride_;
    // Per slot: the relative length of the longest covering member
    // (-1 = uncovered) and its next hop.
    std::vector<int> cover_len(slots, -1);
    std::vector<NextHop> cover_hop(slots, kNoRoute);

    for (const auto &[p, nh] : members_) {
        unsigned rel = p.length() - base_;
        uint64_t span = uint64_t(1) << (stride_ - rel);
        uint64_t start = (rel == 0) ? 0
                                    : (p.suffixBits(base_) << (stride_ - rel));
        for (uint64_t v = start; v < start + span; ++v) {
            if (static_cast<int>(rel) > cover_len[v]) {
                cover_len[v] = static_cast<int>(rel);
                cover_hop[v] = nh;
            }
        }
    }

    GroupImage image;
    image.bits.assign(std::max<uint64_t>(1, slots / 64), 0);
    for (uint64_t v = 0; v < slots; ++v) {
        if (cover_len[v] >= 0) {
            image.bits[v / 64] |= uint64_t(1) << (v % 64);
            image.hops.push_back(cover_hop[v]);
        }
    }
    return image;
}

std::optional<Route>
ShadowGroup::longestCover(uint64_t slot) const
{
    assert(slot < (uint64_t(1) << stride_));
    std::optional<Route> best;
    for (const auto &[p, nh] : members_) {
        unsigned rel = p.length() - base_;
        uint64_t suffix = (rel == 0) ? 0 : p.suffixBits(base_);
        if ((slot >> (stride_ - rel)) == suffix) {
            if (!best || p.length() > best->prefix.length())
                best = Route{p, nh};
        }
    }
    return best;
}

} // namespace chisel
