#include "core/engine.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "hash/mix.hh"
#include "telemetry/engine_telemetry.hh"

namespace chisel {

const char *
updateStatusName(UpdateStatus s)
{
    switch (s) {
      case UpdateStatus::Applied: return "applied";
      case UpdateStatus::Degraded: return "degraded";
      case UpdateStatus::Rejected: return "rejected";
    }
    return "?";
}

uint64_t
UpdateStats::total() const
{
    uint64_t t = 0;
    for (uint64_t c : counts)
        t += c;
    return t;
}

double
UpdateStats::fraction(UpdateClass c) const
{
    uint64_t t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(count(c)) / static_cast<double>(t);
}

double
UpdateStats::incrementalFraction() const
{
    uint64_t t = total();
    if (t == 0)
        return 1.0;
    uint64_t slow = count(UpdateClass::Resetup);
    return 1.0 - static_cast<double>(slow) / static_cast<double>(t);
}

ChiselEngine::ChiselEngine(const RoutingTable &initial,
                           const ChiselConfig &config)
    : config_(config), spill_(config.spillCapacity),
      slowPath_(config.slowPathCapacity)
{
    if (config_.keyWidth < 1 || config_.keyWidth > Key128::maxBits)
        fatalError("ChiselEngine key width must be in [1, 128]");

    plan_ = makeCollapsePlan(initial.populatedLengths(), config_.stride,
                             config_.keyWidth,
                             config_.coverAllLengths);
    if (plan_.cells.empty()) {
        // Empty table and coverage disabled: a single cell over
        // [1, stride+1] so the engine is still usable.
        CellRange r;
        r.base = 1;
        r.top = std::min(config_.stride + 1, config_.keyWidth);
        plan_.cells.push_back(r);
    }

    // Partition the initial routes per cell.
    std::vector<std::vector<Route>> per_cell(plan_.cells.size());

    for (const auto &r : initial.routes()) {
        unsigned len = r.prefix.length();
        if (len == 0) {
            defaultRoute_ = r.nextHop;
            continue;
        }
        int c = plan_.cellFor(len);
        panicIf(c < 0, "collapse plan does not cover an initial route");
        per_cell[c].push_back(r);
    }

    std::vector<Route> displaced;
    for (size_t i = 0; i < plan_.cells.size(); ++i) {
        SubCell::Config cc;
        cc.range = plan_.cells[i];
        cc.stride = config_.stride;
        // The paper's worst-case paradigm: provision each cell for
        // its *route* count (one group per prefix in the worst
        // case), times the headroom for future announces.  Groups
        // never outnumber routes, so cells run at low load and
        // singleton insertion stays the overwhelmingly common case.
        cc.capacity = std::max<size_t>(
            config_.minCellCapacity,
            static_cast<size_t>(std::ceil(
                config_.capacityHeadroom *
                static_cast<double>(per_cell[i].size()))));
        cc.keyWidth = config_.keyWidth;
        cc.k = config_.k;
        cc.ratio = config_.ratio;
        // Partitions only help once a cell is large enough that a
        // full re-setup would be slow; small cells peel in one shot.
        cc.partitions = static_cast<unsigned>(std::clamp<size_t>(
            cc.capacity / 2048, 1, config_.partitions));
        cc.retainDirtyGroups = config_.retainDirtyGroups;
        cc.dirtyBudget = config_.dirtyBudgetPerCell;
        cc.damping = config_.damping;
        cc.resultPointerBits =
            addressBits(4ull * std::max<size_t>(initial.size(), 1024));
        cc.seed = mix64(config_.seed + 0x9e3779b97f4a7c15ULL *
                        (plan_.cells[i].base + 1));

        cells_.push_back(std::make_unique<SubCell>(cc, &results_));
        cells_.back()->buildFrom(per_cell[i], displaced);
    }
    UpdateOutcome boot;
    absorbDisplaced(displaced, boot);
}

void
ChiselEngine::absorbDisplaced(std::vector<Route> &displaced,
                              UpdateOutcome &out)
{
    for (const auto &r : displaced) {
        if (spill_.insert(r.prefix, r.nextHop))
            continue;
        // TCAM full (or an injected overflow): degrade to the
        // software slow path rather than drop the route.
        ++out.tcamOverflows;
        ++robust_.tcamOverflows;
        switch (slowPath_.insert(r.prefix, r.nextHop)) {
          case SlowPathMap::Insert::Inserted:
            ++out.slowPathInserts;
            ++robust_.slowPathInserts;
            break;
          case SlowPathMap::Insert::Updated:
            break;
          case SlowPathMap::Insert::Rejected:
            // The slow path itself is full: the route is dropped and
            // the outcome says so — the only lossy rung of the
            // ladder, taken over unbounded control-plane growth.
            ++out.slowPathRejections;
            ++robust_.slowPathRejected;
            warnOnce("software slow path full: routes dropped");
            break;
        }
        // One advisory per process: repeated overflows during long
        // update replays would otherwise flood the log.
        warnOnce("spillover TCAM full: routes diverted to the "
                 "software slow path");
    }
    displaced.clear();
}

void
ChiselEngine::recoverPendingParity(UpdateOutcome &out)
{
    for (auto &cell : cells_) {
        if (!cell->parityPending())
            continue;
        std::vector<Route> displaced;
        cell->recoverParity(displaced);
        absorbDisplaced(displaced, out);
        ++out.parityRecoveries;
    }
}

void
ChiselEngine::applyInjectedFaults()
{
    fault::FaultInjector *inj = fault::activeInjector();
    if (inj == nullptr || cells_.empty())
        return;
    auto pick = [&]() -> SubCell & {
        return *cells_[inj->draw(cells_.size())];
    };
    if (inj->shouldFire(fault::FaultPoint::BitFlipIndex))
        pick().corruptIndexBit(*inj);
    if (inj->shouldFire(fault::FaultPoint::BitFlipFilter))
        pick().corruptFilterBit(*inj);
    if (inj->shouldFire(fault::FaultPoint::BitFlipBitVector))
        pick().corruptBitVectorBit(*inj);
    if (inj->shouldFire(fault::FaultPoint::BitFlipResult)) {
        uint64_t high = results_.highWater();
        if (high > 0) {
            results_.flipBit(static_cast<uint32_t>(inj->draw(high)),
                             static_cast<unsigned>(inj->draw(32)));
        }
    }
}

void
ChiselEngine::drainSlowPath()
{
    uint64_t drained = 0;
    while (!slowPath_.empty() && !spill_.full()) {
        Route r = *slowPath_.longest();   // Longest first.
        if (!spill_.insert(r.prefix, r.nextHop))
            break;   // Injected overflow; retry at the next update.
        slowPath_.erase(r.prefix);
        ++robust_.slowPathDrains;
        ++drained;
    }
    if (drained > 0) {
        CHISEL_FLIGHT_EVENT(SlowPathDrain, 0, drained,
                            slowPath_.size());
    }
}

uint64_t
ChiselEngine::cellSetupRetries() const
{
    uint64_t n = 0;
    for (const auto &cell : cells_)
        n += cell->faultCounters().setupRetries;
    return n;
}

RobustnessCounters
ChiselEngine::robustness() const
{
    RobustnessCounters r = robust_;
    for (const auto &cell : cells_) {
        const auto &f = cell->faultCounters();
        r.setupRetries += f.setupRetries;
        r.parityDetected += f.parityDetected;
        r.parityRecoveries += f.parityRecoveries;
        const auto &h = cell->healthCounters();
        r.dirtyEvictions += h.dirtyEvictions;
        r.suppressedFlaps += h.suppressedFlaps;
    }
    return r;
}

LookupResult
ChiselEngine::lookup(const Key128 &key) const
{
    if (telemetry_ == nullptr)
        return lookupImpl(key);
    telemetry::LookupSpan span(*telemetry_);
    LookupResult out = lookupImpl(key);
    span.finish(out);
    return out;
}

LookupResult
ChiselEngine::lookupImpl(const Key128 &key) const
{
    LookupResult out;
    out.memoryAccesses = kLookupAccesses;

    // Access accounting: every cell's Index segments, Filter and
    // Bit-vector are read on every lookup (the probes run in
    // parallel across cells, but each is a real memory access).
    ++access_.lookups;
    access_.indexSegmentReads += cells_.size() * config_.k;
    access_.filterReads += cells_.size();
    access_.bitvectorReads += cells_.size();

    // All sub-cells probe in parallel; the priority encoder picks the
    // hit with the longest base.  Scanning in descending base order,
    // the first hit is that winner (cell ranges are disjoint).
    for (auto it = cells_.rbegin(); it != cells_.rend(); ++it) {
        SubCell::Hit h = (*it)->lookup(key);
        if (h.hit) {
            out.found = true;
            out.nextHop = h.nextHop;
            out.matchedLength = h.matchedLength;
            break;
        }
    }

    // The spillover TCAM is searched in parallel with the cells; a
    // longer TCAM match overrides.
    if (auto t = spill_.lookup(key)) {
        if (!out.found || t->prefix.length() > out.matchedLength) {
            out.found = true;
            out.nextHop = t->nextHop;
            out.matchedLength = t->prefix.length();
            out.fromSpill = true;
        }
    }

    // Degraded mode: routes diverted past the TCAM live in the
    // software slow path; a longer match there overrides.  Empty in
    // normal operation, so this costs one branch.
    if (!slowPath_.empty()) {
        if (auto s = slowPath_.lookup(key)) {
            if (!out.found || s->prefix.length() > out.matchedLength) {
                out.found = true;
                out.nextHop = s->nextHop;
                out.matchedLength = s->prefix.length();
                out.fromSpill = false;
                out.fromSlowPath = true;
            }
        }
    }

    if (!out.found && defaultRoute_) {
        out.found = true;
        out.nextHop = *defaultRoute_;
        out.matchedLength = 0;
        out.fromDefault = true;
    }
    if (out.found && !out.fromDefault)
        ++access_.resultReads;
    return out;
}

UpdateOutcome
ChiselEngine::announce(const Prefix &prefix, NextHop next_hop,
                       uint32_t ttl_ms)
{
    UpdateOutcome out;
    if (telemetry_ == nullptr) {
        out = announceImpl(prefix, next_hop);
    } else {
        telemetry::UpdateSpan span(*telemetry_);
        out = announceImpl(prefix, next_hop);
        span.finish(out);
    }
    if (out.status != UpdateStatus::Rejected && prefix.length() > 0)
        armTtl(prefix, ttl_ms);
    CHISEL_FLIGHT_EVENT(UpdateApply, out.status,
                        static_cast<uint64_t>(out.cls),
                        prefix.length());
    return out;
}

void
ChiselEngine::armTtl(const Prefix &prefix, uint32_t ttl_ms)
{
    uint64_t ttl = ttl_ms != 0 ? ttl_ms : config_.defaultTtlMs;
    if (ttl_ms == kTtlNever || ttl == 0)
        ttl_.disarm(prefix);
    else
        ttl_.arm(prefix, ttlClockMs_ + ttl);
}

void
ChiselEngine::setTtlClock(uint64_t now_ms)
{
    if (now_ms > ttlClockMs_)
        ttlClockMs_ = now_ms;
}

size_t
ChiselEngine::collectExpired(size_t max, std::vector<Prefix> &out) const
{
    return ttl_.collectExpired(ttlClockMs_, max, out);
}

namespace {

/** Derive the final status from the degradation counters. */
void
finalizeOutcome(UpdateOutcome &out)
{
    if (out.status == UpdateStatus::Rejected)
        return;
    if (out.slowPathRejections > 0) {
        // Hard degradation: route(s) were dropped, not just diverted.
        out.status = UpdateStatus::Degraded;
        out.message = "software slow path full: route(s) dropped";
        return;
    }
    if (out.tcamOverflows > 0 || out.slowPathInserts > 0 ||
        out.parityRecoveries > 0) {
        out.status = UpdateStatus::Degraded;
    }
}

} // anonymous namespace

UpdateOutcome
ChiselEngine::announceImpl(const Prefix &prefix, NextHop next_hop)
{
    UpdateOutcome out;
    if (prefix.length() > config_.keyWidth) {
        // Malformed input is refused, not fatal: the engine keeps
        // serving and the caller learns why from the outcome.
        out.cls = UpdateClass::NoOp;
        out.status = UpdateStatus::Rejected;
        out.message = "announce: prefix longer than the engine's "
                      "key width";
        ++robust_.rejectedUpdates;
        warnOnce(out.message);
        return out;
    }

    // Any parity error flagged by earlier lookups is repaired before
    // this update touches the tables.
    recoverPendingParity(out);
    applyInjectedFaults();

    if (prefix.length() == 0) {
        out.cls = defaultRoute_ ? UpdateClass::NextHopChange
                                : UpdateClass::AddCollapsed;
        defaultRoute_ = next_hop;
        updateStats_.record(out.cls);
        finalizeOutcome(out);
        return out;
    }

    // A prefix already parked in the TCAM or the slow path is
    // updated in place.
    if (spill_.setNextHop(prefix, next_hop) ||
        slowPath_.setNextHop(prefix, next_hop)) {
        out.cls = UpdateClass::NextHopChange;
        updateStats_.record(out.cls);
        finalizeOutcome(out);
        return out;
    }

    int c = plan_.cellFor(prefix.length());
    if (c < 0) {
        std::vector<Route> one{Route{prefix, next_hop}};
        absorbDisplaced(one, out);
        out.cls = UpdateClass::Spill;
        updateStats_.record(out.cls);
        finalizeOutcome(out);
        return out;
    }

    uint64_t retries_before = cellSetupRetries();
    std::vector<Route> displaced;
    out.cls = cells_[c]->announce(prefix, next_hop, displaced);
    absorbDisplaced(displaced, out);
    out.setupRetries =
        static_cast<uint32_t>(cellSetupRetries() - retries_before);
    updateStats_.record(out.cls);
    drainSlowPath();
    finalizeOutcome(out);
    return out;
}

UpdateOutcome
ChiselEngine::withdraw(const Prefix &prefix)
{
    UpdateOutcome out;
    if (telemetry_ == nullptr) {
        out = withdrawImpl(prefix, false);
    } else {
        telemetry::UpdateSpan span(*telemetry_);
        out = withdrawImpl(prefix, false);
        span.finish(out);
    }
    CHISEL_FLIGHT_EVENT(UpdateApply, out.status,
                        static_cast<uint64_t>(out.cls),
                        prefix.length());
    return out;
}

UpdateOutcome
ChiselEngine::expire(const Prefix &prefix)
{
    UpdateOutcome out;
    if (telemetry_ == nullptr) {
        out = withdrawImpl(prefix, true);
    } else {
        telemetry::UpdateSpan span(*telemetry_);
        out = withdrawImpl(prefix, true);
        span.finish(out);
    }
    CHISEL_FLIGHT_EVENT(TtlExpire, out.status,
                        static_cast<uint64_t>(out.cls),
                        prefix.length());
    return out;
}

UpdateOutcome
ChiselEngine::withdrawImpl(const Prefix &prefix, bool expiry)
{
    UpdateOutcome out;
    out.cls = UpdateClass::NoOp;

    recoverPendingParity(out);
    applyInjectedFaults();

    if (prefix.length() == 0) {
        out.cls = defaultRoute_ ? UpdateClass::Withdraw
                                : UpdateClass::NoOp;
        defaultRoute_.reset();
        updateStats_.record(out.cls);
        finalizeOutcome(out);
        return out;
    }

    if (spill_.erase(prefix) || slowPath_.erase(prefix)) {
        out.cls = expiry ? UpdateClass::Expire : UpdateClass::Withdraw;
        ttl_.disarm(prefix);
        updateStats_.record(out.cls);
        drainSlowPath();
        finalizeOutcome(out);
        return out;
    }

    int c = plan_.cellFor(prefix.length());
    if (c >= 0)
        out.cls = cells_[c]->withdraw(prefix);
    if (expiry && out.cls == UpdateClass::Withdraw)
        out.cls = UpdateClass::Expire;
    ttl_.disarm(prefix);
    updateStats_.record(out.cls);
    drainSlowPath();
    finalizeOutcome(out);
    return out;
}

UpdateOutcome
ChiselEngine::apply(const Update &update)
{
    if (update.kind == UpdateKind::Announce)
        return announce(update.prefix, update.nextHop, update.ttlMs);
    if (update.kind == UpdateKind::Expire)
        return expire(update.prefix);
    return withdraw(update.prefix);
}

std::optional<NextHop>
ChiselEngine::find(const Prefix &prefix) const
{
    if (prefix.length() == 0)
        return defaultRoute_;
    if (auto t = spill_.find(prefix))
        return t;
    if (auto s = slowPath_.find(prefix))
        return s;
    int c = plan_.cellFor(prefix.length());
    if (c < 0)
        return std::nullopt;
    return cells_[c]->find(prefix);
}

size_t
ChiselEngine::routeCount() const
{
    size_t n = spill_.size() + slowPath_.size() +
               (defaultRoute_ ? 1 : 0);
    for (const auto &cell : cells_)
        n += cell->routeCount();
    return n;
}

RoutingTable
ChiselEngine::exportTable() const
{
    RoutingTable out;
    std::vector<Route> routes;
    for (const auto &cell : cells_)
        cell->exportRoutes(routes);
    for (const auto &r : routes)
        out.add(r.prefix, r.nextHop);
    for (const auto &e : spill_.entries())
        out.add(e.prefix, e.nextHop);
    for (const auto &e : slowPath_.entries())
        out.add(e.prefix, e.nextHop);
    if (defaultRoute_)
        out.add(Prefix(), *defaultRoute_);
    return out;
}

StorageBreakdown
ChiselEngine::storage() const
{
    StorageBreakdown b;
    for (const auto &cell : cells_) {
        b.indexBits += cell->indexBits();
        b.filterBits += cell->filterBits();
        b.bitvectorBits += cell->bitvectorBits();
        b.parityBits += cell->parityBits();
    }
    // One parity bit per Result Table slot (off-chip but protected).
    b.parityBits += results_.highWater();
    return b;
}

size_t
ChiselEngine::purgeDirty()
{
    size_t purged = 0;
    for (auto &cell : cells_)
        purged += cell->purgeDirty();
    return purged;
}

size_t
ChiselEngine::dirtyCount() const
{
    size_t n = 0;
    for (const auto &cell : cells_)
        n += cell->dirtyCount();
    return n;
}

size_t
ChiselEngine::dirtyPeak() const
{
    size_t peak = 0;
    for (const auto &cell : cells_)
        peak = std::max(peak, cell->dirtyPeak());
    return peak;
}

ScrubReport
ChiselEngine::scrub()
{
    ScrubReport report;

    // Result Table first: a bad word there does not name its owning
    // cell, but recover-by-resetup rewrites every allocated result
    // word from the shadow copy, so recovering all cells scrubs it.
    bool resultsBad = false;
    uint64_t high = results_.highWater();
    report.wordsChecked += high;
    for (uint32_t addr = 0; addr < high; ++addr) {
        if (!results_.parityOk(addr)) {
            ++report.errorsFound;
            resultsBad = true;
        }
    }

    UpdateOutcome out;
    for (auto &cell : cells_) {
        report.wordsChecked += cell->parityWordCount();
        size_t bad = cell->verifyParity();
        report.errorsFound += bad;
        if (bad > 0 || resultsBad || cell->parityPending()) {
            std::vector<Route> displaced;
            cell->recoverParity(displaced);
            absorbDisplaced(displaced, out);
            ++report.cellsRecovered;
        }
    }
    return report;
}

bool
ChiselEngine::selfCheck() const
{
    for (const auto &cell : cells_) {
        if (!cell->selfCheck())
            return false;
    }
    return true;
}

} // namespace chisel
