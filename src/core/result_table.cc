#include "core/result_table.hh"

#include <cassert>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "telemetry/trace.hh"

namespace chisel {

uint32_t
ResultTable::grantedSize(uint32_t entries)
{
    if (entries <= 1)
        return 1;
    return static_cast<uint32_t>(nextPow2(entries));
}

uint32_t
ResultTable::allocate(uint32_t entries)
{
    uint32_t size = grantedSize(entries);
    unsigned cls = ceilLog2(size);
    if (freeLists_.size() <= cls)
        freeLists_.resize(cls + 1);

    ++allocations_;
    allocated_ += size;

    auto &list = freeLists_[cls];
    if (!list.empty()) {
        uint32_t base = list.back();
        list.pop_back();
        return base;
    }
    uint32_t base = static_cast<uint32_t>(slots_.size());
    slots_.resize(slots_.size() + size, kNoRoute);
    parity_.resize(slots_.size(),
                   static_cast<uint8_t>(
                       popcount64(static_cast<uint64_t>(kNoRoute)) &
                       1u));
    return base;
}

void
ResultTable::free(uint32_t base, uint32_t entries)
{
    uint32_t size = grantedSize(entries);
    unsigned cls = ceilLog2(size);
    panicIf(freeLists_.size() <= cls,
            "ResultTable::free of a never-allocated size class");
    panicIf(allocated_ < size, "ResultTable::free accounting underflow");
    freeLists_[cls].push_back(base);
    allocated_ -= size;
    ++frees_;
}

NextHop
ResultTable::read(uint32_t addr) const
{
    panicIf(addr >= slots_.size(), "ResultTable read out of range");
    CHISEL_TRACE_ACCESS(Result, addr, sizeof(NextHop));
    return slots_[addr];
}

void
ResultTable::write(uint32_t addr, NextHop next_hop)
{
    panicIf(addr >= slots_.size(), "ResultTable write out of range");
    CHISEL_TRACE_WRITE(Result, addr, sizeof(NextHop));
    slots_[addr] = next_hop;
    parity_[addr] = static_cast<uint8_t>(
        popcount64(static_cast<uint64_t>(next_hop)) & 1u);
}

bool
ResultTable::parityOk(uint32_t addr) const
{
    panicIf(addr >= slots_.size(), "ResultTable parity out of range");
    return (popcount64(static_cast<uint64_t>(slots_[addr])) & 1u) ==
           parity_[addr];
}

void
ResultTable::flipBit(uint32_t addr, unsigned bit)
{
    panicIf(addr >= slots_.size(), "ResultTable flip out of range");
    slots_[addr] ^= static_cast<NextHop>(
        NextHop(1) << (bit % (8 * sizeof(NextHop))));
}

} // namespace chisel
