#include "core/result_table.hh"

#include <cassert>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "persist/codec.hh"
#include "telemetry/trace.hh"

namespace chisel {

uint32_t
ResultTable::grantedSize(uint32_t entries)
{
    if (entries <= 1)
        return 1;
    return static_cast<uint32_t>(nextPow2(entries));
}

uint32_t
ResultTable::allocate(uint32_t entries)
{
    uint32_t size = grantedSize(entries);
    unsigned cls = ceilLog2(size);
    if (freeLists_.size() <= cls)
        freeLists_.resize(cls + 1);

    ++allocations_;
    allocated_ += size;

    auto &list = freeLists_[cls];
    if (!list.empty()) {
        uint32_t base = list.back();
        list.pop_back();
        return base;
    }
    uint32_t base = static_cast<uint32_t>(slots_.size());
    slots_.resize(slots_.size() + size, kNoRoute);
    parity_.resize(slots_.size(),
                   static_cast<uint8_t>(
                       popcount64(static_cast<uint64_t>(kNoRoute)) &
                       1u));
    return base;
}

void
ResultTable::free(uint32_t base, uint32_t entries)
{
    uint32_t size = grantedSize(entries);
    unsigned cls = ceilLog2(size);
    panicIf(freeLists_.size() <= cls,
            "ResultTable::free of a never-allocated size class");
    panicIf(allocated_ < size, "ResultTable::free accounting underflow");
    freeLists_[cls].push_back(base);
    allocated_ -= size;
    ++frees_;
}

NextHop
ResultTable::read(uint32_t addr) const
{
    panicIf(addr >= slots_.size(), "ResultTable read out of range");
    CHISEL_TRACE_ACCESS(Result, addr, sizeof(NextHop));
    return slots_[addr];
}

void
ResultTable::write(uint32_t addr, NextHop next_hop)
{
    panicIf(addr >= slots_.size(), "ResultTable write out of range");
    CHISEL_TRACE_WRITE(Result, addr, sizeof(NextHop));
    slots_[addr] = next_hop;
    parity_[addr] = static_cast<uint8_t>(
        popcount64(static_cast<uint64_t>(next_hop)) & 1u);
}

bool
ResultTable::parityOk(uint32_t addr) const
{
    panicIf(addr >= slots_.size(), "ResultTable parity out of range");
    return (popcount64(static_cast<uint64_t>(slots_[addr])) & 1u) ==
           parity_[addr];
}

void
ResultTable::saveState(persist::Encoder &enc) const
{
    enc.u64(slots_.size());
    for (NextHop h : slots_)
        enc.u32(h);
    enc.u64(freeLists_.size());
    for (const auto &list : freeLists_) {
        enc.u64(list.size());
        for (uint32_t base : list)
            enc.u32(base);
    }
    enc.u64(allocated_);
    enc.u64(allocations_);
    enc.u64(frees_);
}

void
ResultTable::loadState(persist::Decoder &dec)
{
    uint64_t n = dec.count(4);
    slots_.assign(n, kNoRoute);
    parity_.assign(n, 0);
    for (uint64_t i = 0; i < n; ++i) {
        slots_[i] = dec.u32();
        parity_[i] = static_cast<uint8_t>(
            popcount64(static_cast<uint64_t>(slots_[i])) & 1u);
    }
    uint64_t classes = dec.count(8);
    if (classes > 33)
        throw persist::DecodeError("result table: too many size classes");
    freeLists_.assign(classes, {});
    for (uint64_t c = 0; c < classes; ++c) {
        uint64_t blocks = dec.count(4);
        freeLists_[c].reserve(blocks);
        for (uint64_t b = 0; b < blocks; ++b) {
            uint32_t base = dec.u32();
            if (base >= n && n > 0)
                throw persist::DecodeError(
                    "result table: free block out of range");
            freeLists_[c].push_back(base);
        }
    }
    allocated_ = dec.u64();
    allocations_ = dec.u64();
    frees_ = dec.u64();
    if (allocated_ > n)
        throw persist::DecodeError(
            "result table: allocation accounting exceeds high water");
}

void
ResultTable::flipBit(uint32_t addr, unsigned bit)
{
    panicIf(addr >= slots_.size(), "ResultTable flip out of range");
    slots_[addr] ^= static_cast<NextHop>(
        NextHop(1) << (bit % (8 * sizeof(NextHop))));
}

} // namespace chisel
