#include "core/storage_model.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"

namespace chisel {

namespace {

uint64_t
indexSlots(size_t n, const StorageParams &p)
{
    return static_cast<uint64_t>(
        std::ceil(p.ratio * static_cast<double>(n)));
}

} // anonymous namespace

StorageBreakdown
chiselWorstCase(size_t n, const StorageParams &p)
{
    StorageBreakdown b;
    b.indexBits = indexSlots(n, p) * addressBits(n);
    b.filterBits = static_cast<uint64_t>(n) * (p.keyWidth + 2);
    // Result pointers address a 4x over-provisioned next-hop space.
    unsigned ptr_bits = addressBits(4ull * n);
    b.bitvectorBits = static_cast<uint64_t>(n) *
                      ((uint64_t(1) << p.stride) + ptr_bits);
    return b;
}

StorageBreakdown
chiselNoWildcard(size_t n, const StorageParams &p)
{
    StorageBreakdown b;
    b.indexBits = indexSlots(n, p) * addressBits(n);
    b.filterBits = static_cast<uint64_t>(n) * (p.keyWidth + 2);
    b.bitvectorBits = 0;
    return b;
}

uint64_t
naiveNoIndirectionBits(size_t n, const StorageParams &p)
{
    // Index slots hold only h-tau (log2 k bits) but the key+result
    // table must have m locations instead of n (Section 4.2).
    uint64_t m = indexSlots(n, p);
    uint64_t index = m * std::max(1u, ceilLog2(p.k));
    uint64_t keys = m * (p.keyWidth + 2);
    return index + keys;
}

StorageBreakdown
chiselSizedToFit(const std::vector<size_t> &groups_per_cell,
                 const StorageParams &p)
{
    StorageBreakdown b;
    size_t total_groups = 0;
    for (size_t g : groups_per_cell)
        total_groups += g;
    unsigned ptr_bits = addressBits(
        4ull * std::max<size_t>(total_groups, 1));
    for (size_t g : groups_per_cell) {
        if (g == 0)
            continue;
        b.indexBits += indexSlots(g, p) * addressBits(g);
        b.filterBits += static_cast<uint64_t>(g) * (p.keyWidth + 2);
        b.bitvectorBits += static_cast<uint64_t>(g) *
                           ((uint64_t(1) << p.stride) + ptr_bits);
    }
    return b;
}

StorageBreakdown
chiselWithCpe(size_t expanded_n, const StorageParams &p)
{
    // Same structure as the no-wildcard engine, sized for the
    // post-expansion prefix count; no Bit-vector Table.
    return chiselNoWildcard(expanded_n, p);
}

} // namespace chisel
