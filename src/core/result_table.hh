/**
 * @file
 * Result Table: off-chip next-hop storage with block allocation.
 *
 * Each collapsed-prefix group owns a contiguous region of the Result
 * Table sized for the ones in its bit-vector, slightly
 * over-provisioned to absorb future announces (Section 4.3.2).  The
 * allocator is a segregated power-of-two free-list — the same style
 * of variable-block management trie schemes use for their nodes,
 * which is the comparison the paper makes for update cost.
 *
 * The Result Table is commodity DRAM in the paper's design and is
 * excluded from every scheme's storage totals (Section 5); it is
 * fully modelled here because lookups and updates must exercise it.
 */

#ifndef CHISEL_CORE_RESULT_TABLE_HH
#define CHISEL_CORE_RESULT_TABLE_HH

#include <cstdint>
#include <vector>

#include "route/prefix.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * Next-hop array with power-of-two block allocation.
 */
class ResultTable
{
  public:
    ResultTable() = default;

    /**
     * Allocate a block of at least @p entries slots; the granted size
     * is the next power of two (the over-provisioning policy).
     * @return Base address of the block.
     */
    uint32_t allocate(uint32_t entries);

    /** Return a block obtained from allocate(). */
    void free(uint32_t base, uint32_t entries);

    /** Granted size for a request (next power of two, min 1). */
    static uint32_t grantedSize(uint32_t entries);

    /** Read the next hop at @p addr. */
    NextHop read(uint32_t addr) const;

    /** Write the next hop at @p addr. */
    void write(uint32_t addr, NextHop next_hop);

    /**
     * True if @p addr passes its parity check.  One even-parity bit
     * per slot, maintained by write(); a soft error is detectable
     * until the slot is rewritten.
     */
    bool parityOk(uint32_t addr) const;

    /**
     * Soft-error model: flip bit @p bit of the next hop stored at
     * @p addr without updating parity.
     */
    void flipBit(uint32_t addr, unsigned bit);

    /** Slots currently inside allocated blocks. */
    uint64_t allocatedSlots() const { return allocated_; }

    /** Highest table address ever provisioned + 1. */
    uint64_t highWater() const { return slots_.size(); }

    /** Allocations performed (update-cost statistic). */
    uint64_t allocations() const { return allocations_; }

    /** Frees performed. */
    uint64_t frees() const { return frees_; }

    /**
     * Serialize slots, free lists and allocator counters (parity is
     * recomputed).  Free-list order matters: it decides which base
     * the next allocate() of a class returns.
     */
    void saveState(persist::Encoder &enc) const;

    /** Restore from saveState(); throws persist::DecodeError. */
    void loadState(persist::Decoder &dec);

  private:
    std::vector<NextHop> slots_;
    std::vector<uint8_t> parity_;   ///< Even-parity bit per slot.
    /** freeLists_[c] holds bases of free blocks of size 2^c. */
    std::vector<std::vector<uint32_t>> freeLists_;
    uint64_t allocated_ = 0;
    uint64_t allocations_ = 0;
    uint64_t frees_ = 0;
};

} // namespace chisel

#endif // CHISEL_CORE_RESULT_TABLE_HH
