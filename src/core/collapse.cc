#include "core/collapse.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"
#include "hash/mix.hh"

namespace chisel {

int
CollapsePlan::cellFor(unsigned len) const
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].covers(len))
            return static_cast<int>(i);
    }
    return -1;
}

std::string
CollapsePlan::str() const
{
    std::string s;
    for (const auto &c : cells) {
        s += "[" + std::to_string(c.base) + "-" +
             std::to_string(c.top) + (c.filler ? "f]" : "]");
    }
    return s;
}

CollapsePlan
makeCollapsePlan(const std::vector<unsigned> &populated,
                 unsigned stride, unsigned key_width,
                 bool cover_all_lengths)
{
    if (stride < 1 || stride > 16)
        fatalError("collapse stride must be in [1, 16]");
    if (key_width < 1 || key_width > 128)
        fatalError("key width must be in [1, 128]");

    std::vector<unsigned> lens;
    for (unsigned l : populated) {
        if (l == 0)
            continue;   // Default route lives in a register.
        if (l > key_width)
            fatalError("populated length exceeds key width");
        lens.push_back(l);
    }
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());

    CollapsePlan plan;

    // Greedy pass over populated lengths (Section 4.3.3).
    size_t i = 0;
    while (i < lens.size()) {
        CellRange cell;
        cell.base = lens[i];
        cell.top = lens[i];
        while (i < lens.size() && lens[i] <= cell.base + stride) {
            cell.top = lens[i];
            ++i;
        }
        plan.cells.push_back(cell);
    }

    if (!cover_all_lengths)
        return plan;

    // Fill every uncovered length in [1, key_width] with filler
    // cells so any future announce has a home.
    CollapsePlan full;
    unsigned next = 1;
    for (const auto &cell : plan.cells) {
        while (next < cell.base) {
            CellRange filler;
            filler.base = next;
            filler.top = std::min(next + stride, cell.base - 1);
            filler.filler = true;
            full.cells.push_back(filler);
            next = filler.top + 1;
        }
        full.cells.push_back(cell);
        // The greedy cell's reach extends to base+stride even if no
        // populated length sits there; let updates use that space.
        CellRange &placed = full.cells.back();
        placed.top = std::min(placed.base + stride, key_width);
        next = placed.top + 1;
    }
    while (next <= key_width) {
        CellRange filler;
        filler.base = next;
        filler.top = std::min(next + stride, key_width);
        filler.filler = true;
        full.cells.push_back(filler);
        next = filler.top + 1;
    }
    return full;
}

std::vector<size_t>
countGroupsPerCell(const RoutingTable &table, const CollapsePlan &plan)
{
    std::vector<std::unordered_set<Key128, Key128Hasher>> groups(
        plan.cells.size());
    for (const auto &r : table.routes()) {
        if (r.prefix.length() == 0)
            continue;
        int c = plan.cellFor(r.prefix.length());
        if (c < 0)
            continue;
        groups[c].insert(
            r.prefix.bits().masked(plan.cells[c].base));
    }
    std::vector<size_t> out(plan.cells.size());
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = groups[i].size();
    return out;
}

} // namespace chisel
