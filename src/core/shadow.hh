/**
 * @file
 * Shadow copy of a collapsed-prefix group (Section 4.4).
 *
 * The update engine maintains, in software, the set of original
 * prefixes behind each collapsed prefix.  From that set it derives
 * the group's hardware image — the 2^stride bit-vector and the
 * packed next-hop block — applying longest-prefix-match semantics
 * within the group: each suffix slot takes the next hop of the
 * longest member covering it, exactly the arbitration the withdraw
 * pseudocode of Figure 7 performs ("find the longest prefix p'''
 * ... the next hop corresponding to b must be changed to the next
 * hop of p'''").
 */

#ifndef CHISEL_CORE_SHADOW_HH
#define CHISEL_CORE_SHADOW_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "route/table.hh"

namespace chisel {

/** The hardware image of one group, derived from its members. */
struct GroupImage
{
    /** 2^stride bits packed LSB-first into 64-bit words. */
    std::vector<uint64_t> bits;

    /** One next hop per set bit, in ascending slot order. */
    std::vector<NextHop> hops;

    /** True if no slot is covered (group is empty). */
    bool
    empty() const
    {
        return hops.empty();
    }
};

/**
 * The member set of one collapsed group, with image derivation.
 */
class ShadowGroup
{
  public:
    /**
     * @param base Collapsed (cell base) length.
     * @param stride Collapse stride; members have lengths in
     *        [base, base + stride].
     */
    ShadowGroup(unsigned base, unsigned stride);

    /** Insert or overwrite a member.  @return true if new. */
    bool announce(const Prefix &prefix, NextHop next_hop);

    /** Remove a member.  @return its next hop if it was present. */
    std::optional<NextHop> withdraw(const Prefix &prefix);

    /** Exact member query. */
    std::optional<NextHop> find(const Prefix &prefix) const;

    bool empty() const { return members_.empty(); }
    size_t memberCount() const { return members_.size(); }

    /** All members (ordered by prefix). */
    const std::map<Prefix, NextHop> &members() const { return members_; }

    /**
     * Derive the hardware image: per suffix slot, the next hop of the
     * longest covering member.
     */
    GroupImage computeImage() const;

    /**
     * The longest member covering suffix slot @p slot, if any —
     * the in-group LPM used for matched-length reporting.
     */
    std::optional<Route> longestCover(uint64_t slot) const;

  private:
    unsigned base_;
    unsigned stride_;
    std::map<Prefix, NextHop> members_;
};

} // namespace chisel

#endif // CHISEL_CORE_SHADOW_HH
