/**
 * @file
 * Structured result of one engine update (announce/withdraw/apply).
 *
 * The update path is transactional: an update either applies, applies
 * in a degraded form (routes parked in the spillover TCAM or the
 * software slow path, recovery work performed), or is rejected with
 * the engine state untouched.  The outcome reports which, plus the
 * robustness work the update performed — retries, overflows, slow-path
 * diversions, parity recoveries — so callers and telemetry can see
 * every rare event instead of losing them to logs.
 *
 * UpdateOutcome converts implicitly to its UpdateClass so existing
 * call sites comparing against Figure 14 categories keep working.
 */

#ifndef CHISEL_CORE_UPDATE_OUTCOME_HH
#define CHISEL_CORE_UPDATE_OUTCOME_HH

#include <cstdint>

namespace chisel {

enum class UpdateClass : uint8_t;

/** How an update concluded. */
enum class UpdateStatus : uint8_t
{
    /** Fully applied through the normal hardware path. */
    Applied,

    /**
     * Applied, but correctness now depends on a fallback: routes were
     * diverted to the spillover TCAM past design capacity or to the
     * software slow path, or a recovery/resetup was needed.  Lookups
     * remain correct.
     */
    Degraded,

    /**
     * Not applied; the engine state is unchanged.  @c message names
     * the reason (e.g. a prefix wider than the engine's key width).
     */
    Rejected,
};

/** Short status name ("applied", "degraded", "rejected"). */
const char *updateStatusName(UpdateStatus s);

/**
 * The full result of one announce/withdraw.
 */
struct UpdateOutcome
{
    /** Figure 14 category of the applied update. */
    UpdateClass cls{};

    UpdateStatus status = UpdateStatus::Applied;

    /** Bounded reseed-retry attempts consumed by Index setups. */
    uint32_t setupRetries = 0;

    /** Routes that could not enter the spillover TCAM (full/faulted). */
    uint32_t tcamOverflows = 0;

    /** Routes diverted to the software slow-path map. */
    uint32_t slowPathInserts = 0;

    /**
     * Routes the full slow-path map refused — the hard-degraded case:
     * the route is dropped and the outcome says so (the only rung of
     * the ladder that loses state; see docs/robustness.md).
     */
    uint32_t slowPathRejections = 0;

    /** Parity-error recoveries (cell resetups) this update performed. */
    uint32_t parityRecoveries = 0;

    /** Reason for a rejection; empty otherwise.  Static storage. */
    const char *message = "";

    /** True unless the update was rejected. */
    bool ok() const { return status != UpdateStatus::Rejected; }

    /** True if any degradation machinery engaged. */
    bool
    degraded() const
    {
        return status == UpdateStatus::Degraded;
    }

    /**
     * Backwards compatibility: an outcome compares and passes as its
     * update class (`engine.announce(p, h) == UpdateClass::Spill`).
     */
    operator UpdateClass() const { return cls; }
};

} // namespace chisel

#endif // CHISEL_CORE_UPDATE_OUTCOME_HH
