#include "core/power_model.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "core/engine.hh"

namespace chisel {

ChiselPowerModel::ChiselPowerModel(const Technology &tech)
    : tech_(tech), edram_(tech.edram)
{
}

unsigned
ChiselPowerModel::defaultCellCount(unsigned key_width, unsigned stride)
{
    return static_cast<unsigned>(
        divCeil(key_width, stride + 1));
}

PowerBreakdown
ChiselPowerModel::worstCase(size_t n, const StorageParams &params,
                            double msps) const
{
    PowerBreakdown out;
    const double rate = msps * 1e6;
    unsigned cells = defaultCellCount(params.keyWidth, params.stride);
    size_t n_c = divCeil(n, cells);

    // Per-cell macro sizes, using the worst-case table widths.
    unsigned idx_width = addressBits(n_c);
    uint64_t seg_bits =
        static_cast<uint64_t>(std::ceil(
            params.ratio * static_cast<double>(n_c) / params.k)) *
        idx_width;
    uint64_t filter_bits =
        static_cast<uint64_t>(n_c) * (params.keyWidth + 2);
    unsigned ptr_bits = addressBits(4ull * std::max<size_t>(n, 1));
    uint64_t bv_bits = static_cast<uint64_t>(n_c) *
                       ((uint64_t(1) << params.stride) + ptr_bits);

    // Every lookup touches all cells in parallel: k segment reads,
    // one Filter read, one Bit-vector read per cell.
    double energy_per_lookup_nj =
        cells * (params.k * edram_.accessEnergyNj(seg_bits) +
                 edram_.accessEnergyNj(filter_bits) +
                 edram_.accessEnergyNj(bv_bits));
    out.edramDynamicWatts = rate * energy_per_lookup_nj * 1e-9;

    uint64_t total_bits =
        cells * (params.k * seg_bits + filter_bits + bv_bits);
    out.edramStaticWatts = edram_.staticWatts(total_bits);

    out.logicWatts = tech_.logicFraction *
                     (out.edramDynamicWatts + out.edramStaticWatts);
    return out;
}

PowerBreakdown
ChiselPowerModel::measured(const ChiselEngine &engine,
                           double msps) const
{
    PowerBreakdown out;
    const double rate = msps * 1e6;
    const unsigned k = engine.config().k;

    uint64_t total_bits = 0;
    double energy_per_lookup_nj = 0.0;
    for (size_t i = 0; i < engine.cellCount(); ++i) {
        const SubCell &cell = engine.cell(i);
        uint64_t seg_bits = cell.indexBits() / k;
        energy_per_lookup_nj +=
            k * edram_.accessEnergyNj(seg_bits) +
            edram_.accessEnergyNj(cell.filterBits()) +
            edram_.accessEnergyNj(cell.bitvectorBits());
        total_bits += cell.indexBits() + cell.filterBits() +
                      cell.bitvectorBits();
    }

    out.edramDynamicWatts = rate * energy_per_lookup_nj * 1e-9;
    out.edramStaticWatts = edram_.staticWatts(total_bits);
    out.logicWatts = tech_.logicFraction *
                     (out.edramDynamicWatts + out.edramStaticWatts);
    return out;
}

} // namespace chisel
