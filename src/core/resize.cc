#include "core/resize.hh"

#include <algorithm>

namespace chisel {

namespace {

/** Overwrite the elastic fields of @p c with canonical values. */
void
clearElastic(ChiselConfig &c)
{
    c.spillCapacity = 0;
    c.slowPathCapacity = 0;
    c.capacityHeadroom = 0.0;
    c.minCellCapacity = 0;
    c.dirtyBudgetPerCell = 0;
    c.defaultTtlMs = 0;
}

} // namespace

bool
elasticCompatible(const ChiselConfig &a, const ChiselConfig &b)
{
    ChiselConfig ka = a;
    ChiselConfig kb = b;
    clearElastic(ka);
    clearElastic(kb);
    return ka == kb;
}

uint64_t
elasticFingerprint(const ChiselConfig &config)
{
    ChiselConfig kernel = config;
    clearElastic(kernel);
    return configFingerprint(kernel);
}

ChiselConfig
planResize(const ChiselConfig &current, const ResizeLoad &load)
{
    ChiselConfig grown = current;

    // The spill TCAM must at minimum absorb everything currently
    // overflowed (spill + slow path) with slack, so the rebuilt
    // engine's slow path starts drained.
    grown.spillCapacity =
        std::max(current.spillCapacity * 2,
                 static_cast<size_t>(load.spillCount +
                                     load.slowPathCount + 8));

    if (current.slowPathCapacity > 0)
        grown.slowPathCapacity = current.slowPathCapacity * 2;

    // Per-cell provisioning: the rebuild sizes each cell from its
    // actual route count times capacityHeadroom, so the floor is what
    // guards small cells against post-resize growth.
    grown.minCellCapacity =
        std::max<size_t>(std::max(current.minCellCapacity * 2, size_t{64}),
                         load.routeCount / 4);

    if (current.dirtyBudgetPerCell > 0)
        grown.dirtyBudgetPerCell = current.dirtyBudgetPerCell * 2;

    return grown;
}

} // namespace chisel
