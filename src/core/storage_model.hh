/**
 * @file
 * Worst-case storage models (Sections 4.2, 6.1-6.3).
 *
 * The paper's storage claims are deterministic ("worst-case design
 * paradigm"): a Chisel engine provisioned for n prefixes needs a
 * fixed number of bits regardless of the prefix distribution —
 * Index 3n x log2(n), Filter n x key width, Bit-vector n x
 * (2^stride + pointer).  These functions compute those totals, plus
 * the comparison variants: the naive no-indirection Bloomier (the
 * 20% / 49% claim of Section 4.2) and the CPE-based Chisel (the
 * Figure 9/11 comparisons).  Average-case (measured) numbers come
 * from a built ChiselEngine instead.
 */

#ifndef CHISEL_CORE_STORAGE_MODEL_HH
#define CHISEL_CORE_STORAGE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chisel {

/** Bits per on-chip table of a Chisel instance. */
struct StorageBreakdown
{
    uint64_t indexBits = 0;
    uint64_t filterBits = 0;
    uint64_t bitvectorBits = 0;

    /**
     * Soft-error protection overhead: one even-parity bit per
     * protected word (docs/robustness.md).  Reported separately so
     * the paper-comparable totals stay parity-free.
     */
    uint64_t parityBits = 0;

    uint64_t
    totalBits() const
    {
        return indexBits + filterBits + bitvectorBits;
    }

    /** Parity bits relative to the protected payload. */
    double
    parityOverheadFraction() const
    {
        uint64_t t = totalBits();
        return t == 0 ? 0.0
                      : static_cast<double>(parityBits) /
                            static_cast<double>(t);
    }

    double
    totalMbits() const
    {
        return static_cast<double>(totalBits()) / (1024.0 * 1024.0);
    }
};

/** Design parameters shared by the storage formulas. */
struct StorageParams
{
    unsigned keyWidth = 32;
    unsigned stride = 4;
    unsigned k = 3;
    double ratio = 3.0;
};

/**
 * Worst-case Chisel storage for @p n prefixes with prefix collapsing
 * (Index + Filter + Bit-vector; Result/next hops excluded, §5).
 */
StorageBreakdown chiselWorstCase(size_t n, const StorageParams &params);

/**
 * Worst-case Chisel storage with no wildcard support (Figure 8's
 * configuration: Index + Filter only).
 */
StorageBreakdown chiselNoWildcard(size_t n, const StorageParams &params);

/**
 * Storage of the naive false-positive fix of Section 4.2 — keys
 * stored alongside f(t) in a Result Table of m = ratio*n slots, no
 * pointer indirection.  Used to reproduce the "up to 20% (IPv4) and
 * 49% (IPv6) less storage" claim.
 */
uint64_t naiveNoIndirectionBits(size_t n, const StorageParams &params);

/**
 * Average-case ("sized to fit") Chisel storage: per-cell tables sized
 * exactly for the observed collapsed-group counts, no headroom.  This
 * is the number the paper's average-case bars report; the worst-case
 * formulas above are the deterministic provisioning.
 *
 * @param groups_per_cell Collapsed-group count of each sub-cell.
 */
StorageBreakdown chiselSizedToFit(
    const std::vector<size_t> &groups_per_cell,
    const StorageParams &params);

/**
 * Storage of a Chisel variant using CPE instead of collapsing: the
 * Index and Filter tables grow by the expansion factor and no
 * Bit-vector Table exists (Section 6.2).
 *
 * @param expanded_n Number of prefixes after expansion.
 */
StorageBreakdown chiselWithCpe(size_t expanded_n,
                               const StorageParams &params);

} // namespace chisel

#endif // CHISEL_CORE_STORAGE_MODEL_HH
