/**
 * @file
 * Per-prefix TTL deadlines (docs/robustness.md, "Route lifecycle").
 *
 * The TTL index is deliberately *not* part of the lookup path: it is
 * bookkeeping consulted only by the garbage-collection tick on the
 * control thread.  Expiry is therefore lazy — a route past its
 * deadline keeps resolving until the GC retires it with a
 * journal-visible Expire update — which bounds staleness by the GC
 * interval while keeping lookups wait-free and every removal
 * replayable.
 *
 * Time is a logical millisecond clock owned by the engine (advanced
 * from a steady clock in production, by hand in tests), never wall
 * time: deadlines are decided once, on the writer, and shipped as
 * Expire records, so replicas and replay do not need synchronised
 * clocks.
 */

#ifndef CHISEL_CORE_TTL_HH
#define CHISEL_CORE_TTL_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "route/prefix.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * Deadline table: prefix -> absolute expiry instant on the engine's
 * logical millisecond clock.  Routes without a deadline (no TTL
 * configured, or pinned with kTtlNever) are simply absent.
 */
class TtlIndex
{
  public:
    /** Arm (or re-arm) @p prefix to expire at @p deadline_ms. */
    void arm(const Prefix &prefix, uint64_t deadline_ms);

    /** Drop any deadline for @p prefix (withdraw, expiry, pinning). */
    void disarm(const Prefix &prefix);

    /** True if @p prefix currently carries a deadline. */
    bool armed(const Prefix &prefix) const;

    /** The deadline for @p prefix, or 0 if it carries none. */
    uint64_t deadline(const Prefix &prefix) const;

    /** Number of armed prefixes. */
    size_t size() const { return deadlines_.size(); }

    bool empty() const { return deadlines_.empty(); }

    void clear() { deadlines_.clear(); }

    /**
     * Append up to @p max prefixes whose deadline is <= @p now_ms to
     * @p out.  @return the number appended.  The index itself is not
     * modified: the caller retires each prefix through the normal
     * update path (ChiselEngine::expire), which disarms it.
     */
    size_t collectExpired(uint64_t now_ms, size_t max,
                          std::vector<Prefix> &out) const;

    /** Serialize into a snapshot payload. */
    void saveState(persist::Encoder &enc) const;

    /** Restore from a snapshot payload; throws DecodeError. */
    void loadState(persist::Decoder &dec);

  private:
    std::unordered_map<Prefix, uint64_t, PrefixHasher> deadlines_;
};

} // namespace chisel

#endif // CHISEL_CORE_TTL_HH
