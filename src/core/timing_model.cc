#include "core/timing_model.hh"

namespace chisel {

ChiselTimingModel::ChiselTimingModel(const TimingParams &params)
    : params_(params)
{
}

TimingReport
ChiselTimingModel::report(const StorageParams &sp) const
{
    (void)sp;   // The pipeline shape is parameter-independent.
    TimingReport out;

    // Three sequential on-chip stages (Index; Filter || Bit-vector;
    // plus the hash/encode logic), then the off-chip Result fetch.
    // The Filter and Bit-vector reads are concurrent banks, so they
    // share a stage but count as distinct accesses (the paper's 4).
    out.pipelineStages = 4;
    out.onChipLatencyNs = params_.logicNs + 2 * params_.edramAccessNs;
    out.totalLatencyNs = out.onChipLatencyNs + params_.offChipNs;

    // Pipelined throughput: one lookup completes per slowest stage.
    double stage_ns = params_.edramAccessNs;
    out.throughputMsps = 1000.0 / stage_ns;
    return out;
}

} // namespace chisel
