#include "core/fpga_model.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace chisel {

FpgaResourceModel::FpgaResourceModel(const FpgaDevice &device)
    : device_(device), sram_(SramParams{})
{
}

double
FpgaResourceModel::utilisation(uint64_t used, uint64_t available)
{
    if (available == 0)
        return 0.0;
    return 100.0 * static_cast<double>(used) /
           static_cast<double>(available);
}

FpgaResources
FpgaResourceModel::estimate(size_t prefixes, unsigned cells,
                            unsigned key_width, unsigned stride) const
{
    FpgaResources r;

    // Prototype geometry: ~2 prefixes per collapsed group, so each
    // sub-cell provisions groups = prefixes / (2 * cells); the Index
    // Table uses m/n = 3 across k = 3 segments (one group-count of
    // slots per segment); the Filter Table is double-banked for
    // concurrent lookup and update.
    size_t groups = std::max<size_t>(prefixes / (2 * cells), 1);
    unsigned code_bits = addressBits(2 * groups);   // 14 b at 8K.
    unsigned bv_width = (1u << stride) + code_bits; // 30 b at stride 4.

    uint64_t brams_per_cell =
        3 * sram_.blocksFor(groups, code_bits) +          // Index segs.
        sram_.blocksFor(2 * groups, key_width) +          // Filter.
        sram_.blocksFor(groups, bv_width);                // Bit-vector.

    // Fixed infrastructure: DDR controller FIFOs, PCI interface
    // buffers, spillover TCAM emulation.
    const uint64_t fixed_brams = 36;
    r.blockRams = cells * brams_per_cell + fixed_brams;

    // Logic estimates calibrated to the prototype totals: per cell,
    // three H3 XOR trees, the key comparator, the popcount/adder and
    // pipeline registers; plus the top-level (priority encoder, host
    // interface, DDR control).
    r.luts = cells * (1500ull + 25ull * key_width) + 1500;
    r.flipFlops = cells * (2000ull + 40ull * key_width) + 1000;
    r.slices = (r.luts + r.flipFlops) * 3 / 7;

    // IO: PCI + DDR buses dominate; key/result ports scale with the
    // key width.
    r.iobs = 606 + 4ull * key_width;

    return r;
}

} // namespace chisel
