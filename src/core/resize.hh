/**
 * @file
 * Capacity-driven resize planning (docs/robustness.md).
 *
 * A ChiselConfig splits into a *geometry kernel* — key width, stride,
 * k, partitioning, damping, seed — that determines how keys hash and
 * collapse, and *elastic* capacity fields — spill TCAM size, slow-path
 * bound, per-cell headroom — that only bound how much the tables hold.
 * A live resize changes elastic fields exclusively: the grown engine
 * is a faithful re-plan of the same routing state with more room, so a
 * snapshot or journal written before the resize is still meaningful
 * after it.  elasticFingerprint() hashes the kernel alone and is the
 * identity that survives a resize; configFingerprint() (engine.hh)
 * remains the strict full-config identity.
 */

#ifndef CHISEL_CORE_RESIZE_HH
#define CHISEL_CORE_RESIZE_HH

#include <cstddef>
#include <cstdint>

#include "core/engine.hh"

namespace chisel {

/** Occupancy the resize planner sizes the grown engine against. */
struct ResizeLoad
{
    size_t routeCount = 0;     ///< Total routes served.
    size_t spillCount = 0;     ///< Entries in the spill TCAM.
    size_t slowPathCount = 0;  ///< Entries pinned in the slow path.
};

/**
 * True iff @p a and @p b share the same geometry kernel — i.e. one
 * could have been produced from the other by a live resize.  Elastic
 * fields (spillCapacity, slowPathCapacity, capacityHeadroom,
 * minCellCapacity, dirtyBudgetPerCell, defaultTtlMs) are ignored.
 */
bool elasticCompatible(const ChiselConfig &a, const ChiselConfig &b);

/**
 * Fingerprint over the geometry kernel only: stable across live
 * resizes.  Journals and replication sessions that must survive a
 * capacity change stamp this instead of configFingerprint().
 */
uint64_t elasticFingerprint(const ChiselConfig &config);

/**
 * Plan a grown configuration for @p current under @p load: elastic
 * capacities roughly double, scaled up further if the observed
 * occupancy already exceeds what doubling would provide.  Returns a
 * config elasticCompatible with @p current; returns @p current
 * unchanged only if no field can grow (slow-path unbounded and all
 * capacities already dwarf the load).
 */
ChiselConfig planResize(const ChiselConfig &current,
                        const ResizeLoad &load);

} // namespace chisel

#endif // CHISEL_CORE_RESIZE_HH
