#include "core/bitvector_table.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"
#include "persist/codec.hh"
#include "telemetry/trace.hh"

namespace chisel {

BitVectorTable::BitVectorTable(size_t capacity, unsigned stride,
                               unsigned pointer_bits)
    : capacity_(capacity),
      vectorBits_(1u << stride),
      wordsPerVector_(std::max(1u, vectorBits_ / 64)),
      pointerBits_(pointer_bits),
      words_(capacity * wordsPerVector_, 0),
      pointers_(capacity, 0),
      parity_(capacity, 0)
{
    panicIf(stride > 16, "BitVectorTable stride too large");
}

void
BitVectorTable::setVector(uint32_t slot,
                          const std::vector<uint64_t> &bits,
                          uint32_t pointer)
{
    panicIf(slot >= capacity_, "BitVectorTable set out of range");
    panicIf(bits.size() != wordsPerVector_,
            "BitVectorTable vector word-count mismatch");
    CHISEL_TRACE_WRITE(BitVector, slot, (slotWidthBits() + 7) / 8);
    std::copy(bits.begin(), bits.end(),
              words_.begin() + static_cast<size_t>(slot) * wordsPerVector_);
    pointers_[slot] = pointer;
    parity_[slot] = computeParity(slot);
}

void
BitVectorTable::clearVector(uint32_t slot)
{
    panicIf(slot >= capacity_, "BitVectorTable clear out of range");
    CHISEL_TRACE_WRITE(BitVector, slot, (slotWidthBits() + 7) / 8);
    auto begin = words_.begin() + static_cast<size_t>(slot) * wordsPerVector_;
    std::fill(begin, begin + wordsPerVector_, 0);
    pointers_[slot] = 0;
    parity_[slot] = 0;
}

uint8_t
BitVectorTable::computeParity(uint32_t slot) const
{
    const uint64_t *v = &words_[static_cast<size_t>(slot) * wordsPerVector_];
    unsigned ones = popcount64(pointers_[slot]);
    for (unsigned w = 0; w < wordsPerVector_; ++w)
        ones += popcount64(v[w]);
    return static_cast<uint8_t>(ones & 1u);
}

bool
BitVectorTable::parityOk(uint32_t slot) const
{
    panicIf(slot >= capacity_, "BitVectorTable parity out of range");
    return computeParity(slot) == parity_[slot];
}

void
BitVectorTable::flipBit(uint32_t slot, uint64_t bit)
{
    panicIf(slot >= capacity_, "BitVectorTable flip out of range");
    uint64_t index = bit % vectorBits_;
    uint64_t *v = &words_[static_cast<size_t>(slot) * wordsPerVector_];
    v[index / 64] ^= uint64_t(1) << (index % 64);
}

bool
BitVectorTable::bit(uint32_t slot, uint64_t index) const
{
    panicIf(slot >= capacity_ || index >= vectorBits_,
            "BitVectorTable bit out of range");
    // One hardware access fetches the whole entry (vector + pointer);
    // the subsequent onesUpTo()/pointer() calls of the lookup path
    // reuse that word, so only this read is traced.
    CHISEL_TRACE_ACCESS(BitVector, slot, (slotWidthBits() + 7) / 8);
    const uint64_t *v = &words_[static_cast<size_t>(slot) * wordsPerVector_];
    return (v[index / 64] >> (index % 64)) & 1;
}

unsigned
BitVectorTable::onesCount(uint32_t slot) const
{
    const uint64_t *v = &words_[static_cast<size_t>(slot) * wordsPerVector_];
    unsigned total = 0;
    for (unsigned w = 0; w < wordsPerVector_; ++w)
        total += popcount64(v[w]);
    return total;
}

unsigned
BitVectorTable::onesUpTo(uint32_t slot, uint64_t index) const
{
    panicIf(slot >= capacity_ || index >= vectorBits_,
            "BitVectorTable rank out of range");
    const uint64_t *v = &words_[static_cast<size_t>(slot) * wordsPerVector_];
    unsigned total = 0;
    uint64_t word = index / 64;
    for (uint64_t w = 0; w < word; ++w)
        total += popcount64(v[w]);
    unsigned rem = static_cast<unsigned>(index % 64) + 1;
    total += popcount64(v[word] &
                        (rem == 64 ? ~uint64_t(0) : lowMask(rem)));
    return total;
}

uint64_t
BitVectorTable::storageBits() const
{
    return static_cast<uint64_t>(capacity_) * slotWidthBits();
}

void
BitVectorTable::saveState(persist::Encoder &enc) const
{
    enc.u64(capacity_);
    enc.u32(vectorBits_);
    for (uint64_t w : words_)
        enc.u64(w);
    for (uint32_t p : pointers_)
        enc.u32(p);
}

void
BitVectorTable::loadState(persist::Decoder &dec)
{
    if (dec.u64() != capacity_ || dec.u32() != vectorBits_)
        throw persist::DecodeError("bit-vector table: geometry mismatch");
    for (uint64_t &w : words_)
        w = dec.u64();
    for (uint32_t &p : pointers_)
        p = dec.u32();
    for (uint32_t slot = 0; slot < capacity_; ++slot)
        parity_[slot] = computeParity(slot);
}

} // namespace chisel
