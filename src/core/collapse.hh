/**
 * @file
 * Prefix-collapse planning (Section 4.3.3).
 *
 * The greedy algorithm walks the populated prefix lengths in
 * ascending order: it opens a sub-cell at the shortest uncovered
 * populated length l and assigns every populated length in
 * [l, l + stride] to it.  Each sub-cell therefore stores prefixes of
 * up to stride+1 distinct lengths, disambiguated by its 2^stride
 * bit-vectors; the number of unique hash tables drops from one per
 * length to one per sub-cell.
 *
 * For a live router the plan must also cover lengths that are not in
 * the initial table — a later announce may use any length — so the
 * planner optionally fills the gaps between the greedy cells with
 * small filler cells, keeping every length in [1, key width]
 * serviceable without a TCAM detour.
 */

#ifndef CHISEL_CORE_COLLAPSE_HH
#define CHISEL_CORE_COLLAPSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "route/table.hh"

namespace chisel {

/** One sub-cell's length interval. */
struct CellRange
{
    /** Collapsed (base) length: prefixes are shortened to this. */
    unsigned base = 0;

    /** Longest original length assigned to this cell (inclusive). */
    unsigned top = 0;

    /** True if the range was added only to cover a gap for updates. */
    bool filler = false;

    bool
    covers(unsigned len) const
    {
        return len >= base && len <= top;
    }

    bool operator==(const CellRange &other) const = default;
};

/** A complete collapse plan: disjoint ranges in ascending order. */
struct CollapsePlan
{
    std::vector<CellRange> cells;

    /** Index of the cell covering @p len, or -1. */
    int cellFor(unsigned len) const;

    /** Human-readable form, e.g. "[8-12][13-17]...". */
    std::string str() const;
};

/**
 * Build a collapse plan.
 *
 * @param populated Ascending populated prefix lengths (length 0 — the
 *        default route — is held in a register, not a sub-cell, and
 *        is ignored here).
 * @param stride Maximum number of collapsed bits (so each cell covers
 *        stride+1 lengths).
 * @param key_width Key width in bits; with @p cover_all_lengths the
 *        plan covers every length in [1, key_width].
 * @param cover_all_lengths Add filler cells over unpopulated gaps so
 *        dynamic updates can announce any length.
 */
CollapsePlan makeCollapsePlan(const std::vector<unsigned> &populated,
                              unsigned stride, unsigned key_width,
                              bool cover_all_lengths = true);

/**
 * Count the distinct collapsed groups each cell of @p plan would
 * hold for @p table — the sizing input for average-case storage
 * (chiselSizedToFit) without building an engine.
 */
std::vector<size_t> countGroupsPerCell(const RoutingTable &table,
                                       const CollapsePlan &plan);

} // namespace chisel

#endif // CHISEL_CORE_COLLAPSE_HH
