#include "core/subcell.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "hash/mix.hh"
#include "persist/codec.hh"

namespace chisel {

const char *
updateClassName(UpdateClass c)
{
    switch (c) {
      case UpdateClass::Withdraw: return "Withdraws";
      case UpdateClass::RouteFlap: return "Route Flaps";
      case UpdateClass::NextHopChange: return "Next-hops";
      case UpdateClass::AddCollapsed: return "Add PC";
      case UpdateClass::SingletonInsert: return "Singletons";
      case UpdateClass::Resetup: return "Resetups";
      case UpdateClass::Spill: return "Spills";
      case UpdateClass::NoOp: return "No-ops";
      case UpdateClass::Expire: return "Expires";
    }
    return "?";
}

SubCell::SubCell(const Config &config, ResultTable *results)
    : config_(config),
      results_(results),
      index_(config.capacity,
             BloomierConfig{config.k, config.ratio, config.range.base,
                            config.partitions, config.seed}),
      filter_(config.capacity,
              std::min(config.range.base, config.keyWidth)),
      bitvec_(config.capacity, config.stride, config.resultPointerBits),
      damper_(config.damping)
{
    panicIf(results == nullptr, "SubCell requires a ResultTable");
    panicIf(config.range.base == 0,
            "SubCell cannot serve length 0 (default route)");
    panicIf(config.range.top > config.range.base + config.stride,
            "SubCell range wider than the stride allows");
}

void
SubCell::refreshImage(const Key128 &ckey, Group &group)
{
    (void)ckey;
    GroupImage image = group.shadow.computeImage();
    bool was_dirty = filter_.dirty(group.slot);

    if (image.empty()) {
        // Withdrawn group: clear the vector and mark the entry dirty
        // but retain the Index/Filter entries *and* the result block
        // (Section 4.4.1) — a route flap restores everything with a
        // handful of writes.  The block is reclaimed when the group
        // is purged or dismantled.
        bitvec_.clearVector(group.slot);
        ++writes_.bitvectorWrites;
        if (!was_dirty) {
            filter_.setDirty(group.slot, true);
            ++writes_.filterWrites;
            ++dirtyCount_;
        }
        return;
    }

    if (was_dirty) {
        filter_.setDirty(group.slot, false);
        ++writes_.filterWrites;
        --dirtyCount_;
    }

    uint32_t needed = static_cast<uint32_t>(image.hops.size());
    bool fresh_block =
        group.resultSize == 0 || needed > group.resultSize;
    if (fresh_block) {
        // Over-provisioned growth; the old block returns to the
        // allocator (Section 4.3.2).
        if (group.resultSize > 0)
            results_->free(group.resultBase, group.resultSize);
        group.resultBase = results_->allocate(needed);
        group.resultSize = ResultTable::grantedSize(needed);
    }
    // Write only the slots that changed — the shadow copy transfers
    // just the modified words to hardware (Section 4.4).
    for (uint32_t i = 0; i < needed; ++i) {
        if (fresh_block ||
            results_->read(group.resultBase + i) != image.hops[i]) {
            results_->write(group.resultBase + i, image.hops[i]);
            ++writes_.resultWrites;
        }
    }
    bitvec_.setVector(group.slot, image.bits, group.resultBase);
    ++writes_.bitvectorWrites;
}

void
SubCell::dismantleGroup(const Key128 &ckey,
                        std::vector<Route> *displaced)
{
    auto it = groups_.find(ckey);
    panicIf(it == groups_.end(), "dismantleGroup: unknown group");
    Group &g = it->second;

    if (displaced) {
        for (const auto &[p, nh] : g.shadow.members())
            displaced->push_back(Route{p, nh});
    }
    routes_ -= g.shadow.memberCount();
    // The guard against dirtyCount_ == 0 matters during parity
    // recovery: a corrupted dirty bit must not underflow the count.
    if (filter_.dirty(g.slot) && dirtyCount_ > 0)
        --dirtyCount_;
    if (g.resultSize > 0)
        results_->free(g.resultBase, g.resultSize);
    bitvec_.clearVector(g.slot);
    filter_.release(g.slot);
    index_.erase(ckey);   // No-op if a rebuild already evicted it.
    groups_.erase(it);
}

void
SubCell::noteRemoved(const Prefix &prefix)
{
    // Bounded memory for flap classification; on overflow the window
    // simply restarts (mis-classifying a flap as Add PC is harmless).
    if (recentlyRemoved_.size() >= (1u << 16))
        recentlyRemoved_.clear();
    recentlyRemoved_.insert(prefix);
}

void
SubCell::buildFrom(const std::vector<Route> &routes,
                   std::vector<Route> &displaced)
{
    // Group the routes by collapsed prefix.
    std::unordered_map<Key128, std::vector<Route>, Key128Hasher> bins;
    for (const auto &r : routes) {
        panicIf(!coversLength(r.prefix.length()),
                "SubCell::buildFrom route with uncovered length");
        bins[collapsedKey(r.prefix)].push_back(r);
    }

    for (auto &[ckey, members] : bins) {
        int64_t slot = filter_.allocate();
        if (slot < 0) {
            // Capacity exceeded: these members go to the TCAM.
            for (const auto &r : members)
                displaced.push_back(r);
            continue;
        }
        auto [it, inserted] = groups_.emplace(
            ckey, Group(static_cast<uint32_t>(slot),
                        config_.range.base, config_.stride));
        panicIf(!inserted, "buildFrom: duplicate group");
        for (const auto &r : members) {
            it->second.shadow.announce(r.prefix, r.nextHop);
            ++routes_;
        }
        filter_.set(static_cast<uint32_t>(slot), ckey);
    }

    // One bulk Bloomier setup over all groups, with the bounded
    // reseed-retry ladder; stragglers leave through @p displaced.
    resetupIndex(&displaced);

    for (auto &[ckey, group] : groups_)
        refreshImage(ckey, group);
}

size_t
SubCell::resetupIndex(std::vector<Route> *displaced)
{
    std::vector<std::pair<Key128, uint32_t>> entries;
    entries.reserve(groups_.size());
    for (const auto &[ckey, g] : groups_)
        entries.emplace_back(ckey, g.slot);

    auto spilled = index_.setup(entries);
    unsigned attempt = 0;
    while (!spilled.empty() && attempt < config_.setupRetries) {
        // Bounded retry: a fresh hash seed redraws the hypergraph, so
        // a peeling failure is very unlikely to repeat (Section 4.2
        // picks table sizes where setup "almost always" succeeds).
        ++attempt;
        ++faults_.setupRetries;
        index_.reseed(
            mix64(index_.seed() + 0x9e3779b97f4a7c15ULL * attempt));
        spilled = index_.setup(entries);
    }
    for (const auto &[ckey, code] : spilled) {
        (void)code;
        dismantleGroup(ckey, displaced);
    }
    return spilled.size();
}

void
SubCell::recoverParity(std::vector<Route> &displaced)
{
    parityPending_ = false;
    ++faults_.parityRecoveries;
    CHISEL_FLIGHT_EVENT(ParityRecovery, 0, faults_.parityRecoveries, 0);

    // Recover-by-resetup: every hardware word is re-derived from the
    // shadow copy.  Stage 1 — the Index (slot codes are preserved, so
    // surviving groups keep their Filter/Bit-vector locations).
    resetupIndex(&displaced);

    // Stage 2 — the Filter: rewrite owned slots (restoring key, valid,
    // dirty and parity), wipe unowned ones.
    std::vector<uint8_t> owned(config_.capacity, 0);
    dirtyCount_ = 0;
    for (auto &[ckey, g] : groups_) {
        owned[g.slot] = 1;
        filter_.set(g.slot, ckey);
        ++writes_.filterWrites;
        if (g.shadow.empty()) {
            filter_.setDirty(g.slot, true);
            ++dirtyCount_;
            if (dirtyCount_ > dirtyPeak_)
                dirtyPeak_ = dirtyCount_;
        }
    }
    for (uint32_t s = 0; s < config_.capacity; ++s) {
        if (!owned[s]) {
            filter_.resetSlot(s);
            bitvec_.clearVector(s);
        }
    }

    // Stage 3 — Bit-vectors and Result blocks, written without the
    // usual read-compare diff: a corrupted word that happens to equal
    // its correct value would otherwise keep broken parity.
    for (auto &[ckey, g] : groups_) {
        (void)ckey;
        GroupImage image = g.shadow.computeImage();
        if (image.empty()) {
            bitvec_.clearVector(g.slot);
            ++writes_.bitvectorWrites;
            // Scrub the retained result block too; a flap restore
            // rewrites its contents, but parity must hold meanwhile.
            for (uint32_t i = 0; i < g.resultSize; ++i)
                results_->write(g.resultBase + i, kNoRoute);
            continue;
        }
        uint32_t needed = static_cast<uint32_t>(image.hops.size());
        if (g.resultSize == 0 || needed > g.resultSize) {
            if (g.resultSize > 0)
                results_->free(g.resultBase, g.resultSize);
            g.resultBase = results_->allocate(needed);
            g.resultSize = ResultTable::grantedSize(needed);
        }
        for (uint32_t i = 0; i < needed; ++i) {
            results_->write(g.resultBase + i, image.hops[i]);
            ++writes_.resultWrites;
        }
        bitvec_.setVector(g.slot, image.bits, g.resultBase);
        ++writes_.bitvectorWrites;
    }
}

size_t
SubCell::verifyParity() const
{
    size_t bad = 0;
    for (size_t s = 0; s < index_.slots(); ++s) {
        if (!index_.parityOk(s))
            ++bad;
    }
    for (uint32_t s = 0; s < config_.capacity; ++s) {
        if (!filter_.parityOk(s))
            ++bad;
        if (!bitvec_.parityOk(s))
            ++bad;
    }
    if (bad > 0) {
        faults_.parityDetected += bad;
        parityPending_ = true;
    }
    return bad;
}

void
SubCell::corruptIndexBit(fault::FaultInjector &injector)
{
    if (index_.slots() == 0)
        return;
    index_.flipSlotBit(
        static_cast<size_t>(injector.draw(index_.slots())),
        static_cast<unsigned>(
            injector.draw(std::max(1u, index_.slotWidthBits()))));
}

void
SubCell::corruptFilterBit(fault::FaultInjector &injector)
{
    if (config_.capacity == 0)
        return;
    filter_.flipKeyBit(
        static_cast<uint32_t>(injector.draw(config_.capacity)),
        static_cast<unsigned>(injector.draw(Key128::maxBits)));
}

void
SubCell::corruptBitVectorBit(fault::FaultInjector &injector)
{
    if (config_.capacity == 0)
        return;
    bitvec_.flipBit(
        static_cast<uint32_t>(injector.draw(config_.capacity)),
        injector.draw(uint64_t(1) << config_.stride));
}

SubCell::Hit
SubCell::lookup(const Key128 &key) const
{
    Hit out;
    const unsigned base = config_.range.base;

    // Access 1: Index Table (k segments read in parallel).  Each
    // parity check below rides along with the access it guards — it
    // adds no extra table reads, so traced access counts are
    // unchanged from the fault-free pipeline.
    Key128 ckey = key.masked(base);
    bool parity = true;
    uint32_t code = index_.lookupCode(ckey, &parity);
    if (!parity)
        return softLookup(key, ckey);
    if (code >= config_.capacity)
        return out;   // Garbage code for an absent key.

    // Access 2: Filter Table — the false-positive check.
    if (!filter_.parityOk(code))
        return softLookup(key, ckey);
    if (!filter_.matches(code, ckey))
        return out;

    // Access 3: Bit-vector Table.
    if (!bitvec_.parityOk(code))
        return softLookup(key, ckey);
    unsigned avail = std::min(config_.stride,
                              Key128::maxBits - base);
    uint64_t v = key.extract(base, avail)
                 << (config_.stride - avail);
    if (!bitvec_.bit(code, v))
        return out;

    // Access 4: Result Table (off-chip), pointer + popcount offset.
    unsigned offset = bitvec_.onesUpTo(code, v);
    uint32_t addr = bitvec_.pointer(code) + offset - 1;
    if (!results_->parityOk(addr))
        return softLookup(key, ckey);
    NextHop nh = results_->read(addr);

    out.hit = true;
    out.nextHop = nh;

    // Matched length comes from the shadow state (reporting only;
    // the hardware result is the next hop itself).
    auto it = groups_.find(ckey);
    panicIf(it == groups_.end(),
            "filter matched a key with no shadow group");
    auto cover = it->second.shadow.longestCover(v);
    panicIf(!cover.has_value(),
            "bit-vector hit with no covering shadow member");
    out.matchedLength = cover->prefix.length();
    return out;
}

SubCell::Hit
SubCell::softLookup(const Key128 &key, const Key128 &ckey) const
{
    // A parity error was detected on the hardware path: serve the
    // lookup from the shadow copy (correct by construction) and flag
    // the cell so the engine runs recoverParity() before its next
    // update.
    ++faults_.parityDetected;
    parityPending_ = true;

    Hit out;
    auto it = groups_.find(ckey);
    if (it == groups_.end())
        return out;
    const unsigned base = config_.range.base;
    unsigned avail = std::min(config_.stride, Key128::maxBits - base);
    uint64_t v = key.extract(base, avail) << (config_.stride - avail);
    auto cover = it->second.shadow.longestCover(v);
    if (!cover.has_value())
        return out;
    out.hit = true;
    out.nextHop = cover->nextHop;
    out.matchedLength = cover->prefix.length();
    return out;
}

UpdateClass
SubCell::announce(const Prefix &prefix, NextHop next_hop,
                  std::vector<Route> &displaced)
{
    panicIf(!coversLength(prefix.length()),
            "SubCell::announce uncovered length");
    Key128 ckey = collapsedKey(prefix);
    damper_.advance();

    auto it = groups_.find(ckey);
    if (it != groups_.end()) {
        Group &g = it->second;
        bool was_dirty = filter_.dirty(g.slot);

        UpdateClass cls;
        if (g.shadow.find(prefix)) {
            cls = UpdateClass::NextHopChange;
        } else if (was_dirty || recentlyRemoved_.contains(prefix)) {
            cls = UpdateClass::RouteFlap;
            recentlyRemoved_.erase(prefix);
            // A flap restore is the second half of a flap cycle:
            // charge the group's penalty counter (the withdraw
            // charged the first half).
            damper_.penalize(ckey);
            if (damper_.suppressed(ckey))
                ++health_.suppressedFlaps;
        } else {
            cls = UpdateClass::AddCollapsed;
        }

        if (g.shadow.announce(prefix, next_hop))
            ++routes_;
        refreshImage(ckey, g);
        return cls;
    }

    // New collapsed prefix: needs a Filter slot and an Index insert.
    int64_t slot = filter_.allocate();
    if (slot < 0) {
        purgeDirty();
        slot = filter_.allocate();
    }
    if (slot < 0) {
        displaced.push_back(Route{prefix, next_hop});
        return UpdateClass::Spill;
    }

    auto result = index_.insert(ckey, static_cast<uint32_t>(slot));
    panicIf(result.method == BloomierFilter::InsertMethod::Duplicate,
            "Index Table and shadow groups out of sync");

    // Transactional commit: record the new route in the shadow state
    // *first*, so that whatever the Index setup does below, every
    // route is accounted for — either placed in this cell or handed
    // back through @p displaced.  Nothing is half-applied.
    auto [git, inserted] = groups_.emplace(
        ckey, Group(static_cast<uint32_t>(slot),
                    config_.range.base, config_.stride));
    panicIf(!inserted, "announce: duplicate group emplace");
    filter_.set(static_cast<uint32_t>(slot), ckey);
    ++writes_.filterWrites;
    git->second.shadow.announce(prefix, next_hop);
    ++routes_;

    if (result.method == BloomierFilter::InsertMethod::Failed ||
        !result.spilled.empty()) {
        // The insert forced a rebuild that could not place every
        // group.  Re-run the full setup with the bounded reseed-retry
        // ladder; groups that still fail (possibly the new one) are
        // dismantled into @p displaced.
        resetupIndex(&displaced);
        auto self = groups_.find(ckey);
        if (self == groups_.end())
            return UpdateClass::Spill;   // New route is in displaced.
        refreshImage(ckey, self->second);
        return UpdateClass::Resetup;
    }

    refreshImage(ckey, git->second);
    return result.method == BloomierFilter::InsertMethod::Singleton
               ? UpdateClass::SingletonInsert
               : UpdateClass::Resetup;
}

UpdateClass
SubCell::withdraw(const Prefix &prefix)
{
    if (!coversLength(prefix.length()))
        return UpdateClass::NoOp;
    Key128 ckey = collapsedKey(prefix);
    damper_.advance();
    auto it = groups_.find(ckey);
    if (it == groups_.end())
        return UpdateClass::NoOp;

    auto removed = it->second.shadow.withdraw(prefix);
    if (!removed)
        return UpdateClass::NoOp;

    --routes_;
    noteRemoved(prefix);
    if (!config_.retainDirtyGroups && it->second.shadow.empty()) {
        // Ablation mode: no dirty bit — the emptied group leaves the
        // Index Table immediately, so a flap pays a full re-insert.
        dismantleGroup(ckey, nullptr);
        return UpdateClass::Withdraw;
    }
    bool emptied = it->second.shadow.empty();
    refreshImage(ckey, it->second);
    if (emptied) {
        // The group just went dirty: charge its flap penalty and make
        // room if the retention budget is exceeded.
        damper_.penalize(ckey);
        enforceDirtyBudget();
    }
    // Peak is stamped *after* enforcement, so with a budget set it is
    // the guarantee "retention never exceeded the budget between
    // updates", not a transient high-water mark mid-eviction.
    if (dirtyCount_ > dirtyPeak_)
        dirtyPeak_ = dirtyCount_;
    return UpdateClass::Withdraw;
}

void
SubCell::enforceDirtyBudget()
{
    if (config_.dirtyBudget == 0)
        return;
    while (dirtyCount_ > config_.dirtyBudget) {
        // Decay-ordered eviction: the dirty group with the lowest
        // decayed penalty is the least likely to flap back, so its
        // state is the cheapest to sacrifice.  Slot order breaks ties
        // so the choice is deterministic under replay.
        const Key128 *victim = nullptr;
        double best = 0.0;
        uint32_t best_slot = 0;
        for (const auto &[ckey, g] : groups_) {
            if (!filter_.dirty(g.slot))
                continue;
            double p = damper_.penalty(ckey);
            if (victim == nullptr || p < best ||
                (p == best && g.slot < best_slot)) {
                victim = &ckey;
                best = p;
                best_slot = g.slot;
            }
        }
        if (victim == nullptr)
            break;   // Dirty bits and count disagree; scrub reconciles.
        Key128 evict = *victim;
        dismantleGroup(evict, nullptr);
        ++health_.dirtyEvictions;
    }
}

std::optional<NextHop>
SubCell::find(const Prefix &prefix) const
{
    if (!coversLength(prefix.length()))
        return std::nullopt;
    auto it = groups_.find(collapsedKey(prefix));
    if (it == groups_.end())
        return std::nullopt;
    return it->second.shadow.find(prefix);
}

void
SubCell::exportRoutes(std::vector<Route> &out) const
{
    for (const auto &[ckey, g] : groups_) {
        (void)ckey;
        for (const auto &[p, nh] : g.shadow.members())
            out.push_back(Route{p, nh});
    }
}

size_t
SubCell::purgeDirty()
{
    std::vector<std::pair<uint32_t, Key128>> dirty;
    for (const auto &[ckey, g] : groups_) {
        if (filter_.dirty(g.slot))
            dirty.emplace_back(g.slot, ckey);
    }
    // Slot order, not map order: dismantling releases Filter slots
    // into the free list, and journal replay (docs/persistence.md)
    // must reproduce that order byte-for-byte on an engine whose map
    // was populated in a different insertion sequence.
    std::sort(dirty.begin(), dirty.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[slot, ckey] : dirty) {
        (void)slot;
        dismantleGroup(ckey, nullptr);
    }
    return dirty.size();
}

bool
SubCell::selfCheck() const
{
    if (!index_.selfCheck())
        return false;
    const unsigned base = config_.range.base;
    unsigned avail = std::min(config_.stride, Key128::maxBits - base);

    for (const auto &[ckey, g] : groups_) {
        GroupImage image = g.shadow.computeImage();
        size_t hop = 0;
        for (uint64_t v = 0; v < (uint64_t(1) << config_.stride); ++v) {
            bool set = (image.bits[v / 64] >> (v % 64)) & 1;
            if (!set)
                continue;
            Key128 key = ckey;
            key.deposit(base, avail, v >> (config_.stride - avail));
            Hit h = lookup(key);
            if (!h.hit || h.nextHop != image.hops[hop])
                return false;
            ++hop;
        }
    }
    return true;
}

void
SubCell::saveState(persist::Encoder &enc) const
{
    index_.saveState(enc);
    filter_.saveState(enc);
    bitvec_.saveState(enc);

    // Canonical (sorted) order for the hashed containers: a restored
    // cell must re-serialize byte-identically to its source image.
    std::vector<const Key128 *> ckeys;
    ckeys.reserve(groups_.size());
    for (const auto &[ckey, g] : groups_)
        ckeys.push_back(&ckey);
    std::sort(ckeys.begin(), ckeys.end(),
              [](const Key128 *a, const Key128 *b) { return *a < *b; });

    enc.u64(groups_.size());
    for (const Key128 *ckey : ckeys) {
        const Group &g = groups_.at(*ckey);
        enc.key(*ckey);
        enc.u32(g.slot);
        enc.u32(g.resultBase);
        enc.u32(g.resultSize);
        const auto &members = g.shadow.members();
        enc.u64(members.size());
        for (const auto &[prefix, hop] : members) {
            enc.prefix(prefix);
            enc.u32(hop);
        }
    }

    std::vector<Prefix> removed(recentlyRemoved_.begin(),
                                recentlyRemoved_.end());
    std::sort(removed.begin(), removed.end());
    enc.u64(removed.size());
    for (const Prefix &p : removed)
        enc.prefix(p);

    enc.u64(routes_);
    enc.u64(dirtyCount_);
    enc.u64(writes_.bitvectorWrites);
    enc.u64(writes_.resultWrites);
    enc.u64(writes_.filterWrites);
    enc.u64(faults_.parityDetected);
    enc.u64(faults_.parityRecoveries);
    enc.u64(faults_.setupRetries);
    enc.boolean(parityPending_);

    damper_.saveState(enc);
    enc.u64(dirtyPeak_);
    enc.u64(health_.dirtyEvictions);
    enc.u64(health_.suppressedFlaps);
}

void
SubCell::loadState(persist::Decoder &dec)
{
    index_.loadState(dec);
    filter_.loadState(dec);
    bitvec_.loadState(dec);

    groups_.clear();
    uint64_t group_count = dec.count(32);
    if (group_count > config_.capacity)
        throw persist::DecodeError("subcell: group count over capacity");
    for (uint64_t i = 0; i < group_count; ++i) {
        Key128 ckey = dec.key();
        uint32_t slot = dec.u32();
        if (slot >= filter_.capacity() || !filter_.valid(slot))
            throw persist::DecodeError("subcell: group slot invalid");
        auto [it, inserted] = groups_.emplace(
            ckey, Group(slot, config_.range.base, config_.stride));
        if (!inserted)
            throw persist::DecodeError("subcell: duplicate group key");
        Group &g = it->second;
        g.resultBase = dec.u32();
        g.resultSize = dec.u32();
        uint64_t members = dec.count(21);
        for (uint64_t m = 0; m < members; ++m) {
            Prefix prefix = dec.prefix();
            NextHop hop = dec.u32();
            if (!coversLength(prefix.length()) ||
                collapsedKey(prefix) != ckey)
                throw persist::DecodeError(
                    "subcell: member outside its group");
            if (!g.shadow.announce(prefix, hop))
                throw persist::DecodeError("subcell: duplicate member");
        }
    }

    recentlyRemoved_.clear();
    uint64_t removed = dec.count(17);
    for (uint64_t i = 0; i < removed; ++i) {
        Prefix p = dec.prefix();
        if (!coversLength(p.length()))
            throw persist::DecodeError(
                "subcell: flap-history prefix outside cell");
        recentlyRemoved_.insert(p);
    }

    routes_ = dec.u64();
    dirtyCount_ = dec.u64();
    writes_.bitvectorWrites = dec.u64();
    writes_.resultWrites = dec.u64();
    writes_.filterWrites = dec.u64();
    faults_.parityDetected = dec.u64();
    faults_.parityRecoveries = dec.u64();
    faults_.setupRetries = dec.u64();
    parityPending_ = dec.boolean();

    damper_.loadState(dec);
    dirtyPeak_ = dec.u64();
    health_.dirtyEvictions = dec.u64();
    health_.suppressedFlaps = dec.u64();
    if (dirtyPeak_ < dirtyCount_)
        throw persist::DecodeError("subcell: dirty peak below count");

    // Cross-check the derived counters against the reloaded groups:
    // a corrupted-but-CRC-passing image must not leave the cell
    // internally inconsistent.
    size_t live_routes = 0;
    size_t dirty = 0;
    for (const auto &[ckey, g] : groups_) {
        live_routes += g.shadow.memberCount();
        if (filter_.dirty(g.slot))
            ++dirty;
    }
    if (routes_ != live_routes || dirtyCount_ != dirty)
        throw persist::DecodeError("subcell: counter cross-check failed");
}

} // namespace chisel
