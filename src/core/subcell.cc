#include "core/subcell.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"

namespace chisel {

const char *
updateClassName(UpdateClass c)
{
    switch (c) {
      case UpdateClass::Withdraw: return "Withdraws";
      case UpdateClass::RouteFlap: return "Route Flaps";
      case UpdateClass::NextHopChange: return "Next-hops";
      case UpdateClass::AddCollapsed: return "Add PC";
      case UpdateClass::SingletonInsert: return "Singletons";
      case UpdateClass::Resetup: return "Resetups";
      case UpdateClass::Spill: return "Spills";
      case UpdateClass::NoOp: return "No-ops";
    }
    return "?";
}

SubCell::SubCell(const Config &config, ResultTable *results)
    : config_(config),
      results_(results),
      index_(config.capacity,
             BloomierConfig{config.k, config.ratio, config.range.base,
                            config.partitions, config.seed}),
      filter_(config.capacity,
              std::min(config.range.base, config.keyWidth)),
      bitvec_(config.capacity, config.stride, config.resultPointerBits)
{
    panicIf(results == nullptr, "SubCell requires a ResultTable");
    panicIf(config.range.base == 0,
            "SubCell cannot serve length 0 (default route)");
    panicIf(config.range.top > config.range.base + config.stride,
            "SubCell range wider than the stride allows");
}

void
SubCell::refreshImage(const Key128 &ckey, Group &group)
{
    (void)ckey;
    GroupImage image = group.shadow.computeImage();
    bool was_dirty = filter_.dirty(group.slot);

    if (image.empty()) {
        // Withdrawn group: clear the vector and mark the entry dirty
        // but retain the Index/Filter entries *and* the result block
        // (Section 4.4.1) — a route flap restores everything with a
        // handful of writes.  The block is reclaimed when the group
        // is purged or dismantled.
        bitvec_.clearVector(group.slot);
        ++writes_.bitvectorWrites;
        if (!was_dirty) {
            filter_.setDirty(group.slot, true);
            ++writes_.filterWrites;
            ++dirtyCount_;
        }
        return;
    }

    if (was_dirty) {
        filter_.setDirty(group.slot, false);
        ++writes_.filterWrites;
        --dirtyCount_;
    }

    uint32_t needed = static_cast<uint32_t>(image.hops.size());
    bool fresh_block =
        group.resultSize == 0 || needed > group.resultSize;
    if (fresh_block) {
        // Over-provisioned growth; the old block returns to the
        // allocator (Section 4.3.2).
        if (group.resultSize > 0)
            results_->free(group.resultBase, group.resultSize);
        group.resultBase = results_->allocate(needed);
        group.resultSize = ResultTable::grantedSize(needed);
    }
    // Write only the slots that changed — the shadow copy transfers
    // just the modified words to hardware (Section 4.4).
    for (uint32_t i = 0; i < needed; ++i) {
        if (fresh_block ||
            results_->read(group.resultBase + i) != image.hops[i]) {
            results_->write(group.resultBase + i, image.hops[i]);
            ++writes_.resultWrites;
        }
    }
    bitvec_.setVector(group.slot, image.bits, group.resultBase);
    ++writes_.bitvectorWrites;
}

void
SubCell::dismantleGroup(const Key128 &ckey,
                        std::vector<Route> *displaced)
{
    auto it = groups_.find(ckey);
    panicIf(it == groups_.end(), "dismantleGroup: unknown group");
    Group &g = it->second;

    if (displaced) {
        for (const auto &[p, nh] : g.shadow.members())
            displaced->push_back(Route{p, nh});
    }
    routes_ -= g.shadow.memberCount();
    if (filter_.dirty(g.slot))
        --dirtyCount_;
    if (g.resultSize > 0)
        results_->free(g.resultBase, g.resultSize);
    bitvec_.clearVector(g.slot);
    filter_.release(g.slot);
    index_.erase(ckey);   // No-op if a rebuild already evicted it.
    groups_.erase(it);
}

void
SubCell::noteRemoved(const Prefix &prefix)
{
    // Bounded memory for flap classification; on overflow the window
    // simply restarts (mis-classifying a flap as Add PC is harmless).
    if (recentlyRemoved_.size() >= (1u << 16))
        recentlyRemoved_.clear();
    recentlyRemoved_.insert(prefix);
}

void
SubCell::buildFrom(const std::vector<Route> &routes,
                   std::vector<Route> &displaced)
{
    // Group the routes by collapsed prefix.
    std::unordered_map<Key128, std::vector<Route>, Key128Hasher> bins;
    for (const auto &r : routes) {
        panicIf(!coversLength(r.prefix.length()),
                "SubCell::buildFrom route with uncovered length");
        bins[collapsedKey(r.prefix)].push_back(r);
    }

    std::vector<std::pair<Key128, uint32_t>> entries;
    entries.reserve(bins.size());

    for (auto &[ckey, members] : bins) {
        int64_t slot = filter_.allocate();
        if (slot < 0) {
            // Capacity exceeded: these members go to the TCAM.
            for (const auto &r : members)
                displaced.push_back(r);
            continue;
        }
        auto [it, inserted] = groups_.emplace(
            ckey, Group(static_cast<uint32_t>(slot),
                        config_.range.base, config_.stride));
        panicIf(!inserted, "buildFrom: duplicate group");
        for (const auto &r : members) {
            it->second.shadow.announce(r.prefix, r.nextHop);
            ++routes_;
        }
        filter_.set(static_cast<uint32_t>(slot), ckey);
        entries.emplace_back(ckey, static_cast<uint32_t>(slot));
    }

    // One bulk Bloomier setup over all groups.
    auto spilled = index_.setup(entries);
    for (const auto &[ckey, code] : spilled) {
        (void)code;
        dismantleGroup(ckey, &displaced);
    }

    for (auto &[ckey, group] : groups_)
        refreshImage(ckey, group);
}

SubCell::Hit
SubCell::lookup(const Key128 &key) const
{
    Hit out;
    const unsigned base = config_.range.base;

    // Access 1: Index Table (k segments read in parallel).
    Key128 ckey = key.masked(base);
    uint32_t code = index_.lookupCode(ckey);
    if (code >= config_.capacity)
        return out;   // Garbage code for an absent key.

    // Access 2: Filter Table — the false-positive check.
    if (!filter_.matches(code, ckey))
        return out;

    // Access 3: Bit-vector Table.
    unsigned avail = std::min(config_.stride,
                              Key128::maxBits - base);
    uint64_t v = key.extract(base, avail)
                 << (config_.stride - avail);
    if (!bitvec_.bit(code, v))
        return out;

    // Access 4: Result Table (off-chip), pointer + popcount offset.
    unsigned offset = bitvec_.onesUpTo(code, v);
    NextHop nh = results_->read(bitvec_.pointer(code) + offset - 1);

    out.hit = true;
    out.nextHop = nh;

    // Matched length comes from the shadow state (reporting only;
    // the hardware result is the next hop itself).
    auto it = groups_.find(ckey);
    panicIf(it == groups_.end(),
            "filter matched a key with no shadow group");
    auto cover = it->second.shadow.longestCover(v);
    panicIf(!cover.has_value(),
            "bit-vector hit with no covering shadow member");
    out.matchedLength = cover->prefix.length();
    return out;
}

UpdateClass
SubCell::announce(const Prefix &prefix, NextHop next_hop,
                  std::vector<Route> &displaced)
{
    panicIf(!coversLength(prefix.length()),
            "SubCell::announce uncovered length");
    Key128 ckey = collapsedKey(prefix);

    auto it = groups_.find(ckey);
    if (it != groups_.end()) {
        Group &g = it->second;
        bool was_dirty = filter_.dirty(g.slot);

        UpdateClass cls;
        if (g.shadow.find(prefix)) {
            cls = UpdateClass::NextHopChange;
        } else if (was_dirty || recentlyRemoved_.contains(prefix)) {
            cls = UpdateClass::RouteFlap;
            recentlyRemoved_.erase(prefix);
        } else {
            cls = UpdateClass::AddCollapsed;
        }

        if (g.shadow.announce(prefix, next_hop))
            ++routes_;
        refreshImage(ckey, g);
        return cls;
    }

    // New collapsed prefix: needs a Filter slot and an Index insert.
    int64_t slot = filter_.allocate();
    if (slot < 0) {
        purgeDirty();
        slot = filter_.allocate();
    }
    if (slot < 0) {
        displaced.push_back(Route{prefix, next_hop});
        return UpdateClass::Spill;
    }

    auto result = index_.insert(ckey, static_cast<uint32_t>(slot));
    panicIf(result.method == BloomierFilter::InsertMethod::Duplicate,
            "Index Table and shadow groups out of sync");

    // A rebuild may have evicted other groups; dismantle them.
    bool self_failed =
        result.method == BloomierFilter::InsertMethod::Failed;
    for (const auto &[k2, c2] : result.spilled) {
        (void)c2;
        if (k2 == ckey)
            continue;   // Self handled below.
        dismantleGroup(k2, &displaced);
    }
    if (self_failed) {
        filter_.release(static_cast<uint32_t>(slot));
        displaced.push_back(Route{prefix, next_hop});
        return UpdateClass::Spill;
    }

    auto [git, inserted] = groups_.emplace(
        ckey, Group(static_cast<uint32_t>(slot),
                    config_.range.base, config_.stride));
    panicIf(!inserted, "announce: duplicate group emplace");
    filter_.set(static_cast<uint32_t>(slot), ckey);
    ++writes_.filterWrites;
    git->second.shadow.announce(prefix, next_hop);
    ++routes_;
    refreshImage(ckey, git->second);

    return result.method == BloomierFilter::InsertMethod::Singleton
               ? UpdateClass::SingletonInsert
               : UpdateClass::Resetup;
}

UpdateClass
SubCell::withdraw(const Prefix &prefix)
{
    if (!coversLength(prefix.length()))
        return UpdateClass::NoOp;
    Key128 ckey = collapsedKey(prefix);
    auto it = groups_.find(ckey);
    if (it == groups_.end())
        return UpdateClass::NoOp;

    auto removed = it->second.shadow.withdraw(prefix);
    if (!removed)
        return UpdateClass::NoOp;

    --routes_;
    noteRemoved(prefix);
    if (!config_.retainDirtyGroups && it->second.shadow.empty()) {
        // Ablation mode: no dirty bit — the emptied group leaves the
        // Index Table immediately, so a flap pays a full re-insert.
        dismantleGroup(ckey, nullptr);
        return UpdateClass::Withdraw;
    }
    refreshImage(ckey, it->second);
    return UpdateClass::Withdraw;
}

std::optional<NextHop>
SubCell::find(const Prefix &prefix) const
{
    if (!coversLength(prefix.length()))
        return std::nullopt;
    auto it = groups_.find(collapsedKey(prefix));
    if (it == groups_.end())
        return std::nullopt;
    return it->second.shadow.find(prefix);
}

void
SubCell::exportRoutes(std::vector<Route> &out) const
{
    for (const auto &[ckey, g] : groups_) {
        (void)ckey;
        for (const auto &[p, nh] : g.shadow.members())
            out.push_back(Route{p, nh});
    }
}

size_t
SubCell::purgeDirty()
{
    std::vector<Key128> dirty;
    for (const auto &[ckey, g] : groups_) {
        if (filter_.dirty(g.slot))
            dirty.push_back(ckey);
    }
    for (const auto &ckey : dirty)
        dismantleGroup(ckey, nullptr);
    return dirty.size();
}

bool
SubCell::selfCheck() const
{
    if (!index_.selfCheck())
        return false;
    const unsigned base = config_.range.base;
    unsigned avail = std::min(config_.stride, Key128::maxBits - base);

    for (const auto &[ckey, g] : groups_) {
        GroupImage image = g.shadow.computeImage();
        size_t hop = 0;
        for (uint64_t v = 0; v < (uint64_t(1) << config_.stride); ++v) {
            bool set = (image.bits[v / 64] >> (v % 64)) & 1;
            if (!set)
                continue;
            Key128 key = ckey;
            key.deposit(base, avail, v >> (config_.stride - avail));
            Hit h = lookup(key);
            if (!h.hit || h.nextHop != image.hops[hop])
                return false;
            ++hop;
        }
    }
    return true;
}

} // namespace chisel
