/**
 * @file
 * ChiselEngine: the complete LPM architecture (Section 4).
 *
 * The engine composes one SubCell per collapse-plan interval, a
 * shared off-chip Result Table, a register for the default route,
 * and the small spillover TCAM of Section 4.1.  A lookup probes all
 * sub-cells (and the spillover TCAM) in parallel; a priority encoder
 * selects the hit from the sub-cell with the longest base — the
 * longest-prefix match, because the cells' length intervals are
 * disjoint and ascending.
 *
 * Updates follow Section 4.4: the shadow copies inside the sub-cells
 * are modified first and the changed hardware words (bit-vectors,
 * result blocks, occasionally Index/Filter entries) re-written.  The
 * engine classifies every update into the categories of Figure 14
 * and accumulates them in UpdateStats.
 */

#ifndef CHISEL_CORE_ENGINE_HH
#define CHISEL_CORE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "concurrent/relaxed.hh"
#include "core/collapse.hh"
#include "core/result_table.hh"
#include "core/slowpath.hh"
#include "core/storage_model.hh"
#include "core/subcell.hh"
#include "core/ttl.hh"
#include "core/update_outcome.hh"
#include "route/table.hh"
#include "route/updates.hh"
#include "tcam/tcam.hh"

namespace chisel {

namespace telemetry { class EngineTelemetry; }
namespace persist { class Encoder; class Decoder; }

/** Engine construction parameters (paper design points as defaults). */
struct ChiselConfig
{
    /** Key width: 32 for IPv4, 128 for IPv6. */
    unsigned keyWidth = 32;

    /** Maximum collapsed bits per prefix (Section 4.3). */
    unsigned stride = 4;

    /** Bloomier hash functions (Section 4.1). */
    unsigned k = 3;

    /** Index Table slots per group, m/n (Section 4.1). */
    double ratio = 3.0;

    /** Logical Index Table partitions d (Section 4.4.2). */
    unsigned partitions = 16;

    /**
     * Spillover TCAM capacity (Section 4.1).  A hard limit: routes
     * displaced past it divert to the software slow path and drain
     * back as TCAM space frees up (docs/robustness.md).
     */
    size_t spillCapacity = 32;

    /**
     * Software slow-path map capacity (0 = unbounded).  Routes
     * arriving when the map is full are dropped with a hard-degraded
     * outcome and counted (docs/robustness.md) — bounded memory
     * beats silent unbounded growth under an update storm.
     */
    size_t slowPathCapacity = 65536;

    /** Sub-cell group capacity = observed groups x this headroom. */
    double capacityHeadroom = 2.0;

    /** Minimum sub-cell capacity (filler cells use exactly this). */
    size_t minCellCapacity = 1024;

    /** Cover all lengths in [1, keyWidth] so any update is legal. */
    bool coverAllLengths = true;

    /** Dirty-bit route-flap retention (Section 4.4.1). */
    bool retainDirtyGroups = true;

    /**
     * Per-cell retention budget for dirty groups (0 = unbounded, the
     * paper's behaviour).  With a budget set, a withdraw that would
     * exceed it evicts the dirty group with the lowest decayed flap
     * penalty, so dirtyCount() cannot grow without bound under a
     * flap storm (docs/robustness.md).
     */
    size_t dirtyBudgetPerCell = 0;

    /** Flap-damping parameters (src/health/damping.hh). */
    health::DampingConfig damping;

    /** Seed for every hash family in the engine. */
    uint64_t seed = 0xC415E1;

    /**
     * Default TTL armed on every announce, milliseconds (0 = routes
     * never expire).  Per-update overrides: Update::ttlMs replaces
     * the default; kTtlNever pins the route even when a default is
     * set.  Expiry is lazy — the GC tick retires deadline-overrun
     * routes as journal-visible Expire updates (docs/robustness.md).
     */
    uint64_t defaultTtlMs = 0;

    /**
     * Snapshots embed the full config and restore refuses a mismatch
     * (a snapshot laid out for one geometry must not be grafted onto
     * another); field-wise equality is that check.
     */
    bool operator==(const ChiselConfig &other) const = default;
};

/** Serialize a config (snapshot headers; see docs/persistence.md). */
void encodeConfig(persist::Encoder &enc, const ChiselConfig &config);

/** Inverse of encodeConfig; throws persist::DecodeError. */
ChiselConfig decodeConfig(persist::Decoder &dec);

/**
 * Stable fingerprint of a config — stamped into journal headers so a
 * journal is only ever replayed against the geometry it was written
 * under.
 */
uint64_t configFingerprint(const ChiselConfig &config);

/** Outcome of an engine lookup. */
struct LookupResult
{
    bool found = false;
    NextHop nextHop = kNoRoute;
    unsigned matchedLength = 0;

    /**
     * Sequential memory accesses on the hit path: Index, Filter,
     * Bit-vector, Result — constant, key-width independent.
     */
    unsigned memoryAccesses = 0;

    /** True if the match came from the spillover TCAM. */
    bool fromSpill = false;

    /** True if the match came from the software slow path. */
    bool fromSlowPath = false;

    /** True if only the default route matched. */
    bool fromDefault = false;
};

/**
 * Engine-wide robustness counters (docs/robustness.md): how often
 * each rung of the degradation ladder was exercised.  Relaxed atomics
 * so concurrent readers and stat exporters never race the writer.
 */
struct RobustnessCounters
{
    concurrent::RelaxedU64 rejectedUpdates;  ///< Malformed updates refused.
    concurrent::RelaxedU64 tcamOverflows;    ///< Spill TCAM inserts refused.
    concurrent::RelaxedU64 slowPathInserts;  ///< Routes diverted to software.
    concurrent::RelaxedU64 slowPathDrains;   ///< Routes drained back to TCAM.
    concurrent::RelaxedU64 slowPathRejected; ///< Routes dropped: slow path full.
    concurrent::RelaxedU64 setupRetries;     ///< Index reseed-retry attempts.
    concurrent::RelaxedU64 parityDetected;   ///< Lookups served soft.
    concurrent::RelaxedU64 parityRecoveries; ///< Cell recover-by-resetup runs.
    concurrent::RelaxedU64 dirtyEvictions;   ///< Dirty groups evicted by budget.
    concurrent::RelaxedU64 suppressedFlaps;  ///< Flaps of damped groups.
};

/**
 * Memory-access counters accumulated across lookups — the measured
 * input to the power model (every sub-cell's tables are touched on
 * every lookup; the Result Table only on a hit).  Lookups run from
 * any number of threads, so the tallies are relaxed atomics
 * (docs/concurrency.md).
 */
struct AccessCounters
{
    concurrent::RelaxedU64 lookups;
    concurrent::RelaxedU64 indexSegmentReads; ///< k per sub-cell per lookup.
    concurrent::RelaxedU64 filterReads;       ///< 1 per sub-cell per lookup.
    concurrent::RelaxedU64 bitvectorReads;    ///< 1 per sub-cell per lookup.
    concurrent::RelaxedU64 resultReads;       ///< 1 per hit (off-chip).

    uint64_t
    onChipTotal() const
    {
        return indexSegmentReads + filterReads + bitvectorReads;
    }
};

/** Results of one background scrub pass (docs/concurrency.md). */
struct ScrubReport
{
    uint64_t wordsChecked = 0;    ///< Parity words verified.
    uint64_t errorsFound = 0;     ///< Words failing their check.
    uint64_t cellsRecovered = 0;  ///< Cells run through resetup.
};

/** Counters over the Figure 14 update categories. */
struct UpdateStats
{
    std::array<concurrent::RelaxedU64, kUpdateClassCount> counts{};

    void
    record(UpdateClass c)
    {
        ++counts[static_cast<size_t>(c)];
    }

    uint64_t
    count(UpdateClass c) const
    {
        return counts[static_cast<size_t>(c)];
    }

    uint64_t total() const;

    /** Fraction of updates in category @p c. */
    double fraction(UpdateClass c) const;

    /**
     * Fraction of updates applied incrementally, i.e. without a
     * partition re-setup (the paper's 99.9% claim counts everything
     * except Resetups).
     */
    double incrementalFraction() const;
};

/**
 * The complete Chisel LPM engine.
 */
class ChiselEngine
{
  public:
    /** Constant lookup cost (Section 6.7.1). */
    static constexpr unsigned kLookupAccesses = 4;

    /**
     * Build an engine over an initial routing table.
     *
     * @param initial The initial routes (may be empty).
     * @param config Design parameters.
     */
    explicit ChiselEngine(const RoutingTable &initial,
                          const ChiselConfig &config = {});

    /** Longest-prefix match. */
    LookupResult lookup(const Key128 &key) const;

    /**
     * BGP announce(p, l, h) (Section 4.4.2).  The outcome converts
     * implicitly to its UpdateClass; status/counters report whether
     * the update was applied cleanly, degraded (slow path, parity
     * recovery) or rejected.  The update path never half-applies: a
     * route ends up in a cell, the TCAM, the slow path — or the
     * outcome says Rejected.
     *
     * @param ttl_ms TTL override, milliseconds: 0 uses the config's
     *        defaultTtlMs; kTtlNever pins the route against expiry.
     *        A deadline (if any) is armed on the engine's logical TTL
     *        clock whenever the announce is not rejected.
     */
    UpdateOutcome announce(const Prefix &prefix, NextHop next_hop,
                           uint32_t ttl_ms = 0);

    /** BGP withdraw(p, l) (Section 4.4.1). */
    UpdateOutcome withdraw(const Prefix &prefix);

    /**
     * Retire @p prefix because its TTL deadline passed: the withdraw
     * flow, classified UpdateClass::Expire instead of Withdraw so
     * stats, journal replay and replication distinguish GC from peer
     * withdraws.  Expiring an absent prefix is a NoOp.
     */
    UpdateOutcome expire(const Prefix &prefix);

    /** Apply one trace update. */
    UpdateOutcome apply(const Update &update);

    /**
     * Advance the logical TTL clock to @p now_ms (monotonic: earlier
     * values are ignored).  Owned by whoever drives expiry — the
     * concurrent wrapper's GC tick in production, tests by hand.
     */
    void setTtlClock(uint64_t now_ms);

    /** Current logical TTL clock, milliseconds. */
    uint64_t ttlClock() const { return ttlClockMs_; }

    /**
     * Append up to @p max prefixes whose deadline is at or before the
     * current TTL clock to @p out; @return the number appended.  The
     * caller retires each through expire().
     */
    size_t collectExpired(size_t max, std::vector<Prefix> &out) const;

    /** Prefixes currently carrying a TTL deadline. */
    size_t ttlArmed() const { return ttl_.size(); }

    /** The TTL deadline index (resize rebuilds copy it across). */
    const TtlIndex &ttlIndex() const { return ttl_; }

    /**
     * Adopt @p other's TTL deadlines and clock verbatim — used when a
     * rebuild (resize, resetup) constructs a fresh engine from an
     * exported table, which cannot carry deadlines by itself.
     */
    void
    adoptTtl(const ChiselEngine &other)
    {
        ttl_ = other.ttl_;
        ttlClockMs_ = other.ttlClockMs_;
    }

    /** Exact-prefix query across cells, TCAM and default register. */
    std::optional<NextHop> find(const Prefix &prefix) const;

    /** Routes currently stored (cells + spill TCAM + default). */
    size_t routeCount() const;

    /**
     * Dump the complete routing state (cells + spill TCAM + default
     * route) as a table — for inspection, persistence, or rebuilding
     * a fresh engine ("resetup") with capacities re-sized to the
     * current load.
     */
    RoutingTable exportTable() const;

    /** Entries parked in the spillover TCAM. */
    size_t spillCount() const { return spill_.size(); }

    /** Routes diverted past the TCAM into the software slow path. */
    size_t slowPathCount() const { return slowPath_.size(); }

    /**
     * True if routes overflowed the spill TCAM's design capacity
     * (they are then held by the software slow path).
     */
    bool
    spillOverCapacity() const
    {
        return !slowPath_.empty();
    }

    /** Robustness counters (engine-level plus all sub-cells). */
    RobustnessCounters robustness() const;

    /** The collapse plan in use. */
    const CollapsePlan &plan() const { return plan_; }

    const ChiselConfig &config() const { return config_; }

    /** Measured (average-case) on-chip storage. */
    StorageBreakdown storage() const;

    /** Figure 14 counters since construction / last reset. */
    const UpdateStats &updateStats() const { return updateStats_; }
    void resetUpdateStats() { updateStats_ = UpdateStats{}; }

    /** Memory-access counters since construction / last reset. */
    const AccessCounters &accessCounters() const { return access_; }
    void resetAccessCounters() { access_ = AccessCounters{}; }

    /** Purge dirty groups in every cell (a "resetup" housekeeping). */
    size_t purgeDirty();

    /** Dirty groups currently retained across all cells. */
    size_t dirtyCount() const;

    /** High-water mark of per-cell dirty retention (max over cells). */
    size_t dirtyPeak() const;

    /**
     * One full scrub pass (docs/concurrency.md): verify every parity
     * word in every sub-cell's Index/Filter/Bit-vector image and the
     * shared Result Table, then run recover-by-resetup on any cell
     * that failed — proactively, instead of waiting for a lookup to
     * trip over the corruption.  Mutates on recovery, so callers must
     * hold the same exclusion as announce()/withdraw() (the
     * concurrent wrapper scrubs the idle instance only).
     */
    ScrubReport scrub();

    size_t cellCount() const { return cells_.size(); }
    const SubCell &cell(size_t i) const { return *cells_[i]; }

    /** The shared off-chip Result Table (diagnostics). */
    const ResultTable &resultTable() const { return results_; }

    /** Deep consistency check across all sub-cells (tests). */
    bool selfCheck() const;

    /**
     * Serialize the complete engine state — collapse plan, every
     * sub-cell's Index/Filter/Bit-vector image and shadow groups, the
     * shared Result Table, spill TCAM, slow-path map, default route,
     * and all counters — so restoreState() reproduces this engine
     * bit-for-bit without re-running any Bloomier setup.  The config
     * is NOT included; the snapshot container stores it separately so
     * a mismatch can be rejected before deep decoding begins
     * (docs/persistence.md).
     */
    void saveState(persist::Encoder &enc) const;

    /**
     * Rebuild an engine from saveState() output.  @p config must be
     * the config the state was saved under (the snapshot loader
     * enforces this).  Throws persist::DecodeError on any malformed
     * input; the decoder is bounds-checked throughout, so corrupt
     * bytes can never produce out-of-range table writes.
     */
    static std::unique_ptr<ChiselEngine>
    restoreState(const ChiselConfig &config, persist::Decoder &dec);

    /**
     * Full Bloomier setup passes run by this engine's cells since
     * construction or restore — the "did we pay the cold-start cost"
     * probe: a warm restart from a valid snapshot performs zero.
     */
    uint64_t bloomierSetups() const;

    /**
     * Attach a telemetry binding (see telemetry/engine_telemetry.hh):
     * every subsequent lookup and update runs under an access-tracer
     * span feeding the binding's MetricRegistry.  Pass nullptr to
     * detach.  The binding is borrowed and must outlive its
     * attachment; with none attached the engine stays on the
     * zero-overhead path.
     */
    void
    attachTelemetry(telemetry::EngineTelemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

    telemetry::EngineTelemetry *telemetry() const { return telemetry_; }

  private:
    /** Tag type for the restoreState() shell constructor. */
    struct RestoreTag {};

    /** Shell engine for restoreState(): config set, tables empty. */
    ChiselEngine(const ChiselConfig &config, RestoreTag);

    /** lookup() body; runs inside the telemetry span when attached. */
    LookupResult lookupImpl(const Key128 &key) const;

    /** announce()/withdraw() bodies, likewise. */
    UpdateOutcome announceImpl(const Prefix &prefix, NextHop next_hop);

    /**
     * withdraw()/expire() body.  @p expiry re-stamps a successful
     * removal as UpdateClass::Expire.
     */
    UpdateOutcome withdrawImpl(const Prefix &prefix, bool expiry);

    /** Arm/clear the TTL deadline after a non-rejected announce. */
    void armTtl(const Prefix &prefix, uint32_t ttl_ms);

    /**
     * Move displaced routes into the spillover TCAM; on overflow,
     * divert them to the software slow path (never drop a route).
     */
    void absorbDisplaced(std::vector<Route> &displaced,
                         UpdateOutcome &out);

    /** Run recover-by-resetup on cells flagged by lookups. */
    void recoverPendingParity(UpdateOutcome &out);

    /** Poll the soft-error injection points (no-op when disarmed). */
    void applyInjectedFaults();

    /** Migrate slow-path routes back into freed TCAM space. */
    void drainSlowPath();

    /** Sum of per-cell setup-retry counters (for outcome deltas). */
    uint64_t cellSetupRetries() const;

    ChiselConfig config_;
    CollapsePlan plan_;
    ResultTable results_;
    std::vector<std::unique_ptr<SubCell>> cells_;
    Tcam spill_;
    SlowPathMap slowPath_;
    std::optional<NextHop> defaultRoute_;
    TtlIndex ttl_;
    uint64_t ttlClockMs_ = 0;
    UpdateStats updateStats_;
    RobustnessCounters robust_;
    mutable AccessCounters access_;
    telemetry::EngineTelemetry *telemetry_ = nullptr;
};

} // namespace chisel

#endif // CHISEL_CORE_ENGINE_HH
