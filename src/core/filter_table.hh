/**
 * @file
 * Filter Table: stored keys that eliminate false positives.
 *
 * The Bloomier Index Table returns *some* pointer for every query,
 * including keys never inserted.  Chisel stores the actual collapsed
 * prefix at the pointed-to Filter Table slot and compares it against
 * the collapsed lookup key; a mismatch is a false positive and the
 * lookup result is discarded (Section 4.2).  This is the storage /
 * correctness trade the paper makes instead of Bloomier checksums:
 * false positives become impossible rather than merely improbable.
 *
 * Each entry also carries the dirty bit of the route-flap
 * optimisation (Section 4.4.1): a withdrawn group is marked dirty and
 * retained so a flap can restore it without touching the Index Table.
 *
 * Every entry is protected by one even-parity bit over its key and
 * flags, maintained on legitimate writes; a soft error (bit flip) is
 * detectable until the entry is rewritten, and the lookup path falls
 * back to the shadow copy when a check fails.
 */

#ifndef CHISEL_CORE_FILTER_TABLE_HH
#define CHISEL_CORE_FILTER_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/key128.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * Fixed-capacity table of collapsed prefixes with a slot free-list.
 */
class FilterTable
{
  public:
    /**
     * @param capacity Number of slots (n in the paper's sizing).
     * @param key_bits Width of the stored collapsed prefixes.
     */
    FilterTable(size_t capacity, unsigned key_bits);

    /** Allocate a slot.  @return slot index, or -1 if full. */
    int64_t allocate();

    /** Release a slot back to the free list. */
    void release(uint32_t slot);

    /** Install @p key at @p slot and mark it valid and clean. */
    void set(uint32_t slot, const Key128 &key);

    /** True if @p slot is valid and stores exactly @p key. */
    bool matches(uint32_t slot, const Key128 &key) const;

    /** True if @p slot currently holds a key. */
    bool valid(uint32_t slot) const { return entries_[slot].valid; }

    /** The key stored at @p slot. */
    const Key128 &keyAt(uint32_t slot) const { return entries_[slot].key; }

    /** Dirty flag (withdrawn-but-retained group). */
    bool dirty(uint32_t slot) const { return entries_[slot].dirty; }
    void setDirty(uint32_t slot, bool dirty);

    /** True if @p slot passes its parity check. */
    bool
    parityOk(uint32_t slot) const
    {
        return entryParity(entries_[slot]) == parity_[slot];
    }

    /**
     * Soft-error model: flip bit @p bit of the key stored at @p slot
     * without updating parity (detectable until rewritten).
     */
    void flipKeyBit(uint32_t slot, unsigned bit);

    /**
     * Restore @p slot to the pristine empty state (recovery path:
     * scrubs any soft error in a slot no group owns).  Free-list
     * membership is not affected.
     */
    void resetSlot(uint32_t slot);

    /** Slots in use (valid). */
    size_t used() const { return used_; }

    /** Free slots remaining. */
    size_t available() const { return freeList_.size(); }

    size_t capacity() const { return entries_.size(); }

    /** Slot width in bits: key plus valid and dirty flags. */
    unsigned slotWidthBits() const { return keyBits_ + 2; }

    /** Total storage in bits. */
    uint64_t storageBits() const;

    /**
     * Serialize entries and the free list (its order determines
     * which slot the next allocate() hands out, so it must survive a
     * restart for determinism).  Parity is recomputed on load.
     */
    void saveState(persist::Encoder &enc) const;

    /** Restore from saveState(); throws persist::DecodeError. */
    void loadState(persist::Decoder &dec);

  private:
    struct Entry
    {
        Key128 key;
        bool valid = false;
        bool dirty = false;
    };

    /** Even parity over an entry's key bits and flags. */
    static uint8_t
    entryParity(const Entry &e)
    {
        return static_cast<uint8_t>(
            (e.key.popcount() + (e.valid ? 1u : 0u) +
             (e.dirty ? 1u : 0u)) & 1u);
    }

    /** Recompute the stored parity of @p slot after a legal write. */
    void
    refreshParity(uint32_t slot)
    {
        parity_[slot] = entryParity(entries_[slot]);
    }

    unsigned keyBits_;
    std::vector<Entry> entries_;
    std::vector<uint8_t> parity_;
    std::vector<uint32_t> freeList_;
    size_t used_ = 0;
};

} // namespace chisel

#endif // CHISEL_CORE_FILTER_TABLE_HH
