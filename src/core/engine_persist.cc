/**
 * @file
 * Engine-level persistence: config codec, config fingerprint, and the
 * whole-engine saveState/restoreState pair (docs/persistence.md).
 *
 * Kept out of engine.cc so the hot-path translation unit does not
 * grow serialization concerns.  Everything here routes through the
 * bounds-checked persist::Decoder: corrupt snapshot bytes surface as
 * DecodeError (recovery ladder input), never as undefined behaviour.
 */

#include <cmath>
#include <memory>

#include "core/engine.hh"
#include "persist/codec.hh"

namespace chisel {

namespace {

void
encodeDamping(persist::Encoder &enc, const health::DampingConfig &d)
{
    enc.f64(d.penaltyPerFlap);
    enc.f64(d.halfLifeTicks);
    enc.f64(d.suppressThreshold);
    enc.f64(d.reuseThreshold);
    enc.u64(d.maxEntries);
}

health::DampingConfig
decodeDamping(persist::Decoder &dec)
{
    health::DampingConfig d;
    d.penaltyPerFlap = dec.f64();
    d.halfLifeTicks = dec.f64();
    d.suppressThreshold = dec.f64();
    d.reuseThreshold = dec.f64();
    d.maxEntries = dec.u64();
    if (!std::isfinite(d.penaltyPerFlap) ||
        !std::isfinite(d.halfLifeTicks) ||
        !std::isfinite(d.suppressThreshold) ||
        !std::isfinite(d.reuseThreshold) || d.penaltyPerFlap < 0.0 ||
        d.halfLifeTicks < 0.0 ||
        d.reuseThreshold > d.suppressThreshold)
        throw persist::DecodeError("config: damping fields invalid");
    return d;
}

} // anonymous namespace

void
encodeConfig(persist::Encoder &enc, const ChiselConfig &config)
{
    enc.u32(config.keyWidth);
    enc.u32(config.stride);
    enc.u32(config.k);
    enc.f64(config.ratio);
    enc.u32(config.partitions);
    enc.u64(config.spillCapacity);
    enc.u64(config.slowPathCapacity);
    enc.f64(config.capacityHeadroom);
    enc.u64(config.minCellCapacity);
    enc.boolean(config.coverAllLengths);
    enc.boolean(config.retainDirtyGroups);
    enc.u64(config.dirtyBudgetPerCell);
    encodeDamping(enc, config.damping);
    enc.u64(config.seed);
    enc.u64(config.defaultTtlMs);
}

ChiselConfig
decodeConfig(persist::Decoder &dec)
{
    ChiselConfig c;
    c.keyWidth = dec.u32();
    c.stride = dec.u32();
    c.k = dec.u32();
    c.ratio = dec.f64();
    c.partitions = dec.u32();
    c.spillCapacity = dec.u64();
    c.slowPathCapacity = dec.u64();
    c.capacityHeadroom = dec.f64();
    c.minCellCapacity = dec.u64();
    c.coverAllLengths = dec.boolean();
    c.retainDirtyGroups = dec.boolean();
    c.dirtyBudgetPerCell = dec.u64();
    c.damping = decodeDamping(dec);
    c.seed = dec.u64();
    c.defaultTtlMs = dec.u64();
    if (c.keyWidth < 1 || c.keyWidth > Key128::maxBits)
        throw persist::DecodeError("config: key width out of range");
    if (c.stride > 16)
        throw persist::DecodeError("config: stride out of range");
    if (c.k < 1 || c.k > 16)
        throw persist::DecodeError("config: k out of range");
    return c;
}

uint64_t
configFingerprint(const ChiselConfig &config)
{
    persist::Encoder enc;
    encodeConfig(enc, config);
    uint64_t lo = persist::crc32(enc.buffer().data(), enc.size(), 0);
    uint64_t hi =
        persist::crc32(enc.buffer().data(), enc.size(), 0x9E3779B9u);
    return (hi << 32) | lo;
}

namespace {

void
encodeCellConfig(persist::Encoder &enc, const SubCell::Config &cc)
{
    enc.u32(cc.range.base);
    enc.u32(cc.range.top);
    enc.boolean(cc.range.filler);
    enc.u32(cc.stride);
    enc.u64(cc.capacity);
    enc.u32(cc.keyWidth);
    enc.u32(cc.k);
    enc.f64(cc.ratio);
    enc.u32(cc.partitions);
    enc.u32(cc.resultPointerBits);
    enc.u64(cc.seed);
    enc.u32(cc.setupRetries);
    enc.boolean(cc.retainDirtyGroups);
    enc.u64(cc.dirtyBudget);
    encodeDamping(enc, cc.damping);
}

SubCell::Config
decodeCellConfig(persist::Decoder &dec)
{
    SubCell::Config cc;
    cc.range.base = dec.u32();
    cc.range.top = dec.u32();
    cc.range.filler = dec.boolean();
    cc.stride = dec.u32();
    cc.capacity = dec.u64();
    cc.keyWidth = dec.u32();
    cc.k = dec.u32();
    cc.ratio = dec.f64();
    cc.partitions = dec.u32();
    cc.resultPointerBits = dec.u32();
    cc.seed = dec.u64();
    cc.setupRetries = dec.u32();
    cc.retainDirtyGroups = dec.boolean();
    cc.dirtyBudget = dec.u64();
    cc.damping = decodeDamping(dec);
    if (cc.range.base < 1 || cc.range.base > cc.range.top ||
        cc.range.top > Key128::maxBits)
        throw persist::DecodeError("cell config: bad length range");
    if (cc.stride > 16)
        throw persist::DecodeError("cell config: stride out of range");
    if (cc.capacity == 0 || cc.capacity > (size_t(1) << 28))
        throw persist::DecodeError("cell config: capacity out of range");
    if (cc.k < 1 || cc.k > 16 || cc.partitions < 1 ||
        cc.partitions > 4096)
        throw persist::DecodeError("cell config: k/partitions invalid");
    if (cc.ratio < 1.0 || cc.ratio > 64.0)
        throw persist::DecodeError("cell config: ratio out of range");
    if (cc.resultPointerBits < 1 || cc.resultPointerBits > 32)
        throw persist::DecodeError("cell config: pointer bits invalid");
    // Allocation bound: a valid image stores every filter entry,
    // bit-vector word, and Index Table slot the geometry declares, so
    // a capacity that cannot fit in the bytes still to be decoded is
    // corruption.  Checked *before* the cell is constructed, so a
    // fuzzed config cannot trigger a multi-gigabyte allocation
    // (fuzz/fuzz_persist.cc).
    uint64_t left = dec.remaining();
    uint64_t vector_bytes = (uint64_t(cc.capacity) << cc.stride) / 8;
    uint64_t slot_bytes =
        static_cast<uint64_t>(double(cc.capacity) * cc.ratio) * 4;
    if (cc.capacity > left || vector_bytes > 2 * left ||
        slot_bytes > 4 * left)
        throw persist::DecodeError(
            "cell config: geometry exceeds image size");
    return cc;
}

} // anonymous namespace

ChiselEngine::ChiselEngine(const ChiselConfig &config, RestoreTag)
    : config_(config), spill_(config.spillCapacity),
      slowPath_(config.slowPathCapacity)
{
}

void
ChiselEngine::saveState(persist::Encoder &enc) const
{
    // Collapse plan.
    enc.u64(plan_.cells.size());
    for (const CellRange &r : plan_.cells) {
        enc.u32(r.base);
        enc.u32(r.top);
        enc.boolean(r.filler);
    }

    // Shared Result Table before the cells: restore rebuilds it
    // first, since cell result-block pointers index into it.
    results_.saveState(enc);

    // Cells: per-cell construction config (capacity and seeds are
    // table-load dependent, not derivable from ChiselConfig alone)
    // followed by the deep cell state.
    enc.u64(cells_.size());
    for (const auto &cell : cells_) {
        encodeCellConfig(enc, cell->cellConfig());
        cell->saveState(enc);
    }

    spill_.saveState(enc);
    slowPath_.saveState(enc);

    enc.boolean(defaultRoute_.has_value());
    enc.u32(defaultRoute_.value_or(kNoRoute));

    for (uint64_t c : updateStats_.counts)
        enc.u64(c);

    enc.u64(robust_.rejectedUpdates);
    enc.u64(robust_.tcamOverflows);
    enc.u64(robust_.slowPathInserts);
    enc.u64(robust_.slowPathDrains);
    enc.u64(robust_.slowPathRejected);
    enc.u64(robust_.setupRetries);
    enc.u64(robust_.parityDetected);
    enc.u64(robust_.parityRecoveries);

    enc.u64(access_.lookups);
    enc.u64(access_.indexSegmentReads);
    enc.u64(access_.filterReads);
    enc.u64(access_.bitvectorReads);
    enc.u64(access_.resultReads);

    // TTL lifecycle state: deadlines survive a warm restart so a
    // route's expiry is decided by its original announce, not by
    // when the process happened to restart.
    enc.u64(ttlClockMs_);
    ttl_.saveState(enc);
}

std::unique_ptr<ChiselEngine>
ChiselEngine::restoreState(const ChiselConfig &config,
                           persist::Decoder &dec)
{
    if (config.keyWidth < 1 || config.keyWidth > Key128::maxBits)
        throw persist::DecodeError("restore: key width out of range");

    auto engine = std::unique_ptr<ChiselEngine>(
        new ChiselEngine(config, RestoreTag{}));

    uint64_t plan_cells = dec.count(9);
    if (plan_cells == 0 || plan_cells > Key128::maxBits)
        throw persist::DecodeError("restore: implausible plan size");
    unsigned prev_top = 0;
    for (uint64_t i = 0; i < plan_cells; ++i) {
        CellRange r;
        r.base = dec.u32();
        r.top = dec.u32();
        r.filler = dec.boolean();
        if (r.base < 1 || r.base > r.top || r.top > config.keyWidth)
            throw persist::DecodeError("restore: bad plan range");
        if (i > 0 && r.base <= prev_top)
            throw persist::DecodeError("restore: plan ranges overlap");
        prev_top = r.top;
        engine->plan_.cells.push_back(r);
    }

    engine->results_.loadState(dec);

    uint64_t cell_count = dec.count(64);
    if (cell_count != plan_cells)
        throw persist::DecodeError(
            "restore: cell count does not match plan");
    for (uint64_t i = 0; i < cell_count; ++i) {
        SubCell::Config cc = decodeCellConfig(dec);
        if (!(cc.range == engine->plan_.cells[i]))
            throw persist::DecodeError(
                "restore: cell range does not match plan");
        auto cell = std::make_unique<SubCell>(cc, &engine->results_);
        cell->loadState(dec);
        engine->cells_.push_back(std::move(cell));
    }

    engine->spill_.loadState(dec);
    engine->slowPath_.loadState(dec);

    bool have_default = dec.boolean();
    NextHop default_hop = dec.u32();
    if (have_default)
        engine->defaultRoute_ = default_hop;

    for (auto &c : engine->updateStats_.counts)
        c = dec.u64();

    engine->robust_.rejectedUpdates = dec.u64();
    engine->robust_.tcamOverflows = dec.u64();
    engine->robust_.slowPathInserts = dec.u64();
    engine->robust_.slowPathDrains = dec.u64();
    engine->robust_.slowPathRejected = dec.u64();
    engine->robust_.setupRetries = dec.u64();
    engine->robust_.parityDetected = dec.u64();
    engine->robust_.parityRecoveries = dec.u64();

    engine->access_.lookups = dec.u64();
    engine->access_.indexSegmentReads = dec.u64();
    engine->access_.filterReads = dec.u64();
    engine->access_.bitvectorReads = dec.u64();
    engine->access_.resultReads = dec.u64();

    engine->ttlClockMs_ = dec.u64();
    engine->ttl_.loadState(dec);

    return engine;
}

uint64_t
ChiselEngine::bloomierSetups() const
{
    uint64_t total = 0;
    for (const auto &cell : cells_)
        total += cell->indexStats().setups;
    return total;
}

} // namespace chisel
