#include "core/filter_table.hh"

#include <cassert>

#include "common/logging.hh"
#include "telemetry/trace.hh"

namespace chisel {

FilterTable::FilterTable(size_t capacity, unsigned key_bits)
    : keyBits_(key_bits), entries_(capacity), parity_(capacity, 0)
{
    freeList_.reserve(capacity);
    // Hand out low slot numbers first: push high indices first.
    for (size_t i = capacity; i-- > 0;)
        freeList_.push_back(static_cast<uint32_t>(i));
}

int64_t
FilterTable::allocate()
{
    if (freeList_.empty())
        return -1;
    uint32_t slot = freeList_.back();
    freeList_.pop_back();
    return slot;
}

void
FilterTable::release(uint32_t slot)
{
    panicIf(slot >= entries_.size(), "FilterTable release out of range");
    if (entries_[slot].valid) {
        entries_[slot].valid = false;
        entries_[slot].dirty = false;
        --used_;
        refreshParity(slot);
    }
    freeList_.push_back(slot);
}

void
FilterTable::set(uint32_t slot, const Key128 &key)
{
    panicIf(slot >= entries_.size(), "FilterTable set out of range");
    CHISEL_TRACE_WRITE(Filter, slot, (slotWidthBits() + 7) / 8);
    Entry &e = entries_[slot];
    if (!e.valid)
        ++used_;
    e.key = key;
    e.valid = true;
    e.dirty = false;
    refreshParity(slot);
}

bool
FilterTable::matches(uint32_t slot, const Key128 &key) const
{
    if (slot >= entries_.size())
        return false;
    // One hardware access: the whole slot (key + flags) is one word.
    CHISEL_TRACE_ACCESS(Filter, slot, (slotWidthBits() + 7) / 8);
    const Entry &e = entries_[slot];
    return e.valid && e.key == key;
}

void
FilterTable::setDirty(uint32_t slot, bool dirty)
{
    panicIf(slot >= entries_.size(), "FilterTable setDirty out of range");
    CHISEL_TRACE_WRITE(Filter, slot, (slotWidthBits() + 7) / 8);
    entries_[slot].dirty = dirty;
    refreshParity(slot);
}

void
FilterTable::flipKeyBit(uint32_t slot, unsigned bit)
{
    panicIf(slot >= entries_.size(),
            "FilterTable flipKeyBit out of range");
    Key128 &key = entries_[slot].key;
    unsigned pos = bit % Key128::maxBits;
    key.setBit(pos, !key.bit(pos));
}

void
FilterTable::resetSlot(uint32_t slot)
{
    panicIf(slot >= entries_.size(),
            "FilterTable resetSlot out of range");
    if (entries_[slot].valid)
        --used_;
    entries_[slot] = Entry{};
    refreshParity(slot);
}

uint64_t
FilterTable::storageBits() const
{
    return static_cast<uint64_t>(entries_.size()) * slotWidthBits();
}

} // namespace chisel
