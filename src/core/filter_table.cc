#include "core/filter_table.hh"

#include <cassert>

#include "common/logging.hh"
#include "persist/codec.hh"
#include "telemetry/trace.hh"

namespace chisel {

FilterTable::FilterTable(size_t capacity, unsigned key_bits)
    : keyBits_(key_bits), entries_(capacity), parity_(capacity, 0)
{
    freeList_.reserve(capacity);
    // Hand out low slot numbers first: push high indices first.
    for (size_t i = capacity; i-- > 0;)
        freeList_.push_back(static_cast<uint32_t>(i));
}

int64_t
FilterTable::allocate()
{
    if (freeList_.empty())
        return -1;
    uint32_t slot = freeList_.back();
    freeList_.pop_back();
    return slot;
}

void
FilterTable::release(uint32_t slot)
{
    panicIf(slot >= entries_.size(), "FilterTable release out of range");
    if (entries_[slot].valid) {
        entries_[slot].valid = false;
        entries_[slot].dirty = false;
        --used_;
        refreshParity(slot);
    }
    freeList_.push_back(slot);
}

void
FilterTable::set(uint32_t slot, const Key128 &key)
{
    panicIf(slot >= entries_.size(), "FilterTable set out of range");
    CHISEL_TRACE_WRITE(Filter, slot, (slotWidthBits() + 7) / 8);
    Entry &e = entries_[slot];
    if (!e.valid)
        ++used_;
    e.key = key;
    e.valid = true;
    e.dirty = false;
    refreshParity(slot);
}

bool
FilterTable::matches(uint32_t slot, const Key128 &key) const
{
    if (slot >= entries_.size())
        return false;
    // One hardware access: the whole slot (key + flags) is one word.
    CHISEL_TRACE_ACCESS(Filter, slot, (slotWidthBits() + 7) / 8);
    const Entry &e = entries_[slot];
    return e.valid && e.key == key;
}

void
FilterTable::setDirty(uint32_t slot, bool dirty)
{
    panicIf(slot >= entries_.size(), "FilterTable setDirty out of range");
    CHISEL_TRACE_WRITE(Filter, slot, (slotWidthBits() + 7) / 8);
    entries_[slot].dirty = dirty;
    refreshParity(slot);
}

void
FilterTable::flipKeyBit(uint32_t slot, unsigned bit)
{
    panicIf(slot >= entries_.size(),
            "FilterTable flipKeyBit out of range");
    Key128 &key = entries_[slot].key;
    unsigned pos = bit % Key128::maxBits;
    key.setBit(pos, !key.bit(pos));
}

void
FilterTable::resetSlot(uint32_t slot)
{
    panicIf(slot >= entries_.size(),
            "FilterTable resetSlot out of range");
    if (entries_[slot].valid)
        --used_;
    entries_[slot] = Entry{};
    refreshParity(slot);
}

uint64_t
FilterTable::storageBits() const
{
    return static_cast<uint64_t>(entries_.size()) * slotWidthBits();
}

void
FilterTable::saveState(persist::Encoder &enc) const
{
    enc.u64(entries_.size());
    for (const Entry &e : entries_) {
        enc.key(e.key);
        enc.boolean(e.valid);
        enc.boolean(e.dirty);
    }
    enc.u64(freeList_.size());
    for (uint32_t slot : freeList_)
        enc.u32(slot);
}

void
FilterTable::loadState(persist::Decoder &dec)
{
    if (dec.u64() != entries_.size())
        throw persist::DecodeError("filter table: capacity mismatch");
    used_ = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        e.key = dec.key();
        e.valid = dec.boolean();
        e.dirty = dec.boolean();
        if (e.valid)
            ++used_;
        refreshParity(static_cast<uint32_t>(i));
    }
    uint64_t free_count = dec.count(4);
    if (free_count > entries_.size())
        throw persist::DecodeError("filter table: free list too long");
    freeList_.clear();
    std::vector<uint8_t> seen(entries_.size(), 0);
    for (uint64_t i = 0; i < free_count; ++i) {
        uint32_t slot = dec.u32();
        if (slot >= entries_.size() || seen[slot])
            throw persist::DecodeError("filter table: bad free slot");
        seen[slot] = 1;
        freeList_.push_back(slot);
    }
}

} // namespace chisel
