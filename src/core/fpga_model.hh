/**
 * @file
 * FPGA resource estimator (Section 7, Table 2).
 *
 * The paper's prototype maps a 4-sub-cell, 64K-prefix Chisel onto a
 * Xilinx Virtex-II Pro XC2VP100.  We cannot synthesise RTL here, so
 * this model regenerates Table 2's utilisation numbers from the
 * architecture's table geometry: block RAMs follow directly from the
 * table dimensions and the device's block-RAM aspect ratios (see
 * SramModel::blocksFor), while LUT/flip-flop counts use per-sub-cell
 * estimates (hash XOR trees, comparators, popcount, pipeline
 * registers) calibrated to the prototype's reported totals.  The
 * per-table dimensions below reproduce the prototype's: Index
 * segments 8KW x 14 b (x3), Filter 16KW x 32 b, Bit-vector
 * 8KW x 30 b per sub-cell.
 */

#ifndef CHISEL_CORE_FPGA_MODEL_HH
#define CHISEL_CORE_FPGA_MODEL_HH

#include <cstddef>
#include <cstdint>

#include "mem/sram.hh"

namespace chisel {

/** Device capacity of the XC2VP100. */
struct FpgaDevice
{
    const char *name = "XC2VP100";
    uint64_t flipFlops = 88192;
    uint64_t slices = 44096;
    uint64_t luts = 88192;
    uint64_t iobs = 1040;
    uint64_t blockRams = 444;
};

/** Estimated resource usage for one configuration. */
struct FpgaResources
{
    uint64_t flipFlops = 0;
    uint64_t slices = 0;
    uint64_t luts = 0;
    uint64_t iobs = 0;
    uint64_t blockRams = 0;
};

/**
 * Maps a Chisel configuration onto FPGA resources.
 */
class FpgaResourceModel
{
  public:
    explicit FpgaResourceModel(const FpgaDevice &device = {});

    /**
     * @param prefixes Total prefixes supported (prototype: 64K).
     * @param cells Number of sub-cells (prototype: 4).
     * @param key_width Key width in bits (prototype: 32).
     * @param stride Collapse stride (prototype: 4).
     */
    FpgaResources estimate(size_t prefixes, unsigned cells,
                           unsigned key_width, unsigned stride) const;

    const FpgaDevice &device() const { return device_; }

    /** Utilisation percentage of a used/available pair. */
    static double utilisation(uint64_t used, uint64_t available);

  private:
    FpgaDevice device_;
    SramModel sram_;
};

} // namespace chisel

#endif // CHISEL_CORE_FPGA_MODEL_HH
