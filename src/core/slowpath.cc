#include "core/slowpath.hh"

#include <algorithm>

#include "persist/codec.hh"

namespace chisel {

SlowPathMap::Insert
SlowPathMap::insert(const Prefix &prefix, NextHop next_hop)
{
    auto bit = buckets_.find(prefix.length());
    if (bit != buckets_.end()) {
        auto eit = bit->second.find(prefix);
        if (eit != bit->second.end()) {
            eit->second = next_hop;
            return Insert::Updated;
        }
    }
    if (capacity_ != 0 && size_ >= capacity_) {
        ++rejected_;
        return Insert::Rejected;
    }
    buckets_[prefix.length()].emplace(prefix, next_hop);
    ++size_;
    return Insert::Inserted;
}

bool
SlowPathMap::erase(const Prefix &prefix)
{
    auto bit = buckets_.find(prefix.length());
    if (bit == buckets_.end())
        return false;
    if (bit->second.erase(prefix) == 0)
        return false;
    if (bit->second.empty())
        buckets_.erase(bit);
    --size_;
    return true;
}

bool
SlowPathMap::setNextHop(const Prefix &prefix, NextHop next_hop)
{
    auto bit = buckets_.find(prefix.length());
    if (bit == buckets_.end())
        return false;
    auto eit = bit->second.find(prefix);
    if (eit == bit->second.end())
        return false;
    eit->second = next_hop;
    return true;
}

std::optional<Route>
SlowPathMap::lookup(const Key128 &key) const
{
    for (const auto &[len, bucket] : buckets_) {
        Prefix candidate(key.masked(len), len);
        auto it = bucket.find(candidate);
        if (it != bucket.end())
            return Route{it->first, it->second};
    }
    return std::nullopt;
}

std::optional<NextHop>
SlowPathMap::find(const Prefix &prefix) const
{
    auto bit = buckets_.find(prefix.length());
    if (bit == buckets_.end())
        return std::nullopt;
    auto eit = bit->second.find(prefix);
    if (eit == bit->second.end())
        return std::nullopt;
    return eit->second;
}

std::optional<Route>
SlowPathMap::longest() const
{
    if (buckets_.empty())
        return std::nullopt;
    const Bucket &bucket = buckets_.begin()->second;
    auto it = bucket.begin();
    return Route{it->first, it->second};
}

std::vector<Route>
SlowPathMap::entries() const
{
    std::vector<Route> out;
    out.reserve(size_);
    for (const auto &[len, bucket] : buckets_) {
        (void)len;
        for (const auto &[p, nh] : bucket)
            out.push_back(Route{p, nh});
    }
    return out;
}

void
SlowPathMap::saveState(persist::Encoder &enc) const
{
    enc.u64(capacity_);
    enc.u64(rejected_);
    enc.u64(size_);
    for (const auto &[len, bucket] : buckets_) {
        (void)len;
        // Canonical order within the (hashed) bucket, so a restored
        // map re-serializes byte-identically.
        std::vector<std::pair<Prefix, NextHop>> sorted(bucket.begin(),
                                                       bucket.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[p, nh] : sorted) {
            enc.prefix(p);
            enc.u32(nh);
        }
    }
}

void
SlowPathMap::loadState(persist::Decoder &dec)
{
    buckets_.clear();
    size_ = 0;
    capacity_ = dec.u64();
    rejected_ = dec.u64();
    uint64_t n = dec.count(21);   // Prefix (17) + next hop (4).
    for (uint64_t i = 0; i < n; ++i) {
        Prefix p = dec.prefix();
        NextHop nh = dec.u32();
        auto [it, inserted] = buckets_[p.length()].emplace(p, nh);
        (void)it;
        if (!inserted)
            throw persist::DecodeError("slow path: duplicate prefix");
        ++size_;
    }
}

} // namespace chisel
