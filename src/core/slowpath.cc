#include "core/slowpath.hh"

#include <algorithm>

namespace chisel {

bool
SlowPathMap::insert(const Prefix &prefix, NextHop next_hop)
{
    for (auto &e : entries_) {
        if (e.prefix == prefix) {
            e.nextHop = next_hop;
            return false;
        }
    }
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix.length() < prefix.length();
                           });
    entries_.insert(it, Route{prefix, next_hop});
    return true;
}

bool
SlowPathMap::erase(const Prefix &prefix)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix == prefix;
                           });
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    return true;
}

bool
SlowPathMap::setNextHop(const Prefix &prefix, NextHop next_hop)
{
    for (auto &e : entries_) {
        if (e.prefix == prefix) {
            e.nextHop = next_hop;
            return true;
        }
    }
    return false;
}

std::optional<Route>
SlowPathMap::lookup(const Key128 &key) const
{
    for (const auto &e : entries_) {
        if (e.prefix.matches(key))
            return e;
    }
    return std::nullopt;
}

std::optional<NextHop>
SlowPathMap::find(const Prefix &prefix) const
{
    for (const auto &e : entries_) {
        if (e.prefix == prefix)
            return e.nextHop;
    }
    return std::nullopt;
}

} // namespace chisel
