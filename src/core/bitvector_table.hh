/**
 * @file
 * Bit-vector Table: wildcard disambiguation for collapsed prefixes.
 *
 * Prefix collapsing merges up to O(2^stride) original prefixes into
 * one collapsed prefix; the Bit-vector Table stores, per collapsed
 * group, one bit per possible collapsed-suffix value plus a pointer
 * to the group's region of the Result Table.  The lookup indexes the
 * bit with the collapsed bits of the key; the popcount of the vector
 * up to that bit is the offset added to the pointer (Section 4.3.2,
 * Figure 5d).  This resolves the collapse collisions without
 * chaining, keeping the worst-case lookup at O(1).
 */

#ifndef CHISEL_CORE_BITVECTOR_TABLE_HH
#define CHISEL_CORE_BITVECTOR_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * Fixed-capacity table of 2^stride-bit vectors with result pointers.
 */
class BitVectorTable
{
  public:
    /**
     * @param capacity Number of entries (same depth as the Filter
     *        Table).
     * @param stride Collapse stride; vectors have 2^stride bits.
     * @param pointer_bits Width of the result pointer for the
     *        storage model.
     */
    BitVectorTable(size_t capacity, unsigned stride,
                   unsigned pointer_bits);

    /** Bits per vector (2^stride). */
    unsigned vectorBits() const { return vectorBits_; }

    /** Replace the vector at @p slot. */
    void setVector(uint32_t slot, const std::vector<uint64_t> &bits,
                   uint32_t pointer);

    /** Zero the vector at @p slot (withdrawn group). */
    void clearVector(uint32_t slot);

    /** Bit @p index of the vector at @p slot. */
    bool bit(uint32_t slot, uint64_t index) const;

    /** Number of ones in the vector at @p slot. */
    unsigned onesCount(uint32_t slot) const;

    /**
     * Number of ones up to and including @p index — the 1-based
     * result offset of Figure 5(d).  Only meaningful when
     * bit(slot, index) is set.
     */
    unsigned onesUpTo(uint32_t slot, uint64_t index) const;

    /** Result-region pointer of @p slot. */
    uint32_t pointer(uint32_t slot) const { return pointers_[slot]; }

    /**
     * True if @p slot (vector words plus pointer) passes its parity
     * check.  One even-parity bit per entry, maintained by
     * setVector/clearVector; a soft error is detectable until the
     * entry is rewritten.
     */
    bool parityOk(uint32_t slot) const;

    /**
     * Soft-error model: flip bit @p bit of the vector at @p slot
     * without updating parity.
     */
    void flipBit(uint32_t slot, uint64_t bit);

    size_t capacity() const { return capacity_; }

    /** Entry width in bits: vector plus pointer. */
    unsigned slotWidthBits() const { return vectorBits_ + pointerBits_; }

    /** Total storage in bits. */
    uint64_t storageBits() const;

    /** Serialize vector words and pointers (parity is recomputed). */
    void saveState(persist::Encoder &enc) const;

    /** Restore from saveState(); throws persist::DecodeError. */
    void loadState(persist::Decoder &dec);

  private:
    /** Even parity over the slot's words and pointer. */
    uint8_t computeParity(uint32_t slot) const;

    size_t capacity_;
    unsigned vectorBits_;
    unsigned wordsPerVector_;
    unsigned pointerBits_;
    std::vector<uint64_t> words_;
    std::vector<uint32_t> pointers_;
    std::vector<uint8_t> parity_;
};

} // namespace chisel

#endif // CHISEL_CORE_BITVECTOR_TABLE_HH
