/**
 * @file
 * TCAM power and storage model (Section 6.7.2).
 *
 * The paper anchors every TCAM power figure to one datasheet point —
 * an 18 Mb device dissipating ~15 W at 100 Msps (SiberCore SCT1842) —
 * and extrapolates linearly in capacity and search rate.  This module
 * implements exactly that extrapolation, plus the standard slot
 * geometry: a 36-bit ternary slot holds an IPv4 prefix, a 144-bit
 * slot (4 x 36) holds IPv6.
 */

#ifndef CHISEL_TCAM_TCAM_MODEL_HH
#define CHISEL_TCAM_TCAM_MODEL_HH

#include <cstddef>
#include <cstdint>

namespace chisel {

/** Parameters of the TCAM extrapolation model. */
struct TcamModelParams
{
    /** Anchor device capacity in megabits. */
    double anchorMbits = 18.0;

    /** Anchor device power in watts. */
    double anchorWatts = 15.0;

    /** Anchor search rate in million searches per second. */
    double anchorMsps = 100.0;

    /** Ternary slot width for IPv4 prefixes. */
    unsigned ipv4SlotBits = 36;

    /** Ternary slot width for IPv6 prefixes. */
    unsigned ipv6SlotBits = 144;
};

/**
 * Linear TCAM power/storage extrapolation.
 */
class TcamPowerModel
{
  public:
    explicit TcamPowerModel(const TcamModelParams &params = {});

    /** Ternary bits needed for @p entries prefixes of @p key_width. */
    uint64_t storageBits(size_t entries, unsigned key_width) const;

    /**
     * Power in watts for a table of @p entries prefixes searched at
     * @p msps million searches per second.
     */
    double watts(size_t entries, unsigned key_width, double msps) const;

    const TcamModelParams &params() const { return params_; }

  private:
    TcamModelParams params_;
};

} // namespace chisel

#endif // CHISEL_TCAM_TCAM_MODEL_HH
