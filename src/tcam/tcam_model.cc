#include "tcam/tcam_model.hh"

namespace chisel {

TcamPowerModel::TcamPowerModel(const TcamModelParams &params)
    : params_(params)
{
}

uint64_t
TcamPowerModel::storageBits(size_t entries, unsigned key_width) const
{
    unsigned slot = key_width > 32 ? params_.ipv6SlotBits
                                   : params_.ipv4SlotBits;
    return static_cast<uint64_t>(entries) * slot;
}

double
TcamPowerModel::watts(size_t entries, unsigned key_width,
                      double msps) const
{
    double mbits = static_cast<double>(storageBits(entries, key_width)) /
                   (1024.0 * 1024.0);
    return params_.anchorWatts * (mbits / params_.anchorMbits) *
           (msps / params_.anchorMsps);
}

} // namespace chisel
