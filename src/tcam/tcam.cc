#include "tcam/tcam.hh"

#include <algorithm>

namespace chisel {

Tcam::Tcam(size_t capacity) : capacity_(capacity)
{
}

bool
Tcam::insert(const Prefix &prefix, NextHop next_hop)
{
    // Overwrite in place if present.
    for (auto &e : entries_) {
        if (e.prefix == prefix) {
            e.nextHop = next_hop;
            return true;
        }
    }
    if (full())
        return false;

    // Keep decreasing-length order so index order = priority order.
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix.length() < prefix.length();
                           });
    entries_.insert(it, Route{prefix, next_hop});
    return true;
}

bool
Tcam::erase(const Prefix &prefix)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix == prefix;
                           });
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    return true;
}

bool
Tcam::setNextHop(const Prefix &prefix, NextHop next_hop)
{
    for (auto &e : entries_) {
        if (e.prefix == prefix) {
            e.nextHop = next_hop;
            return true;
        }
    }
    return false;
}

std::optional<Route>
Tcam::lookup(const Key128 &key) const
{
    // Simulates the parallel compare: first match in priority order.
    for (const auto &e : entries_) {
        if (e.prefix.matches(key))
            return e;
    }
    return std::nullopt;
}

std::optional<NextHop>
Tcam::find(const Prefix &prefix) const
{
    for (const auto &e : entries_) {
        if (e.prefix == prefix)
            return e.nextHop;
    }
    return std::nullopt;
}

} // namespace chisel
