#include "tcam/tcam.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "persist/codec.hh"
#include "telemetry/trace.hh"

namespace chisel {

namespace {
/** Modeled entry width: 128-bit value + 128-bit mask + next hop. */
constexpr uint32_t kTcamEntryBytes = 36;
} // anonymous namespace

Tcam::Tcam(size_t capacity) : capacity_(capacity)
{
}

bool
Tcam::insert(const Prefix &prefix, NextHop next_hop)
{
    // Overwrite in place if present.
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].prefix == prefix) {
            CHISEL_TRACE_WRITE(Tcam, i, kTcamEntryBytes);
            entries_[i].nextHop = next_hop;
            return true;
        }
    }
    if (full())
        return false;
    // Injection point: a bounded TCAM reports "full" although it has
    // room, exercising the caller's overflow degradation ladder.
    // Unbounded TCAMs (capacity 0, the LPM baseline) are exempt.
    if (capacity_ != 0 && CHISEL_FAULT_FIRE(TcamOverflow))
        return false;

    // Keep decreasing-length order so index order = priority order.
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix.length() < prefix.length();
                           });
    CHISEL_TRACE_WRITE(
        Tcam, static_cast<uint64_t>(it - entries_.begin()),
        kTcamEntryBytes);
    entries_.insert(it, Route{prefix, next_hop});
    return true;
}

bool
Tcam::erase(const Prefix &prefix)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Route &e) {
                               return e.prefix == prefix;
                           });
    if (it == entries_.end())
        return false;
    CHISEL_TRACE_WRITE(
        Tcam, static_cast<uint64_t>(it - entries_.begin()),
        kTcamEntryBytes);
    entries_.erase(it);
    return true;
}

bool
Tcam::setNextHop(const Prefix &prefix, NextHop next_hop)
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].prefix == prefix) {
            CHISEL_TRACE_WRITE(Tcam, i, kTcamEntryBytes);
            entries_[i].nextHop = next_hop;
            return true;
        }
    }
    return false;
}

std::optional<Route>
Tcam::lookup(const Key128 &key) const
{
    // A hardware TCAM compares all rows in parallel: one search is
    // one access regardless of entry count (an empty TCAM activates
    // nothing and is not counted).
    if (!entries_.empty()) {
        CHISEL_TRACE_ACCESS(
            Tcam, 0,
            static_cast<uint32_t>(entries_.size()) * kTcamEntryBytes);
    }
    // Simulates the parallel compare: first match in priority order.
    for (const auto &e : entries_) {
        if (e.prefix.matches(key))
            return e;
    }
    return std::nullopt;
}

void
Tcam::saveState(persist::Encoder &enc) const
{
    enc.u64(entries_.size());
    for (const Route &e : entries_) {
        enc.prefix(e.prefix);
        enc.u32(e.nextHop);
    }
}

void
Tcam::loadState(persist::Decoder &dec)
{
    uint64_t n = dec.count(21);
    if (capacity_ != 0 && n > capacity_)
        throw persist::DecodeError("tcam: entry count over capacity");
    entries_.clear();
    entries_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        Prefix p = dec.prefix();
        NextHop h = dec.u32();
        if (!entries_.empty() &&
            entries_.back().prefix.length() < p.length())
            throw persist::DecodeError("tcam: priority order violated");
        entries_.push_back(Route{p, h});
    }
    for (size_t i = 1; i < entries_.size(); ++i) {
        // Order check above only catches cross-length inversions;
        // duplicates share a length and need an explicit scan.
        for (size_t j = 0; j < i; ++j) {
            if (entries_[j].prefix == entries_[i].prefix)
                throw persist::DecodeError("tcam: duplicate entry");
        }
    }
}

std::optional<NextHop>
Tcam::find(const Prefix &prefix) const
{
    for (const auto &e : entries_) {
        if (e.prefix == prefix)
            return e.nextHop;
    }
    return std::nullopt;
}

} // namespace chisel
