/**
 * @file
 * Functional ternary CAM.
 *
 * A TCAM compares a query against every stored (value, mask) entry in
 * parallel and returns the highest-priority match.  This model serves
 * two roles in the library: (1) the baseline LPM family of Section
 * 6.7.2, and (2) Chisel's small *spillover* TCAM that absorbs the
 * handful of keys a failed Bloomier setup cannot place (Section 4.1).
 *
 * For LPM, entries are kept sorted by decreasing prefix length, so
 * the first match (lowest index) is the longest prefix — the standard
 * TCAM LPM arrangement.
 */

#ifndef CHISEL_TCAM_TCAM_HH
#define CHISEL_TCAM_TCAM_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "route/table.hh"

namespace chisel {

namespace persist { class Encoder; class Decoder; }

/**
 * A priority-ordered ternary CAM storing prefixes.
 */
class Tcam
{
  public:
    /**
     * @param capacity Maximum entries (0 = unbounded, for the LPM
     *        baseline; Chisel's spillover uses a small fixed size).
     */
    explicit Tcam(size_t capacity = 0);

    /**
     * Insert a prefix, keeping entries sorted by decreasing length.
     * @return false if the TCAM is full.
     */
    bool insert(const Prefix &prefix, NextHop next_hop);

    /** Remove a prefix.  @return true if present. */
    bool erase(const Prefix &prefix);

    /** Update the next hop of an existing entry. */
    bool setNextHop(const Prefix &prefix, NextHop next_hop);

    /** Highest-priority (longest-prefix) match. */
    std::optional<Route> lookup(const Key128 &key) const;

    /** Exact-match search. */
    std::optional<NextHop> find(const Prefix &prefix) const;

    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }
    bool full() const { return capacity_ != 0 && size() >= capacity_; }

    /** All entries in priority order. */
    const std::vector<Route> &entries() const { return entries_; }

    void clear() { entries_.clear(); }

    /** Serialize entries in priority order. */
    void saveState(persist::Encoder &enc) const;

    /**
     * Restore from saveState(); throws persist::DecodeError (entry
     * count over capacity, priority order violated, duplicates).
     */
    void loadState(persist::Decoder &dec);

  private:
    size_t capacity_;
    std::vector<Route> entries_;   ///< Sorted by decreasing length.
};

} // namespace chisel

#endif // CHISEL_TCAM_TCAM_HH
