file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitions.dir/ablation_partitions.cc.o"
  "CMakeFiles/ablation_partitions.dir/ablation_partitions.cc.o.d"
  "ablation_partitions"
  "ablation_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
