# Empty compiler generated dependencies file for fig09_cpe_vs_pc.
# This may be replaced when dependencies are built.
