file(REMOVE_RECURSE
  "CMakeFiles/fig09_cpe_vs_pc.dir/fig09_cpe_vs_pc.cc.o"
  "CMakeFiles/fig09_cpe_vs_pc.dir/fig09_cpe_vs_pc.cc.o.d"
  "fig09_cpe_vs_pc"
  "fig09_cpe_vs_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cpe_vs_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
