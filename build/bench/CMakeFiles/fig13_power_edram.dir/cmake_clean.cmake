file(REMOVE_RECURSE
  "CMakeFiles/fig13_power_edram.dir/fig13_power_edram.cc.o"
  "CMakeFiles/fig13_power_edram.dir/fig13_power_edram.cc.o.d"
  "fig13_power_edram"
  "fig13_power_edram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_power_edram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
