# Empty compiler generated dependencies file for fig13_power_edram.
# This may be replaced when dependencies are built.
