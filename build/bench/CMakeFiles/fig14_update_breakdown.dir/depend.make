# Empty dependencies file for fig14_update_breakdown.
# This may be replaced when dependencies are built.
