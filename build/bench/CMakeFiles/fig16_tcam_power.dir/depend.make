# Empty dependencies file for fig16_tcam_power.
# This may be replaced when dependencies are built.
