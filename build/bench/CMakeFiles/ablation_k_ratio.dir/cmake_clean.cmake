file(REMOVE_RECURSE
  "CMakeFiles/ablation_k_ratio.dir/ablation_k_ratio.cc.o"
  "CMakeFiles/ablation_k_ratio.dir/ablation_k_ratio.cc.o.d"
  "ablation_k_ratio"
  "ablation_k_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
