# Empty compiler generated dependencies file for ablation_k_ratio.
# This may be replaced when dependencies are built.
