# Empty compiler generated dependencies file for throughput_lookup.
# This may be replaced when dependencies are built.
