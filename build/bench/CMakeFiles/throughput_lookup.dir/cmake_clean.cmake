file(REMOVE_RECURSE
  "CMakeFiles/throughput_lookup.dir/throughput_lookup.cc.o"
  "CMakeFiles/throughput_lookup.dir/throughput_lookup.cc.o.d"
  "throughput_lookup"
  "throughput_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
