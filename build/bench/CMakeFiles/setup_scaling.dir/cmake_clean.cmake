file(REMOVE_RECURSE
  "CMakeFiles/setup_scaling.dir/setup_scaling.cc.o"
  "CMakeFiles/setup_scaling.dir/setup_scaling.cc.o.d"
  "setup_scaling"
  "setup_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setup_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
