# Empty dependencies file for setup_scaling.
# This may be replaced when dependencies are built.
