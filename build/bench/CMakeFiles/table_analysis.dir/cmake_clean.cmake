file(REMOVE_RECURSE
  "CMakeFiles/table_analysis.dir/table_analysis.cc.o"
  "CMakeFiles/table_analysis.dir/table_analysis.cc.o.d"
  "table_analysis"
  "table_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
