# Empty dependencies file for table_analysis.
# This may be replaced when dependencies are built.
