# Empty compiler generated dependencies file for fig08_ebf_vs_chisel.
# This may be replaced when dependencies are built.
