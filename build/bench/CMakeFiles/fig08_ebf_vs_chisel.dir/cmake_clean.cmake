file(REMOVE_RECURSE
  "CMakeFiles/fig08_ebf_vs_chisel.dir/fig08_ebf_vs_chisel.cc.o"
  "CMakeFiles/fig08_ebf_vs_chisel.dir/fig08_ebf_vs_chisel.cc.o.d"
  "fig08_ebf_vs_chisel"
  "fig08_ebf_vs_chisel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ebf_vs_chisel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
