# Empty dependencies file for fig12_ipv6_scaling.
# This may be replaced when dependencies are built.
