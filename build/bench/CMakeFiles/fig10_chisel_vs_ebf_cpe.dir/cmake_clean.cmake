file(REMOVE_RECURSE
  "CMakeFiles/fig10_chisel_vs_ebf_cpe.dir/fig10_chisel_vs_ebf_cpe.cc.o"
  "CMakeFiles/fig10_chisel_vs_ebf_cpe.dir/fig10_chisel_vs_ebf_cpe.cc.o.d"
  "fig10_chisel_vs_ebf_cpe"
  "fig10_chisel_vs_ebf_cpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_chisel_vs_ebf_cpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
