# Empty compiler generated dependencies file for fig10_chisel_vs_ebf_cpe.
# This may be replaced when dependencies are built.
