file(REMOVE_RECURSE
  "CMakeFiles/fig15_tree_bitmap.dir/fig15_tree_bitmap.cc.o"
  "CMakeFiles/fig15_tree_bitmap.dir/fig15_tree_bitmap.cc.o.d"
  "fig15_tree_bitmap"
  "fig15_tree_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tree_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
