# Empty dependencies file for fig15_tree_bitmap.
# This may be replaced when dependencies are built.
