# Empty compiler generated dependencies file for fig02_setup_failure.
# This may be replaced when dependencies are built.
