file(REMOVE_RECURSE
  "CMakeFiles/fig02_setup_failure.dir/fig02_setup_failure.cc.o"
  "CMakeFiles/fig02_setup_failure.dir/fig02_setup_failure.cc.o.d"
  "fig02_setup_failure"
  "fig02_setup_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_setup_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
