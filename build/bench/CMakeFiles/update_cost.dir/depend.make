# Empty dependencies file for update_cost.
# This may be replaced when dependencies are built.
