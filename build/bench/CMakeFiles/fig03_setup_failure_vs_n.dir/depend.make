# Empty dependencies file for fig03_setup_failure_vs_n.
# This may be replaced when dependencies are built.
