file(REMOVE_RECURSE
  "CMakeFiles/fig03_setup_failure_vs_n.dir/fig03_setup_failure_vs_n.cc.o"
  "CMakeFiles/fig03_setup_failure_vs_n.dir/fig03_setup_failure_vs_n.cc.o.d"
  "fig03_setup_failure_vs_n"
  "fig03_setup_failure_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_setup_failure_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
