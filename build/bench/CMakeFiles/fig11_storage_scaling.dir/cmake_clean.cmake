file(REMOVE_RECURSE
  "CMakeFiles/fig11_storage_scaling.dir/fig11_storage_scaling.cc.o"
  "CMakeFiles/fig11_storage_scaling.dir/fig11_storage_scaling.cc.o.d"
  "fig11_storage_scaling"
  "fig11_storage_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_storage_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
