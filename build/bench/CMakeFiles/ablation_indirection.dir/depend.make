# Empty dependencies file for ablation_indirection.
# This may be replaced when dependencies are built.
