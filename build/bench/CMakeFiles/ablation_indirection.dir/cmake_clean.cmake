file(REMOVE_RECURSE
  "CMakeFiles/ablation_indirection.dir/ablation_indirection.cc.o"
  "CMakeFiles/ablation_indirection.dir/ablation_indirection.cc.o.d"
  "ablation_indirection"
  "ablation_indirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_indirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
