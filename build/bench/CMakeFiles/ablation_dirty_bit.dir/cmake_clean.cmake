file(REMOVE_RECURSE
  "CMakeFiles/ablation_dirty_bit.dir/ablation_dirty_bit.cc.o"
  "CMakeFiles/ablation_dirty_bit.dir/ablation_dirty_bit.cc.o.d"
  "ablation_dirty_bit"
  "ablation_dirty_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dirty_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
