# Empty compiler generated dependencies file for ablation_dirty_bit.
# This may be replaced when dependencies are built.
