file(REMOVE_RECURSE
  "CMakeFiles/latency_accesses.dir/latency_accesses.cc.o"
  "CMakeFiles/latency_accesses.dir/latency_accesses.cc.o.d"
  "latency_accesses"
  "latency_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
