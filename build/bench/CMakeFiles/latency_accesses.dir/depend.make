# Empty dependencies file for latency_accesses.
# This may be replaced when dependencies are built.
