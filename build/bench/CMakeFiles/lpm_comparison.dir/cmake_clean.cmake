file(REMOVE_RECURSE
  "CMakeFiles/lpm_comparison.dir/lpm_comparison.cc.o"
  "CMakeFiles/lpm_comparison.dir/lpm_comparison.cc.o.d"
  "lpm_comparison"
  "lpm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
