# Empty dependencies file for lpm_comparison.
# This may be replaced when dependencies are built.
