file(REMOVE_RECURSE
  "CMakeFiles/hash_load_balance.dir/hash_load_balance.cc.o"
  "CMakeFiles/hash_load_balance.dir/hash_load_balance.cc.o.d"
  "hash_load_balance"
  "hash_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
