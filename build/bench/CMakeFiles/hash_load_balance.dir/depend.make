# Empty dependencies file for hash_load_balance.
# This may be replaced when dependencies are built.
