file(REMOVE_RECURSE
  "CMakeFiles/table1_update_rates.dir/table1_update_rates.cc.o"
  "CMakeFiles/table1_update_rates.dir/table1_update_rates.cc.o.d"
  "table1_update_rates"
  "table1_update_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_update_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
