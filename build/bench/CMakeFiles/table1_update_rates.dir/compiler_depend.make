# Empty compiler generated dependencies file for table1_update_rates.
# This may be replaced when dependencies are built.
