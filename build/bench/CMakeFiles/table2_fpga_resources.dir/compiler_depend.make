# Empty compiler generated dependencies file for table2_fpga_resources.
# This may be replaced when dependencies are built.
