file(REMOVE_RECURSE
  "CMakeFiles/table2_fpga_resources.dir/table2_fpga_resources.cc.o"
  "CMakeFiles/table2_fpga_resources.dir/table2_fpga_resources.cc.o.d"
  "table2_fpga_resources"
  "table2_fpga_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
