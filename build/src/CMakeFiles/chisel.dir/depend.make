# Empty dependencies file for chisel.
# This may be replaced when dependencies are built.
