
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/analysis.cc" "src/CMakeFiles/chisel.dir/bloom/analysis.cc.o" "gcc" "src/CMakeFiles/chisel.dir/bloom/analysis.cc.o.d"
  "/root/repo/src/bloom/bloom.cc" "src/CMakeFiles/chisel.dir/bloom/bloom.cc.o" "gcc" "src/CMakeFiles/chisel.dir/bloom/bloom.cc.o.d"
  "/root/repo/src/bloom/bloomier.cc" "src/CMakeFiles/chisel.dir/bloom/bloomier.cc.o" "gcc" "src/CMakeFiles/chisel.dir/bloom/bloomier.cc.o.d"
  "/root/repo/src/bloom/counting_bloom.cc" "src/CMakeFiles/chisel.dir/bloom/counting_bloom.cc.o" "gcc" "src/CMakeFiles/chisel.dir/bloom/counting_bloom.cc.o.d"
  "/root/repo/src/classify/classifier.cc" "src/CMakeFiles/chisel.dir/classify/classifier.cc.o" "gcc" "src/CMakeFiles/chisel.dir/classify/classifier.cc.o.d"
  "/root/repo/src/common/key128.cc" "src/CMakeFiles/chisel.dir/common/key128.cc.o" "gcc" "src/CMakeFiles/chisel.dir/common/key128.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/chisel.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/chisel.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/chisel.dir/common/random.cc.o" "gcc" "src/CMakeFiles/chisel.dir/common/random.cc.o.d"
  "/root/repo/src/core/bitvector_table.cc" "src/CMakeFiles/chisel.dir/core/bitvector_table.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/bitvector_table.cc.o.d"
  "/root/repo/src/core/collapse.cc" "src/CMakeFiles/chisel.dir/core/collapse.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/collapse.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/chisel.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/engine.cc.o.d"
  "/root/repo/src/core/filter_table.cc" "src/CMakeFiles/chisel.dir/core/filter_table.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/filter_table.cc.o.d"
  "/root/repo/src/core/fpga_model.cc" "src/CMakeFiles/chisel.dir/core/fpga_model.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/fpga_model.cc.o.d"
  "/root/repo/src/core/power_model.cc" "src/CMakeFiles/chisel.dir/core/power_model.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/power_model.cc.o.d"
  "/root/repo/src/core/result_table.cc" "src/CMakeFiles/chisel.dir/core/result_table.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/result_table.cc.o.d"
  "/root/repo/src/core/shadow.cc" "src/CMakeFiles/chisel.dir/core/shadow.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/shadow.cc.o.d"
  "/root/repo/src/core/storage_model.cc" "src/CMakeFiles/chisel.dir/core/storage_model.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/storage_model.cc.o.d"
  "/root/repo/src/core/subcell.cc" "src/CMakeFiles/chisel.dir/core/subcell.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/subcell.cc.o.d"
  "/root/repo/src/core/timing_model.cc" "src/CMakeFiles/chisel.dir/core/timing_model.cc.o" "gcc" "src/CMakeFiles/chisel.dir/core/timing_model.cc.o.d"
  "/root/repo/src/cpe/cpe.cc" "src/CMakeFiles/chisel.dir/cpe/cpe.cc.o" "gcc" "src/CMakeFiles/chisel.dir/cpe/cpe.cc.o.d"
  "/root/repo/src/hash/h3.cc" "src/CMakeFiles/chisel.dir/hash/h3.cc.o" "gcc" "src/CMakeFiles/chisel.dir/hash/h3.cc.o.d"
  "/root/repo/src/hash/mix.cc" "src/CMakeFiles/chisel.dir/hash/mix.cc.o" "gcc" "src/CMakeFiles/chisel.dir/hash/mix.cc.o.d"
  "/root/repo/src/hashtable/chained.cc" "src/CMakeFiles/chisel.dir/hashtable/chained.cc.o" "gcc" "src/CMakeFiles/chisel.dir/hashtable/chained.cc.o.d"
  "/root/repo/src/hashtable/dleft.cc" "src/CMakeFiles/chisel.dir/hashtable/dleft.cc.o" "gcc" "src/CMakeFiles/chisel.dir/hashtable/dleft.cc.o.d"
  "/root/repo/src/hashtable/ebf.cc" "src/CMakeFiles/chisel.dir/hashtable/ebf.cc.o" "gcc" "src/CMakeFiles/chisel.dir/hashtable/ebf.cc.o.d"
  "/root/repo/src/lpm/bloom_lpm.cc" "src/CMakeFiles/chisel.dir/lpm/bloom_lpm.cc.o" "gcc" "src/CMakeFiles/chisel.dir/lpm/bloom_lpm.cc.o.d"
  "/root/repo/src/lpm/ebf_cpe_lpm.cc" "src/CMakeFiles/chisel.dir/lpm/ebf_cpe_lpm.cc.o" "gcc" "src/CMakeFiles/chisel.dir/lpm/ebf_cpe_lpm.cc.o.d"
  "/root/repo/src/lpm/waldvogel.cc" "src/CMakeFiles/chisel.dir/lpm/waldvogel.cc.o" "gcc" "src/CMakeFiles/chisel.dir/lpm/waldvogel.cc.o.d"
  "/root/repo/src/match/dictionary.cc" "src/CMakeFiles/chisel.dir/match/dictionary.cc.o" "gcc" "src/CMakeFiles/chisel.dir/match/dictionary.cc.o.d"
  "/root/repo/src/mem/edram.cc" "src/CMakeFiles/chisel.dir/mem/edram.cc.o" "gcc" "src/CMakeFiles/chisel.dir/mem/edram.cc.o.d"
  "/root/repo/src/mem/sram.cc" "src/CMakeFiles/chisel.dir/mem/sram.cc.o" "gcc" "src/CMakeFiles/chisel.dir/mem/sram.cc.o.d"
  "/root/repo/src/mem/tech.cc" "src/CMakeFiles/chisel.dir/mem/tech.cc.o" "gcc" "src/CMakeFiles/chisel.dir/mem/tech.cc.o.d"
  "/root/repo/src/route/analysis.cc" "src/CMakeFiles/chisel.dir/route/analysis.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/analysis.cc.o.d"
  "/root/repo/src/route/prefix.cc" "src/CMakeFiles/chisel.dir/route/prefix.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/prefix.cc.o.d"
  "/root/repo/src/route/reader.cc" "src/CMakeFiles/chisel.dir/route/reader.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/reader.cc.o.d"
  "/root/repo/src/route/synth.cc" "src/CMakeFiles/chisel.dir/route/synth.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/synth.cc.o.d"
  "/root/repo/src/route/table.cc" "src/CMakeFiles/chisel.dir/route/table.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/table.cc.o.d"
  "/root/repo/src/route/updates.cc" "src/CMakeFiles/chisel.dir/route/updates.cc.o" "gcc" "src/CMakeFiles/chisel.dir/route/updates.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/chisel.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/chisel.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/chisel.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/chisel.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/chisel.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/chisel.dir/sim/stats.cc.o.d"
  "/root/repo/src/tcam/tcam.cc" "src/CMakeFiles/chisel.dir/tcam/tcam.cc.o" "gcc" "src/CMakeFiles/chisel.dir/tcam/tcam.cc.o.d"
  "/root/repo/src/tcam/tcam_model.cc" "src/CMakeFiles/chisel.dir/tcam/tcam_model.cc.o" "gcc" "src/CMakeFiles/chisel.dir/tcam/tcam_model.cc.o.d"
  "/root/repo/src/trie/binary_trie.cc" "src/CMakeFiles/chisel.dir/trie/binary_trie.cc.o" "gcc" "src/CMakeFiles/chisel.dir/trie/binary_trie.cc.o.d"
  "/root/repo/src/trie/tree_bitmap.cc" "src/CMakeFiles/chisel.dir/trie/tree_bitmap.cc.o" "gcc" "src/CMakeFiles/chisel.dir/trie/tree_bitmap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
