file(REMOVE_RECURSE
  "libchisel.a"
)
