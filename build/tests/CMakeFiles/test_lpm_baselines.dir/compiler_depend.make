# Empty compiler generated dependencies file for test_lpm_baselines.
# This may be replaced when dependencies are built.
