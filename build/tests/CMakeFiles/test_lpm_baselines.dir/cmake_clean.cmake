file(REMOVE_RECURSE
  "CMakeFiles/test_lpm_baselines.dir/test_lpm_baselines.cc.o"
  "CMakeFiles/test_lpm_baselines.dir/test_lpm_baselines.cc.o.d"
  "test_lpm_baselines"
  "test_lpm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
