# Empty compiler generated dependencies file for test_collapse.
# This may be replaced when dependencies are built.
