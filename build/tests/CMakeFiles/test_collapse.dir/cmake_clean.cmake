file(REMOVE_RECURSE
  "CMakeFiles/test_collapse.dir/test_collapse.cc.o"
  "CMakeFiles/test_collapse.dir/test_collapse.cc.o.d"
  "test_collapse"
  "test_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
