# Empty compiler generated dependencies file for test_bloomier.
# This may be replaced when dependencies are built.
