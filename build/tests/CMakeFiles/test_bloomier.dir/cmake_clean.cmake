file(REMOVE_RECURSE
  "CMakeFiles/test_bloomier.dir/test_bloomier.cc.o"
  "CMakeFiles/test_bloomier.dir/test_bloomier.cc.o.d"
  "test_bloomier"
  "test_bloomier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bloomier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
