# Empty dependencies file for test_subcell.
# This may be replaced when dependencies are built.
