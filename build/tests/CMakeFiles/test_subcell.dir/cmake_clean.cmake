file(REMOVE_RECURSE
  "CMakeFiles/test_subcell.dir/test_subcell.cc.o"
  "CMakeFiles/test_subcell.dir/test_subcell.cc.o.d"
  "test_subcell"
  "test_subcell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
