# Empty compiler generated dependencies file for test_cpe.
# This may be replaced when dependencies are built.
