file(REMOVE_RECURSE
  "CMakeFiles/test_cpe.dir/test_cpe.cc.o"
  "CMakeFiles/test_cpe.dir/test_cpe.cc.o.d"
  "test_cpe"
  "test_cpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
