file(REMOVE_RECURSE
  "CMakeFiles/test_tcam.dir/test_tcam.cc.o"
  "CMakeFiles/test_tcam.dir/test_tcam.cc.o.d"
  "test_tcam"
  "test_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
