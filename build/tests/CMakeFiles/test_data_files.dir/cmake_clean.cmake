file(REMOVE_RECURSE
  "CMakeFiles/test_data_files.dir/test_data_files.cc.o"
  "CMakeFiles/test_data_files.dir/test_data_files.cc.o.d"
  "test_data_files"
  "test_data_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
