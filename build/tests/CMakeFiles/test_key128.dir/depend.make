# Empty dependencies file for test_key128.
# This may be replaced when dependencies are built.
