file(REMOVE_RECURSE
  "CMakeFiles/test_key128.dir/test_key128.cc.o"
  "CMakeFiles/test_key128.dir/test_key128.cc.o.d"
  "test_key128"
  "test_key128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
