file(REMOVE_RECURSE
  "CMakeFiles/test_hashtable.dir/test_hashtable.cc.o"
  "CMakeFiles/test_hashtable.dir/test_hashtable.cc.o.d"
  "test_hashtable"
  "test_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
