file(REMOVE_RECURSE
  "CMakeFiles/example_payload_scan.dir/payload_scan.cc.o"
  "CMakeFiles/example_payload_scan.dir/payload_scan.cc.o.d"
  "example_payload_scan"
  "example_payload_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_payload_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
