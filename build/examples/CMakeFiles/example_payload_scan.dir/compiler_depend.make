# Empty compiler generated dependencies file for example_payload_scan.
# This may be replaced when dependencies are built.
