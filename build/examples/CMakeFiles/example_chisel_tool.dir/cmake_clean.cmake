file(REMOVE_RECURSE
  "CMakeFiles/example_chisel_tool.dir/chisel_tool.cc.o"
  "CMakeFiles/example_chisel_tool.dir/chisel_tool.cc.o.d"
  "example_chisel_tool"
  "example_chisel_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chisel_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
