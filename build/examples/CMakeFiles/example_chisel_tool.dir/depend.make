# Empty dependencies file for example_chisel_tool.
# This may be replaced when dependencies are built.
