file(REMOVE_RECURSE
  "CMakeFiles/example_ipv4_router.dir/ipv4_router.cc.o"
  "CMakeFiles/example_ipv4_router.dir/ipv4_router.cc.o.d"
  "example_ipv4_router"
  "example_ipv4_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ipv4_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
