# Empty dependencies file for example_ipv4_router.
# This may be replaced when dependencies are built.
