# Empty dependencies file for example_update_replay.
# This may be replaced when dependencies are built.
