file(REMOVE_RECURSE
  "CMakeFiles/example_update_replay.dir/update_replay.cc.o"
  "CMakeFiles/example_update_replay.dir/update_replay.cc.o.d"
  "example_update_replay"
  "example_update_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_update_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
