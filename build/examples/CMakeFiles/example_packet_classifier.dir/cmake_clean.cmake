file(REMOVE_RECURSE
  "CMakeFiles/example_packet_classifier.dir/packet_classifier.cc.o"
  "CMakeFiles/example_packet_classifier.dir/packet_classifier.cc.o.d"
  "example_packet_classifier"
  "example_packet_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_packet_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
