# Empty compiler generated dependencies file for example_packet_classifier.
# This may be replaced when dependencies are built.
