# Empty compiler generated dependencies file for example_ipv6_scaling.
# This may be replaced when dependencies are built.
