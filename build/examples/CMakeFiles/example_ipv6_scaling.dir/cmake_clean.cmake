file(REMOVE_RECURSE
  "CMakeFiles/example_ipv6_scaling.dir/ipv6_scaling.cc.o"
  "CMakeFiles/example_ipv6_scaling.dir/ipv6_scaling.cc.o.d"
  "example_ipv6_scaling"
  "example_ipv6_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ipv6_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
