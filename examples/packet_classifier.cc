/**
 * @file
 * Packet-classification scenario: the extension Section 8 of the
 * paper sketches — Chisel LPM engines as the per-field building
 * blocks of a two-field (src, dst) classifier via cross-producting.
 *
 * Builds a synthetic firewall rule set, classifies a packet stream,
 * and audits against a linear rule scan.
 */

#include <cstdio>

#include "classify/classifier.hh"
#include "common/random.hh"
#include "sim/stats.hh"

int
main()
{
    using namespace chisel;
    Rng rng(0xC1A55);

    // Synthetic firewall: subnet pairs at mixed specificity.
    std::vector<Rule> rules;
    for (int i = 0; i < 200; ++i) {
        Rule r;
        r.src = Prefix(Key128(rng.next64(), 0),
                       static_cast<unsigned>(rng.nextRange(8, 24)));
        r.dst = Prefix(Key128(rng.next64(), 0),
                       static_cast<unsigned>(rng.nextRange(8, 24)));
        r.priority = static_cast<uint32_t>(rng.nextBelow(16));
        r.action = static_cast<uint32_t>(i % 3);   // permit/deny/log.
        rules.push_back(r);
    }
    rules.push_back(Rule{Prefix(), Prefix(), 255, 1});   // Default deny.

    StopWatch build;
    TwoFieldClassifier cls(rules);
    std::printf("Classifier built in %.3f s: %zu rules, %zu src "
                "prefixes, %zu dst prefixes, %zu cross-product "
                "entries\n",
                build.seconds(), cls.ruleCount(),
                cls.srcPrefixCount(), cls.dstPrefixCount(),
                cls.crossProductSize());

    // Classify a stream; every packet costs two O(1) LPMs plus one
    // hash probe, inheriting Chisel's deterministic lookup rate.
    const size_t packets = 500000;
    StopWatch run;
    uint64_t actions[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < packets; ++i) {
        Key128 src(rng.next64(), 0), dst(rng.next64(), 0);
        auto r = cls.classify(src.masked(32), dst.masked(32));
        ++actions[r.matched ? (r.action % 3) : 3];
    }
    double secs = run.seconds();
    std::printf("Classified %zu packets in %.2f s (%.2f Mpps "
                "software): permit %llu, deny %llu, log %llu, "
                "no-match %llu\n",
                packets, secs, packets / secs / 1e6,
                static_cast<unsigned long long>(actions[0]),
                static_cast<unsigned long long>(actions[1]),
                static_cast<unsigned long long>(actions[2]),
                static_cast<unsigned long long>(actions[3]));

    // Audit a sample against the linear scan.
    size_t wrong = 0;
    for (int i = 0; i < 5000; ++i) {
        Key128 src = Key128(rng.next64(), 0).masked(32);
        Key128 dst = Key128(rng.next64(), 0).masked(32);
        auto got = cls.classify(src, dst);
        // Linear scan.
        std::optional<size_t> want;
        for (size_t j = 0; j < rules.size(); ++j) {
            if (rules[j].src.matches(src) &&
                rules[j].dst.matches(dst) &&
                (!want || rules[j].priority < rules[*want].priority))
                want = j;
        }
        if (want.has_value() != got.matched ||
            (want && rules[*want].priority != got.priority))
            ++wrong;
    }
    std::printf("Linear-scan audit: 5000 packets, %zu mismatches\n",
                wrong);
    return wrong == 0 ? 0 : 1;
}
