/**
 * @file
 * The paper's Section-5 workflow in one call: run the architectural
 * simulator over a table (file or synthetic), a lookup stream, and
 * an update stream, and print the consolidated report — functional
 * verification, storage, power, area, and timing.
 *
 * Usage: example_simulate [options] [table.txt]
 *
 * Options:
 *   --metrics-json=<path>  write a telemetry snapshot (counters,
 *                          gauges, per-lookup access histograms with
 *                          p50/p95/p99) as JSON
 *   --trace=<path>         write every traced memory access as a
 *                          Chrome trace_event JSON file
 */

#include <iostream>

#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "telemetry/cli.hh"

int
main(int argc, char **argv)
{
    using namespace chisel;

    telemetry::TelemetryOptions opts =
        telemetry::TelemetryOptions::parse(argc, argv);

    RoutingTable table;
    if (argc > 1)
        table = readTableFile(argv[1]);
    else
        table = generateScaledTable(100000, 32, 5);

    ChiselSimulator sim(table);

    telemetry::TelemetrySession session(opts);
    session.attach(sim.engine());

    auto keys = generateLookupKeys(table, 200000, 32, 0.9, 6);
    sim.runLookups(keys);

    UpdateTraceGenerator gen(table, standardTraceProfiles()[0], 32, 7);
    sim.runUpdates(gen.generate(100000));
    sim.runLookups(keys);   // Verify again after churn.

    auto report = sim.report();
    report.print(std::cout);

    if (session.enabled()) {
        session.engineTelemetry()->snapshot(sim.engine());
        metricsReport(session.registry()).print(std::cout);
        session.finish();
    }
    return report.mismatches == 0 ? 0 : 1;
}
