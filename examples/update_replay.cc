/**
 * @file
 * BGP update-daemon scenario: replay an update trace against a live
 * Chisel engine, printing the Figure-14-style classification, the
 * sustained rate, and a correctness audit afterwards.
 *
 * Usage:
 *     example_update_replay [options] [trace.txt [table.txt]]
 *
 * Without arguments a synthetic table and an rrc00-profile trace are
 * generated.  Trace format: "A prefix nexthop" / "W prefix" lines.
 * Run with --help for the full option list; unknown --options exit
 * nonzero (telemetry/cli.hh FlagTable).
 *
 * Telemetry options: --metrics-json=<path> (telemetry snapshot with
 * per-update write histograms), --trace=<path> (Chrome trace_event
 * file).
 *
 * Persistence options (docs/persistence.md):
 *     --journal=<path>      write-ahead journal every update
 *     --snapshot=<path>     snapshot image path
 *     --snapshot-every=<n>  snapshot after every n applied updates
 *     --fsync-every=<n>     fsync the journal every n records (default 1)
 *     --recover             recover from snapshot+journal, audit, then
 *                           resume the trace where the journal ends
 *     --crash-after=<n>     raise SIGKILL after n applied updates
 *                           (crash-recovery drills; implies journaling
 *                           is the only durable record of those updates)
 *     --abort-after=<n>     raise SIGABRT after n applied updates:
 *                           unlike SIGKILL this runs the flight
 *                           recorder's crash handler, dumping the last
 *                           events to <prefix>.crash[.trace].json
 *     --routes=<n>          synthetic table size (default 80000)
 *     --updates=<n>         synthetic trace length (default 300000)
 *
 * Robustness options (docs/robustness.md):
 *     --flap-storm          synthesize a flap-storm trace: a Zipf-hot
 *                           set of prefixes cycling announce/withdraw
 *     --dirty-budget=<n>    per-cell dirty-group retention budget
 *                           (decay-ordered eviction above it; 0 = off)
 *     --purge-every=<n>     purgeDirty() every n applied updates,
 *                           journaled as a Housekeeping record
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/engine.hh"
#include "health/monitor.hh"
#include "persist/journal.hh"
#include "persist/recovery.hh"
#include "persist/snapshot.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/report.hh"
#include "sim/stats.hh"
#include "telemetry/cli.hh"
#include "trie/binary_trie.hh"

namespace {

using namespace chisel;

struct ReplayOptions
{
    std::string journalPath;
    std::string snapshotPath;
    uint64_t snapshotEvery = 0;   // 0 = never.
    uint64_t fsyncEvery = 1;
    uint64_t crashAfter = 0;      // 0 = never.
    uint64_t abortAfter = 0;      // 0 = never.
    bool recover = false;
    size_t routes = 80000;
    size_t updates = 300000;
    bool flapStorm = false;
    uint64_t dirtyBudget = 0;
    uint64_t purgeEvery = 0;      // 0 = never.

    /**
     * Register every replay flag on @p flags.  Parsing is strict
     * (telemetry/cli.hh FlagTable): an unknown --option or malformed
     * value exits nonzero with the generated --help text.
     */
    void
    registerFlags(telemetry::FlagTable &flags)
    {
        flags.stringFlag("journal", "write-ahead journal path",
                         &journalPath)
            .stringFlag("snapshot", "snapshot image path",
                        &snapshotPath)
            .u64Flag("snapshot-every",
                     "snapshot after every n applied updates "
                     "(0 = never)",
                     &snapshotEvery)
            .u64Flag("fsync-every",
                     "fsync the journal every n records (default 1)",
                     &fsyncEvery)
            .u64Flag("crash-after",
                     "raise SIGKILL after n applied updates",
                     &crashAfter)
            .u64Flag("abort-after",
                     "raise SIGABRT after n applied updates "
                     "(runs the flight-recorder crash handler)",
                     &abortAfter)
            .boolFlag("recover",
                      "recover from snapshot+journal, audit, then "
                      "resume the trace",
                      &recover)
            .sizeFlag("routes", "synthetic table size (default 80000)",
                      &routes)
            .sizeFlag("updates",
                      "synthetic trace length (default 300000)",
                      &updates)
            .boolFlag("flap-storm",
                      "synthesize a flap-storm trace", &flapStorm)
            .u64Flag("dirty-budget",
                     "per-cell dirty-group retention budget (0 = off)",
                     &dirtyBudget)
            .u64Flag("purge-every",
                     "purgeDirty() every n applied updates, journaled "
                     "as Housekeeping (0 = never)",
                     &purgeEvery);
    }
};

/**
 * Flush every output channel.  Called on *all* exit paths — including
 * the nonzero-exit audit failures — so a scripted caller never loses
 * the metrics file or the tail of stdout to an unflushed stream.
 */
int
finishRun(telemetry::TelemetrySession &session, ChiselEngine *engine,
          int code)
{
    if (session.enabled()) {
        if (engine != nullptr)
            session.engineTelemetry()->snapshot(*engine);
        metricsReport(session.registry()).print();
        session.finish();
    }
    std::fflush(stdout);
    std::fflush(stderr);
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace chisel;

    telemetry::TelemetryOptions topts =
        telemetry::TelemetryOptions::parse(argc, argv);
    ReplayOptions popts;
    telemetry::FlagTable flags(
        "example_update_replay",
        "Replay an update trace against a journaled Chisel engine "
        "(positional: [trace.txt [table.txt]]).");
    popts.registerFlags(flags);
    if (!flags.parseStrict(argc, argv))
        return flags.helpRequested() ? 0 : 2;

    // The replay always flies with the recorder on, so the abort
    // drill (and any real crash) has history to dump.
    if (topts.flightEvents == 0)
        topts.flightEvents = 4096;
    telemetry::TelemetrySession session(topts);
    if (topts.flightDumpPrefix.empty())
        telemetry::FlightRecorder::installCrashHandler(
            "update_replay");

    RoutingTable table;
    std::vector<Update> trace;
    ReadReport report;
    if (argc > 2)
        table = readTableFile(argv[2], &report);
    else
        table = generateScaledTable(popts.routes, 32, 42);

    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return finishRun(session, nullptr, 1);
        }
        trace = readTrace(in, &report);
    } else {
        auto prof = standardTraceProfiles()[0];   // rrc00.
        prof.flapStorm = popts.flapStorm;
        UpdateTraceGenerator gen(table, prof, 32, 43);
        trace = gen.generate(popts.updates);
    }
    std::printf("Table: %zu routes; trace: %zu updates\n",
                table.size(), trace.size());
    if (!report.ok()) {
        // Lenient parse: the replay proceeds on what did parse, but
        // every offending line is reported.
        std::printf("Input: %zu malformed line(s) skipped of %zu\n",
                    report.skipped, report.lines);
        for (const auto &[lineno, reason] : report.errors)
            std::printf("  line %zu: %s\n", lineno, reason.c_str());
    }

    ChiselConfig config;
    config.dirtyBudgetPerCell = popts.dirtyBudget;
    std::unique_ptr<ChiselEngine> engine;
    size_t start = 0;   // First trace index still to apply.

    if (popts.recover) {
        persist::RecoveryOptions ropts;
        ropts.journalPath = popts.journalPath;
        ropts.snapshotPath = popts.snapshotPath;
        ropts.config = config;
        ropts.initialTable = table;
        persist::RecoveryReport rec = persist::recoverEngine(ropts);

        std::printf("Recovery: source=%s fallbacks=%llu "
                    "journal-records=%llu replayed=%llu last-seq=%llu "
                    "torn-tail=%s bloomier-setups=%llu\n",
                    persist::recoverySourceName(rec.source),
                    static_cast<unsigned long long>(rec.fallbacks),
                    static_cast<unsigned long long>(rec.journalRecords),
                    static_cast<unsigned long long>(
                        rec.recordsReplayed),
                    static_cast<unsigned long long>(rec.lastSeq),
                    rec.journalTornTail ? "yes" : "no",
                    static_cast<unsigned long long>(
                        rec.engine->bloomierSetups()));
        if (!rec.snapshotError.empty())
            std::printf("Recovery: snapshot unusable: %s\n",
                        rec.snapshotError.c_str());
        if (!rec.previousSnapshotError.empty())
            std::printf("Recovery: previous snapshot unusable: %s\n",
                        rec.previousSnapshotError.c_str());
        std::printf("Recovery audit: %s (%llu missing, %llu "
                    "mismatched, %llu phantom)\n",
                    rec.auditPassed ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(rec.auditMissing),
                    static_cast<unsigned long long>(
                        rec.auditMismatched),
                    static_cast<unsigned long long>(rec.auditPhantom));

        engine = std::move(rec.engine);
        session.attach(*engine);
        if (session.enabled())
            session.engineTelemetry()->recordRecovery(
                rec.recordsReplayed, rec.snapshotLoads, rec.fallbacks);
        if (!rec.auditPassed)
            return finishRun(session, engine.get(), 2);
        if (rec.lastSeq > trace.size()) {
            std::fprintf(stderr,
                         "journal is ahead of the trace (seq %llu > "
                         "%zu updates)\n",
                         static_cast<unsigned long long>(rec.lastSeq),
                         trace.size());
            return finishRun(session, engine.get(), 1);
        }
        start = static_cast<size_t>(rec.lastSeq);
        std::printf("Resuming trace at update %zu of %zu\n", start,
                    trace.size());
    } else {
        engine = std::make_unique<ChiselEngine>(table, config);
        session.attach(*engine);
    }

    // The truth table tracks what the engine *should* hold: the
    // initial table advanced through every update that entered the
    // engine — including, on a recovered run, the pre-crash portion
    // replayed from the journal.
    RoutingTable truth = table;
    for (size_t i = 0; i < start; ++i) {
        const Update &u = trace[i];
        if (u.kind == UpdateKind::Announce)
            truth.add(u.prefix, u.nextHop);
        else
            truth.remove(u.prefix);
    }

    std::unique_ptr<persist::UpdateJournal> journal;
    if (!popts.journalPath.empty())
        journal = std::make_unique<persist::UpdateJournal>(
            popts.journalPath, configFingerprint(config),
            popts.fsyncEvery);

    auto journalPurge = [&] {
        if (journal)
            journal->appendHousekeeping(
                persist::JournalRecord::HousekeepingKind::PurgeDirty);
    };

    // Health-state machine, sampled on a fixed update cadence.  The
    // single-image replay executes the cheap rungs itself (purge,
    // scrub) and reports the rebuild rungs as unavailable.
    health::HealthMonitor hmon;
    struct
    {
        uint64_t tcam = 0, retries = 0, parity = 0, rejectedSlow = 0;
    } hbase;
    size_t purged = 0;
    auto sampleHealth = [&] {
        health::HealthSignals sig;
        RobustnessCounters hc = engine->robustness();
        if (config.slowPathCapacity > 0)
            sig.slowPathOccupancy =
                double(engine->slowPathCount()) /
                double(config.slowPathCapacity);
        if (config.dirtyBudgetPerCell > 0)
            sig.dirtyOccupancy =
                double(engine->dirtyCount()) /
                (double(config.dirtyBudgetPerCell) *
                 double(engine->cellCount()));
        sig.tcamOverflows = hc.tcamOverflows - hbase.tcam;
        sig.setupRetries = hc.setupRetries - hbase.retries;
        sig.parityRecoveries = hc.parityRecoveries - hbase.parity;
        sig.slowPathRejected =
            hc.slowPathRejected - hbase.rejectedSlow;
        hbase = {hc.tcamOverflows, hc.setupRetries,
                 hc.parityRecoveries, hc.slowPathRejected};
        hmon.sample(sig);
        health::RecoveryAction action = hmon.takeAction();
        switch (action) {
          case health::RecoveryAction::PurgeDirty:
            purged += engine->purgeDirty();
            journalPurge();
            hmon.actionCompleted(action, true);
            break;
          case health::RecoveryAction::Scrub:
            engine->scrub();
            hmon.actionCompleted(action, true);
            break;
          case health::RecoveryAction::None:
            break;
          default:
            hmon.actionCompleted(action, false);
            break;
        }
    };

    StopWatch watch;
    size_t rejected = 0;
    uint64_t applied = 0;
    bool degraded = false;
    for (size_t i = start; i < trace.size(); ++i) {
        const Update &u = trace[i];
        uint64_t seq = 0;
        if (journal) {
            seq = journal->append(u);   // Durable before applied.
            if (seq == 0) {
                // The journal could not durably log this update: the
                // durability contract is void, so the replay stops
                // acknowledging — the update is neither applied nor
                // added to the truth, exactly as a daemon must stop
                // acking peers it can no longer survive a crash for.
                degraded = true;
                std::printf(
                    "DEGRADED: journal I/O failure (%s) after seq "
                    "%llu; stopped acknowledging at update %zu of "
                    "%zu\n",
                    journal->ioError().c_str(),
                    static_cast<unsigned long long>(
                        journal->lastSeq()),
                    i, trace.size());
                break;
            }
        }
        UpdateOutcome out = engine->apply(u);
        if (journal)
            journal->appendOutcome(seq, out);
        ++applied;
        if (out.ok()) {
            if (u.kind == UpdateKind::Announce)
                truth.add(u.prefix, u.nextHop);
            else
                truth.remove(u.prefix);
        } else {
            ++rejected;   // Refused updates don't enter the truth.
        }
        if (popts.crashAfter != 0 && applied >= popts.crashAfter) {
            // The crash drill: die the hard way, mid-stream, with no
            // destructor or flush.  The journal's synced prefix is
            // the only durable record.
            std::printf("crash drill: SIGKILL after %llu updates\n",
                        static_cast<unsigned long long>(applied));
            std::fflush(stdout);
            ::raise(SIGKILL);
        }
        if (popts.abortAfter != 0 && applied >= popts.abortAfter) {
            // The observable crash drill: SIGABRT runs the flight
            // recorder's signal handler before dying, so the dump
            // carries the updates leading up to this point.
            std::printf("abort drill: SIGABRT after %llu updates\n",
                        static_cast<unsigned long long>(applied));
            std::fflush(stdout);
            std::abort();
        }
        if (popts.snapshotEvery != 0 &&
            !popts.snapshotPath.empty() &&
            applied % popts.snapshotEvery == 0) {
            uint64_t covered = journal ? seq : i + 1;
            persist::saveSnapshot(popts.snapshotPath, *engine,
                                  covered);
            if (journal)
                journal->appendSnapshotMark(covered);
        }
        if (popts.purgeEvery != 0 && applied % popts.purgeEvery == 0) {
            purged += engine->purgeDirty();
            journalPurge();
        }
        if (applied % 1024 == 0)
            sampleHealth();
    }
    if (journal)
        journal->sync();
    double secs = watch.seconds();

    const auto &s = engine->updateStats();
    std::printf("Applied in %.2f s: %.0f updates/sec (paper: "
                "~276K/s host-class)\n",
                secs, applied / secs);
    std::printf("%-12s %10s %8s\n", "category", "count", "share");
    for (UpdateClass c : {UpdateClass::Withdraw, UpdateClass::RouteFlap,
                          UpdateClass::NextHopChange,
                          UpdateClass::AddCollapsed,
                          UpdateClass::SingletonInsert,
                          UpdateClass::Resetup, UpdateClass::Spill,
                          UpdateClass::NoOp, UpdateClass::Expire}) {
        std::printf("%-12s %10llu %7.3f%%\n", updateClassName(c),
                    static_cast<unsigned long long>(s.count(c)),
                    100.0 * s.fraction(c));
    }
    std::printf("Incremental fraction: %.3f%% (paper: >= 99.9%%)\n",
                100.0 * s.incrementalFraction());

    // Audit the final state against the oracle.
    BinaryTrie oracle(truth);
    auto keys = generateLookupKeys(truth, 20000, 32, 0.8, 44);
    size_t wrong = 0;
    for (const auto &k : keys) {
        auto a = oracle.lookup(k, 32);
        auto b = engine->lookup(k);
        if (a.has_value() != b.found ||
            (a && a->nextHop != b.nextHop))
            ++wrong;
    }

    // Full-state audit: every truth route must be in the engine and
    // vice versa — a lost or phantom update fails the run.
    size_t lost = 0, phantom = 0;
    for (const auto &r : truth.routes()) {
        auto nh = engine->find(r.prefix);
        if (!nh || *nh != r.nextHop)
            ++lost;
    }
    RoutingTable exported = engine->exportTable();
    for (const auto &r : exported.routes()) {
        auto nh = truth.find(r.prefix);
        if (!nh || *nh != r.nextHop)
            ++phantom;
    }

    RobustnessCounters rc = engine->robustness();
    std::printf("Post-replay oracle audit: %zu keys, %zu mismatches; "
                "route count %zu vs truth %zu (%zu lost, %zu "
                "phantom)\n",
                keys.size(), wrong, engine->routeCount(),
                truth.size(), lost, phantom);
    std::printf("Robustness: %llu rejected, %llu TCAM overflows, "
                "%llu slow-path diversions (%zu resident), %llu "
                "drains, %llu setup retries, %llu parity "
                "recoveries\n",
                static_cast<unsigned long long>(rc.rejectedUpdates),
                static_cast<unsigned long long>(rc.tcamOverflows),
                static_cast<unsigned long long>(rc.slowPathInserts),
                engine->slowPathCount(),
                static_cast<unsigned long long>(rc.slowPathDrains),
                static_cast<unsigned long long>(rc.setupRetries),
                static_cast<unsigned long long>(rc.parityRecoveries));
    std::printf("Health: end state %s, %llu transitions, %llu "
                "samples; dirty %zu now / %zu peak, %zu purged, "
                "%llu budget-evicted, %llu suppressed flaps\n",
                hmon.stateName(),
                static_cast<unsigned long long>(hmon.transitions()),
                static_cast<unsigned long long>(hmon.samples()),
                engine->dirtyCount(), engine->dirtyPeak(), purged,
                static_cast<unsigned long long>(rc.dirtyEvictions),
                static_cast<unsigned long long>(rc.suppressedFlaps));
    if (session.enabled())
        hmon.publish(session.registry());
    if (rejected > 0)
        std::printf("Rejected updates during replay: %zu\n", rejected);
    if (journal) {
        std::printf("Journal: %llu records written, last seq %llu, "
                    "%llu I/O errors (%s)\n",
                    static_cast<unsigned long long>(
                        journal->recordsWritten()),
                    static_cast<unsigned long long>(
                        journal->lastSeq()),
                    static_cast<unsigned long long>(
                        journal->ioErrors()),
                    journal->ioHealthy() ? "healthy" : "DEGRADED");
        if (session.enabled())
            session.registry()
                .gauge("journal.io_errors")
                .set(static_cast<double>(journal->ioErrors()));
    }
    if (degraded)
        std::printf("Run ended Degraded: the journal refused further "
                    "appends; unacknowledged trace tail was not "
                    "applied\n");

    int code = (wrong == 0 && lost == 0 && phantom == 0) ? 0 : 1;
    return finishRun(session, engine.get(), code);
}
