/**
 * @file
 * BGP update-daemon scenario: replay an update trace against a live
 * Chisel engine, printing the Figure-14-style classification, the
 * sustained rate, and a correctness audit afterwards.
 *
 * Usage:
 *     example_update_replay [options] [trace.txt [table.txt]]
 *
 * Without arguments a synthetic table and an rrc00-profile trace are
 * generated.  Trace format: "A prefix nexthop" / "W prefix" lines.
 *
 * Options: --metrics-json=<path> (telemetry snapshot with per-update
 * write histograms), --trace=<path> (Chrome trace_event file).
 */

#include <cstdio>
#include <fstream>

#include "core/engine.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/report.hh"
#include "sim/stats.hh"
#include "telemetry/cli.hh"
#include "trie/binary_trie.hh"

int
main(int argc, char **argv)
{
    using namespace chisel;

    telemetry::TelemetryOptions opts =
        telemetry::TelemetryOptions::parse(argc, argv);

    RoutingTable table;
    std::vector<Update> trace;
    if (argc > 2)
        table = readTableFile(argv[2]);
    else
        table = generateScaledTable(80000, 32, 42);

    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = readTrace(in);
    } else {
        auto prof = standardTraceProfiles()[0];   // rrc00.
        UpdateTraceGenerator gen(table, prof, 32, 43);
        trace = gen.generate(300000);
    }
    std::printf("Table: %zu routes; trace: %zu updates\n",
                table.size(), trace.size());

    ChiselEngine engine(table);
    RoutingTable truth = table;

    telemetry::TelemetrySession session(opts);
    session.attach(engine);

    StopWatch watch;
    for (const auto &u : trace) {
        engine.apply(u);
        if (u.kind == UpdateKind::Announce)
            truth.add(u.prefix, u.nextHop);
        else
            truth.remove(u.prefix);
    }
    double secs = watch.seconds();

    const auto &s = engine.updateStats();
    std::printf("Applied in %.2f s: %.0f updates/sec (paper: "
                "~276K/s host-class)\n",
                secs, trace.size() / secs);
    std::printf("%-12s %10s %8s\n", "category", "count", "share");
    for (UpdateClass c : {UpdateClass::Withdraw, UpdateClass::RouteFlap,
                          UpdateClass::NextHopChange,
                          UpdateClass::AddCollapsed,
                          UpdateClass::SingletonInsert,
                          UpdateClass::Resetup, UpdateClass::Spill,
                          UpdateClass::NoOp}) {
        std::printf("%-12s %10llu %7.3f%%\n", updateClassName(c),
                    static_cast<unsigned long long>(s.count(c)),
                    100.0 * s.fraction(c));
    }
    std::printf("Incremental fraction: %.3f%% (paper: >= 99.9%%)\n",
                100.0 * s.incrementalFraction());

    // Audit the final state against the oracle.
    BinaryTrie oracle(truth);
    auto keys = generateLookupKeys(truth, 20000, 32, 0.8, 44);
    size_t wrong = 0;
    for (const auto &k : keys) {
        auto a = oracle.lookup(k, 32);
        auto b = engine.lookup(k);
        if (a.has_value() != b.found ||
            (a && a->nextHop != b.nextHop))
            ++wrong;
    }
    std::printf("Post-replay oracle audit: %zu keys, %zu mismatches; "
                "route count %zu vs truth %zu\n",
                keys.size(), wrong, engine.routeCount(),
                truth.size());

    if (session.enabled()) {
        session.engineTelemetry()->snapshot(engine);
        metricsReport(session.registry()).print();
        session.finish();
    }
    return wrong == 0 ? 0 : 1;
}
