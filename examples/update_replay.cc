/**
 * @file
 * BGP update-daemon scenario: replay an update trace against a live
 * Chisel engine, printing the Figure-14-style classification, the
 * sustained rate, and a correctness audit afterwards.
 *
 * Usage:
 *     example_update_replay [options] [trace.txt [table.txt]]
 *
 * Without arguments a synthetic table and an rrc00-profile trace are
 * generated.  Trace format: "A prefix nexthop" / "W prefix" lines.
 *
 * Options: --metrics-json=<path> (telemetry snapshot with per-update
 * write histograms), --trace=<path> (Chrome trace_event file).
 */

#include <cstdio>
#include <fstream>

#include "core/engine.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/report.hh"
#include "sim/stats.hh"
#include "telemetry/cli.hh"
#include "trie/binary_trie.hh"

int
main(int argc, char **argv)
{
    using namespace chisel;

    telemetry::TelemetryOptions opts =
        telemetry::TelemetryOptions::parse(argc, argv);

    RoutingTable table;
    std::vector<Update> trace;
    ReadReport report;
    if (argc > 2)
        table = readTableFile(argv[2], &report);
    else
        table = generateScaledTable(80000, 32, 42);

    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        trace = readTrace(in, &report);
    } else {
        auto prof = standardTraceProfiles()[0];   // rrc00.
        UpdateTraceGenerator gen(table, prof, 32, 43);
        trace = gen.generate(300000);
    }
    std::printf("Table: %zu routes; trace: %zu updates\n",
                table.size(), trace.size());
    if (!report.ok()) {
        // Lenient parse: the replay proceeds on what did parse, but
        // every offending line is reported.
        std::printf("Input: %zu malformed line(s) skipped of %zu\n",
                    report.skipped, report.lines);
        for (const auto &[lineno, reason] : report.errors)
            std::printf("  line %zu: %s\n", lineno, reason.c_str());
    }

    ChiselEngine engine(table);
    RoutingTable truth = table;

    telemetry::TelemetrySession session(opts);
    session.attach(engine);

    StopWatch watch;
    size_t rejected = 0;
    for (const auto &u : trace) {
        UpdateOutcome out = engine.apply(u);
        if (!out.ok()) {
            ++rejected;   // Refused updates don't enter the truth.
            continue;
        }
        if (u.kind == UpdateKind::Announce)
            truth.add(u.prefix, u.nextHop);
        else
            truth.remove(u.prefix);
    }
    double secs = watch.seconds();

    const auto &s = engine.updateStats();
    std::printf("Applied in %.2f s: %.0f updates/sec (paper: "
                "~276K/s host-class)\n",
                secs, trace.size() / secs);
    std::printf("%-12s %10s %8s\n", "category", "count", "share");
    for (UpdateClass c : {UpdateClass::Withdraw, UpdateClass::RouteFlap,
                          UpdateClass::NextHopChange,
                          UpdateClass::AddCollapsed,
                          UpdateClass::SingletonInsert,
                          UpdateClass::Resetup, UpdateClass::Spill,
                          UpdateClass::NoOp}) {
        std::printf("%-12s %10llu %7.3f%%\n", updateClassName(c),
                    static_cast<unsigned long long>(s.count(c)),
                    100.0 * s.fraction(c));
    }
    std::printf("Incremental fraction: %.3f%% (paper: >= 99.9%%)\n",
                100.0 * s.incrementalFraction());

    // Audit the final state against the oracle.
    BinaryTrie oracle(truth);
    auto keys = generateLookupKeys(truth, 20000, 32, 0.8, 44);
    size_t wrong = 0;
    for (const auto &k : keys) {
        auto a = oracle.lookup(k, 32);
        auto b = engine.lookup(k);
        if (a.has_value() != b.found ||
            (a && a->nextHop != b.nextHop))
            ++wrong;
    }

    // Full-state audit: every truth route must be in the engine and
    // vice versa — a lost or phantom update fails the run.
    size_t lost = 0, phantom = 0;
    for (const auto &r : truth.routes()) {
        auto nh = engine.find(r.prefix);
        if (!nh || *nh != r.nextHop)
            ++lost;
    }
    RoutingTable exported = engine.exportTable();
    for (const auto &r : exported.routes()) {
        auto nh = truth.find(r.prefix);
        if (!nh || *nh != r.nextHop)
            ++phantom;
    }

    RobustnessCounters rc = engine.robustness();
    std::printf("Post-replay oracle audit: %zu keys, %zu mismatches; "
                "route count %zu vs truth %zu (%zu lost, %zu "
                "phantom)\n",
                keys.size(), wrong, engine.routeCount(),
                truth.size(), lost, phantom);
    std::printf("Robustness: %llu rejected, %llu TCAM overflows, "
                "%llu slow-path diversions (%zu resident), %llu "
                "drains, %llu setup retries, %llu parity "
                "recoveries\n",
                static_cast<unsigned long long>(rc.rejectedUpdates),
                static_cast<unsigned long long>(rc.tcamOverflows),
                static_cast<unsigned long long>(rc.slowPathInserts),
                engine.slowPathCount(),
                static_cast<unsigned long long>(rc.slowPathDrains),
                static_cast<unsigned long long>(rc.setupRetries),
                static_cast<unsigned long long>(rc.parityRecoveries));
    if (rejected > 0)
        std::printf("Rejected updates during replay: %zu\n", rejected);

    if (session.enabled()) {
        session.engineTelemetry()->snapshot(engine);
        metricsReport(session.registry()).print();
        session.finish();
    }
    return (wrong == 0 && lost == 0 && phantom == 0) ? 0 : 1;
}
