/**
 * @file
 * Intrusion-detection scenario: the "generic content search" use of
 * the Chisel building block (Sections 1 and 8).  Loads a signature
 * dictionary, scans a synthetic traffic mix, and reports hit
 * locations and the pre-filter's screening efficiency.
 */

#include <cstdio>
#include <string>

#include "common/random.hh"
#include "match/dictionary.hh"
#include "sim/stats.hh"

int
main()
{
    using namespace chisel;
    const unsigned window = 8;
    ChiselDictionary dict(window, 1024);

    // A few recognisable "signatures" plus random binary ones.
    const char *named[] = {"/bin/sh\0", "GET /adm", "\x90\x90\x90\x90\x90\x90\x90\x90"};
    for (const char *s : named)
        dict.add(std::string_view(s, window));
    Rng rng(0x5CA7);
    for (int i = 0; i < 500; ++i) {
        std::string sig;
        for (unsigned j = 0; j < window; ++j)
            sig.push_back(static_cast<char>(rng.nextBelow(256)));
        dict.add(sig);
    }
    std::printf("Dictionary: %zu signatures of %u bytes, %.2f Kb "
                "on-chip\n",
                dict.size(), window, dict.storageBits() / 1024.0);

    // Synthetic traffic: mostly benign text, a few injected attacks.
    std::string payload;
    for (int i = 0; i < 4 * 1024 * 1024; ++i)
        payload.push_back(static_cast<char>(' ' + rng.nextBelow(95)));
    size_t attack1 = 1234567, attack2 = 3210000;
    payload.replace(attack1, window, std::string_view(named[0], window));
    payload.replace(attack2, window, std::string_view(named[2], window));

    std::vector<DictionaryMatch> matches;
    StopWatch watch;
    auto stats = dict.scan(payload, matches);
    double secs = watch.seconds();

    std::printf("Scanned %.1f MB in %.2f s (%.1f MB/s software): "
                "%llu matches, pre-filter passed %.4f%% of windows\n",
                payload.size() / 1e6, secs,
                payload.size() / 1e6 / secs,
                static_cast<unsigned long long>(stats.matches),
                100.0 * static_cast<double>(stats.bloomPositives) /
                    static_cast<double>(stats.windows));
    for (const auto &m : matches)
        std::printf("  match at offset %zu (signature %u)\n",
                    m.offset, m.patternId);

    bool found1 = false, found2 = false;
    for (const auto &m : matches) {
        found1 = found1 || m.offset == attack1;
        found2 = found2 || m.offset == attack2;
    }
    std::printf("Injected attacks detected: %s\n",
                (found1 && found2) ? "both" : "MISSED");
    return (found1 && found2) ? 0 : 1;
}
