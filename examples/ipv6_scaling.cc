/**
 * @file
 * IPv6 scenario: the transition the paper motivates.  Builds Chisel
 * over a synthetic IPv6 table and contrasts it with trie behaviour:
 * storage roughly doubles while lookup latency stays at 4 accesses,
 * whereas Tree Bitmap's access chain quadruples with the key width.
 *
 * Usage: example_ipv6_scaling [prefix_count]
 */

#include <cstdio>
#include <cstdlib>

#include "core/engine.hh"
#include "core/storage_model.hh"
#include "route/synth.hh"
#include "sim/stats.hh"
#include "trie/tree_bitmap.hh"

int
main(int argc, char **argv)
{
    using namespace chisel;
    size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    SynthProfile prof;
    prof.name = "v6-demo";
    prof.prefixes = n;
    prof.keyWidth = 128;
    prof.lengthWeights = defaultIpv4LengthWeights();
    prof.seed = 6;
    RoutingTable v6 = generateTable(prof);
    std::printf("Synthesised %zu IPv6 prefixes (lengths follow the "
                "doubled-IPv4 model of Section 6.4.2)\n", v6.size());

    ChiselConfig cfg;
    cfg.keyWidth = 128;
    StopWatch watch;
    ChiselEngine engine(v6, cfg);
    std::printf("Chisel/v6 built in %.2f s: %zu sub-cells, "
                "4 memory accesses per lookup (width-independent)\n",
                watch.seconds(), engine.cellCount());

    TreeBitmap tb(v6, treeBitmapIpv6Config());
    auto keys = generateLookupKeys(v6, 20000, 128, 0.85, 7);
    ScalarStat tb_acc("tb-accesses");
    size_t hits = 0;
    for (const auto &k : keys) {
        auto r = tb.lookup(k);
        if (r.found) {
            tb_acc.sample(r.memoryAccesses);
            ++hits;
        }
        auto c = engine.lookup(k);
        if (r.found != c.found ||
            (r.found && r.nextHop != c.nextHop)) {
            std::printf("DIVERGENCE from Tree Bitmap — bug!\n");
            return 1;
        }
    }
    std::printf("Cross-check vs Tree Bitmap: %zu keys agree "
                "(%zu hits)\n", keys.size(), hits);
    std::printf("Tree Bitmap accesses per hit: mean %.1f, worst %u "
                "(paper: ~40 for IPv6) — Chisel stays at 4\n",
                tb_acc.mean(), tb.maxAccesses());

    StorageParams p4, p6;
    p6.keyWidth = 128;
    auto b4 = chiselWorstCase(n, p4);
    auto b6 = chiselWorstCase(n, p6);
    std::printf("Worst-case storage at n=%zu: IPv4 %.2f Mb vs IPv6 "
                "%.2f Mb (%.2fx for a 4x wider key)\n",
                n, b4.totalMbits(), b6.totalMbits(),
                static_cast<double>(b6.totalBits()) / b4.totalBits());
    return 0;
}
