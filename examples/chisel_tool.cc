/**
 * @file
 * chisel_tool: a small command-line utility around the library —
 * generate synthetic tables and traces, inspect tables, and run a
 * lookup benchmark, so downstream users can produce and exchange
 * workload files without writing code.
 *
 * Usage:
 *   example_chisel_tool gen-table  <prefixes> <out.txt> [seed] [v6]
 *   example_chisel_tool gen-trace  <table.txt> <updates> <out.txt> [seed]
 *   example_chisel_tool info       <table.txt>
 *   example_chisel_tool lookup     <table.txt> <queries>
 *   example_chisel_tool replay     <table.txt> <trace.txt> [journal]
 *   example_chisel_tool snapshot   <table.txt> <image>
 *   example_chisel_tool recover    <table.txt> <journal|-> [image]
 *   example_chisel_tool journal-dump <journal>
 *
 * RPC service subcommands (docs/service.md; strict --flag parsing):
 *   example_chisel_tool serve    --port=N [--table=f] [--journal=f] ...
 *   example_chisel_tool lookup   --port=N --key=ADDR [--key=ADDR ...]
 *   example_chisel_tool announce --port=N --prefix=CIDR --next-hop=N
 *   example_chisel_tool withdraw --port=N --prefix=CIDR
 * (`lookup` with positional arguments stays the local benchmark.)
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "concurrent/concurrent_engine.hh"
#include "core/engine.hh"
#include "health/monitor.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "persist/journal.hh"
#include "persist/recovery.hh"
#include "persist/snapshot.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/stats.hh"
#include "telemetry/cli.hh"

namespace {

using namespace chisel;

int
usage()
{
    std::fprintf(stderr,
        "usage:\n"
        "  chisel_tool gen-table <prefixes> <out.txt> [seed] [v6]\n"
        "  chisel_tool gen-trace <table.txt> <updates> <out.txt> [seed]\n"
        "  chisel_tool info      <table.txt>\n"
        "  chisel_tool lookup    <table.txt> <queries>\n"
        "  chisel_tool replay    <table.txt> <trace.txt> [journal]\n"
        "  chisel_tool snapshot  <table.txt> <image>\n"
        "  chisel_tool recover   <table.txt> <journal|-> [image]\n"
        "  chisel_tool journal-dump <journal>\n"
        "service subcommands (--help on each for flags):\n"
        "  chisel_tool serve    --port=N [--table=f] [--journal=f]\n"
        "  chisel_tool lookup   --port=N --key=ADDR [--key=ADDR ...]\n"
        "  chisel_tool announce --port=N --prefix=CIDR --next-hop=N\n"
        "  chisel_tool withdraw --port=N --prefix=CIDR\n");
    return 2;
}

ChiselConfig
configFor(const RoutingTable &table)
{
    ChiselConfig cfg;
    cfg.keyWidth = table.maxLength() > 32 ? 128 : 32;
    return cfg;
}

int
genTable(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    size_t n = std::strtoull(argv[2], nullptr, 10);
    uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    bool v6 = argc > 5 && std::strcmp(argv[5], "v6") == 0;

    RoutingTable table = generateScaledTable(n, v6 ? 128 : 32, seed);
    std::ofstream out(argv[3]);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", argv[3]);
        return 1;
    }
    writeTable(out, table);
    std::printf("wrote %zu routes to %s\n", table.size(), argv[3]);
    return 0;
}

int
genTrace(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    size_t n = std::strtoull(argv[3], nullptr, 10);
    uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    unsigned width = table.maxLength() > 32 ? 128 : 32;
    UpdateTraceGenerator gen(table, TraceProfile{}, width, seed);
    auto trace = gen.generate(n);
    std::ofstream out(argv[4]);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", argv[4]);
        return 1;
    }
    writeTrace(out, trace);
    std::printf("wrote %zu updates to %s\n", trace.size(), argv[4]);
    return 0;
}

int
info(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    std::printf("%zu routes, max length %u\n", table.size(),
                table.maxLength());
    auto hist = table.lengthHistogram();
    for (unsigned l = 0; l <= table.maxLength(); ++l) {
        if (hist[l])
            std::printf("  /%-3u %zu\n", l, hist[l]);
    }
    ChiselConfig cfg;
    cfg.keyWidth = table.maxLength() > 32 ? 128 : 32;
    ChiselEngine engine(table, cfg);
    auto s = engine.storage();
    std::printf("Chisel plan %s: %.2f Mbits on-chip, %zu spilled\n",
                engine.plan().str().c_str(), s.totalMbits(),
                engine.spillCount());
    return 0;
}

int
lookupBench(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    size_t queries = std::strtoull(argv[3], nullptr, 10);

    unsigned width = table.maxLength() > 32 ? 128 : 32;
    ChiselConfig cfg;
    cfg.keyWidth = width;
    ChiselEngine engine(table, cfg);
    auto keys = generateLookupKeys(table, 65536, width, 0.9, 7);

    StopWatch watch;
    uint64_t hits = 0;
    for (size_t i = 0; i < queries; ++i)
        hits += engine.lookup(keys[i & 65535]).found;
    double secs = watch.seconds();
    std::printf("%zu lookups in %.2f s: %.2f Mlps, %.1f%% hits\n",
                queries, secs, queries / secs / 1e6,
                100.0 * hits / queries);
    return 0;
}

int
replay(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    // Lenient parse: malformed lines are reported and skipped so one
    // bad byte in a long feed doesn't abort the replay.
    ReadReport report;
    RoutingTable table = readTableFile(argv[2], &report);
    std::ifstream in(argv[3]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[3]);
        return 1;
    }
    auto trace = readTrace(in, &report);
    if (!report.ok())
        std::printf("input: %zu malformed line(s) skipped of %zu\n",
                    report.skipped, report.lines);

    ChiselConfig cfg = configFor(table);
    ChiselEngine engine(table, cfg);

    // Optional write-ahead journal: each update is made durable
    // before it mutates the engine, so "recover" can rebuild this
    // exact state after a crash (docs/persistence.md).
    std::unique_ptr<persist::UpdateJournal> journal;
    if (argc > 4)
        journal = std::make_unique<persist::UpdateJournal>(
            argv[4], configFingerprint(cfg));

    StopWatch watch;
    for (const auto &u : trace) {
        uint64_t seq = journal ? journal->append(u) : 0;
        UpdateOutcome out = engine.apply(u);
        if (journal)
            journal->appendOutcome(seq, out);
    }
    if (journal)
        journal->sync();
    double secs = watch.seconds();
    const auto &s = engine.updateStats();
    std::printf("%zu updates in %.2f s (%.0f/s), incremental "
                "%.3f%%\n",
                trace.size(), secs, trace.size() / secs,
                100.0 * s.incrementalFraction());
    if (journal)
        std::printf("journaled %llu records to %s\n",
                    static_cast<unsigned long long>(
                        journal->recordsWritten()),
                    argv[4]);
    return 0;
}

int
snapshotCmd(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    ChiselConfig cfg = configFor(table);
    ChiselEngine engine(table, cfg);
    size_t bytes = persist::saveSnapshot(argv[3], engine, 0);
    std::printf("wrote %zu-byte snapshot of %zu routes to %s "
                "(%llu Bloomier setups avoided on warm restart)\n",
                bytes, engine.routeCount(), argv[3],
                static_cast<unsigned long long>(
                    engine.bloomierSetups()));
    return 0;
}

int
recoverCmd(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    persist::RecoveryOptions opts;
    opts.initialTable = readTableFile(argv[2]);
    opts.config = configFor(opts.initialTable);
    if (std::strcmp(argv[3], "-") != 0)
        opts.journalPath = argv[3];
    if (argc > 4)
        opts.snapshotPath = argv[4];

    persist::RecoveryReport rec = persist::recoverEngine(opts);
    std::printf("source=%s fallbacks=%llu journal-records=%llu "
                "replayed=%llu last-seq=%llu torn-tail=%s\n",
                persist::recoverySourceName(rec.source),
                static_cast<unsigned long long>(rec.fallbacks),
                static_cast<unsigned long long>(rec.journalRecords),
                static_cast<unsigned long long>(rec.recordsReplayed),
                static_cast<unsigned long long>(rec.lastSeq),
                rec.journalTornTail ? "yes" : "no");
    if (!rec.snapshotError.empty())
        std::printf("snapshot unusable: %s\n",
                    rec.snapshotError.c_str());
    if (!rec.previousSnapshotError.empty())
        std::printf("previous snapshot unusable: %s\n",
                    rec.previousSnapshotError.c_str());
    std::printf("%zu routes recovered, %llu Bloomier setups paid\n",
                rec.engine->routeCount(),
                static_cast<unsigned long long>(
                    rec.engine->bloomierSetups()));
    std::printf("audit: %s (%llu missing, %llu mismatched, %llu "
                "phantom)\n",
                rec.auditPassed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rec.auditMissing),
                static_cast<unsigned long long>(rec.auditMismatched),
                static_cast<unsigned long long>(rec.auditPhantom));
    return rec.auditPassed ? 0 : 1;
}

int
journalDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    // Fingerprint 0 skips the identity check: a dump tool inspects
    // whatever is on disk, it does not enforce whose journal it is.
    persist::JournalScan scan = persist::scanJournal(argv[2], 0);
    if (!scan.headerOk) {
        std::fprintf(stderr, "unreadable journal: %s\n",
                     scan.error.c_str());
        return 1;
    }
    std::printf("journal %s: fingerprint=%016llx records=%zu "
                "last-seq=%llu torn-tail=%s\n",
                argv[2],
                static_cast<unsigned long long>(scan.fingerprint),
                scan.records.size(),
                static_cast<unsigned long long>(scan.lastSeq),
                scan.truncatedTail ? "yes" : "no");
    for (const persist::JournalRecord &rec : scan.records) {
        unsigned long long seq = rec.seq;
        switch (rec.type) {
          case persist::JournalRecord::Type::Update: {
            const char *kind =
                rec.update.kind == UpdateKind::Announce ? "announce"
                : rec.update.kind == UpdateKind::Expire ? "expire"
                                                        : "withdraw";
            if (rec.update.kind == UpdateKind::Announce)
                std::printf("%8llu  update     %-8s %s -> %u ttl=%u\n",
                            seq, kind, rec.update.prefix.str().c_str(),
                            rec.update.nextHop, rec.update.ttlMs);
            else
                std::printf("%8llu  update     %-8s %s\n", seq, kind,
                            rec.update.prefix.str().c_str());
            break;
          }
          case persist::JournalRecord::Type::Outcome:
            std::printf("%8llu  outcome    %s status=%u retries=%u "
                        "overflows=%u slowpath=%u/%u parity=%u\n",
                        seq,
                        updateClassName(
                            static_cast<UpdateClass>(rec.cls)),
                        rec.status, rec.setupRetries,
                        rec.tcamOverflows, rec.slowPathInserts,
                        rec.slowPathRejections, rec.parityRecoveries);
            break;
          case persist::JournalRecord::Type::SnapshotMark:
            std::printf("%8llu  snapshot-mark\n", seq);
            break;
          case persist::JournalRecord::Type::Housekeeping:
            std::printf("%8llu  housekeep  %s\n", seq,
                        rec.housekeeping ==
                                persist::JournalRecord::
                                    HousekeepingKind::PurgeDirty
                            ? "purge-dirty"
                            : "?");
            break;
          case persist::JournalRecord::Type::ResizeMark:
            std::printf("%8llu  resize-mark spill=%zu slowpath=%zu "
                        "min-cell=%zu dirty-budget=%zu ttl-default=%llu\n",
                        seq, rec.resizeConfig.spillCapacity,
                        rec.resizeConfig.slowPathCapacity,
                        rec.resizeConfig.minCellCapacity,
                        rec.resizeConfig.dirtyBudgetPerCell,
                        static_cast<unsigned long long>(
                            rec.resizeConfig.defaultTtlMs));
            break;
        }
    }
    return 0;
}

// ---- RPC service subcommands (docs/service.md) -----------------------

net::ChiselService *g_serveService = nullptr;

extern "C" void
serveSignal(int)
{
    // Async-signal-safe: requestDrain is an atomic store plus one
    // write(2) to the service's self-pipe.
    if (g_serveService != nullptr)
        g_serveService->requestDrain();
}

int
serveCmd(int argc, char **argv)
{
    std::string tablePath, journalPath, snapshotPath, portFile;
    uint64_t port = 0, induceDegradedMs = 0;
    net::ServiceOptions sopts;
    uint64_t maxConnections = sopts.maxConnections;
    uint64_t maxOutputBytes = sopts.maxOutputBytes;
    uint64_t idleTimeoutMs = sopts.idleTimeoutMs;
    uint64_t writeStallMs = sopts.writeStallMs;
    uint64_t drainDeadlineMs = sopts.drainDeadlineMs;

    telemetry::FlagTable flags(
        "chisel_tool serve",
        "Serve lookup/update RPCs until SIGTERM drains gracefully");
    flags.u64Flag("port", "loopback port to bind (0 = ephemeral)",
                  &port)
        .stringFlag("table", "initial routing table file", &tablePath)
        .stringFlag("journal",
                    "journal path: recover from it, then append "
                    "(the durable-ack gate)",
                    &journalPath)
        .stringFlag("snapshot",
                    "snapshot path: recovery input and drain output",
                    &snapshotPath)
        .stringFlag("port-file",
                    "write the bound port here once listening",
                    &portFile)
        .u64Flag("max-connections", "refuse connections past this",
                 &maxConnections)
        .u64Flag("max-output-bytes",
                 "per-connection reply-queue bound (backpressure)",
                 &maxOutputBytes)
        .u64Flag("idle-timeout-ms", "drop idle connections after this",
                 &idleTimeoutMs)
        .u64Flag("write-stall-ms",
                 "drop connections whose writes make no progress",
                 &writeStallMs)
        .u64Flag("drain-deadline-ms", "graceful-drain flush budget",
                 &drainDeadlineMs)
        .u64Flag("induce-degraded-ms",
                 "shed demo: serve this long with Degraded induced",
                 &induceDegradedMs);
    // Telemetry flags (--metrics-json, --introspect-port, ...) are
    // stripped leniently first; the rest must parse strictly.
    telemetry::TelemetryOptions topts =
        telemetry::TelemetryOptions::parse(argc, argv);
    if (!flags.parseStrict(argc, argv))
        return flags.helpRequested() ? 0 : 2;

    // Boot state: recover when any durable input is named, else the
    // table file, else empty.
    RoutingTable table;
    ChiselConfig config;
    if (!journalPath.empty() || !snapshotPath.empty()) {
        persist::RecoveryOptions ropts;
        ropts.journalPath = journalPath;
        ropts.snapshotPath = snapshotPath;
        if (!tablePath.empty())
            ropts.initialTable = readTableFile(tablePath);
        ropts.config = configFor(ropts.initialTable);
        persist::RecoveryReport rec = persist::recoverEngine(ropts);
        std::printf("recovered %zu routes (source=%s, last-seq=%llu)\n",
                    rec.engine->routeCount(),
                    persist::recoverySourceName(rec.source),
                    static_cast<unsigned long long>(rec.lastSeq));
        table = rec.engine->exportTable();
        config = rec.engine->config();
    } else if (!tablePath.empty()) {
        table = readTableFile(tablePath);
        config = configFor(table);
    }

    std::unique_ptr<persist::UpdateJournal> journal;
    if (!journalPath.empty())
        journal = std::make_unique<persist::UpdateJournal>(
            journalPath, configFingerprint(config));

    telemetry::TelemetrySession session(topts);
    concurrent::ConcurrentChisel engine(table, config);

    sopts.port = static_cast<uint16_t>(port);
    sopts.maxConnections = maxConnections;
    sopts.maxOutputBytes = maxOutputBytes;
    sopts.idleTimeoutMs = static_cast<int>(idleTimeoutMs);
    sopts.writeStallMs = static_cast<int>(writeStallMs);
    sopts.drainDeadlineMs = static_cast<int>(drainDeadlineMs);
    sopts.drainSnapshotPath = snapshotPath;
    if (session.enabled())
        sopts.metrics = &session.registry();
    session.attachIntrospection(engine);
    net::ChiselService service(engine, journal.get(), sopts);
    if (!service.start())
        return 1;
    if (induceDegradedMs > 0)
        service.induceHealth(health::HealthState::Degraded,
                             static_cast<int>(induceDegradedMs));
    if (!portFile.empty()) {
        std::ofstream pf(portFile);
        pf << service.port() << "\n";
    }

    g_serveService = &service;
    std::signal(SIGTERM, serveSignal);
    std::signal(SIGINT, serveSignal);
    std::printf("serving %zu routes on 127.0.0.1:%u "
                "(SIGTERM drains)\n",
                engine.routeCount(), service.port());
    std::fflush(stdout);

    while (service.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    g_serveService = nullptr;
    service.stop();

    net::ServiceStats s = service.stats();
    std::printf("served %llu requests (%llu lookup keys, %llu updates "
                "applied, %llu acked, %llu unacked, %llu shed, "
                "%llu bad)\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.lookupKeys),
                static_cast<unsigned long long>(s.updatesApplied),
                static_cast<unsigned long long>(s.acked),
                static_cast<unsigned long long>(s.unacked),
                static_cast<unsigned long long>(s.shedUpdates),
                static_cast<unsigned long long>(s.badRequests));
    std::printf("drain %s\n", s.drained ? "flushed every reply"
                                        : "hit its deadline");
    session.finish();
    return 0;
}

/** Parse an address (or CIDR) into a lookup key. */
bool
parseKeyToken(const std::string &token, Key128 &key)
{
    try {
        std::string cidr = token;
        if (cidr.find('/') == std::string::npos)
            cidr += cidr.find(':') != std::string::npos ? "/128"
                                                        : "/32";
        Prefix p = cidr.find(':') != std::string::npos
                       ? Prefix::fromCidr6(cidr)
                       : Prefix::fromCidr(cidr);
        key = p.bits();
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bad key %s: %s\n", token.c_str(),
                     e.what());
        return false;
    }
}

bool
parsePrefixFlag(const std::string &token, Prefix &prefix)
{
    try {
        prefix = token.find(':') != std::string::npos
                     ? Prefix::fromCidr6(token)
                     : Prefix::fromCidr(token);
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bad prefix %s: %s\n", token.c_str(),
                     e.what());
        return false;
    }
}

void
registerClientFlags(telemetry::FlagTable &flags, uint64_t *port,
                    uint64_t *timeout_ms, uint64_t *attempts)
{
    flags.u64Flag("port", "loopback port of the service", port)
        .u64Flag("timeout-ms", "whole-call deadline spanning retries",
                 timeout_ms)
        .u64Flag("attempts", "attempts per call (1 = no retry)",
                 attempts);
}

net::ClientOptions
clientOptionsFrom(uint64_t port, uint64_t timeout_ms,
                  uint64_t attempts)
{
    net::ClientOptions copts;
    copts.port = static_cast<uint16_t>(port);
    copts.requestTimeoutMs = static_cast<int>(timeout_ms);
    copts.maxAttempts = static_cast<int>(attempts);
    return copts;
}

int
rpcLookup(int argc, char **argv)
{
    uint64_t port = 0, timeoutMs = 1000, attempts = 4;
    std::vector<Key128> keys;
    std::vector<std::string> tokens;
    telemetry::FlagTable flags(
        "chisel_tool lookup",
        "Batched lookup RPC against a running serve instance");
    registerClientFlags(flags, &port, &timeoutMs, &attempts);
    flags.flag("key", "ADDR",
               "address (or CIDR) to look up; repeatable",
               [&](const std::string &v) {
                   Key128 k;
                   if (!parseKeyToken(v, k))
                       return false;
                   keys.push_back(k);
                   tokens.push_back(v);
                   return true;
               });
    if (!flags.parseStrict(argc, argv))
        return flags.helpRequested() ? 0 : 2;
    if (keys.empty() || port == 0) {
        std::fprintf(stderr, "need --port and at least one --key\n");
        return 2;
    }

    net::ServiceClient client(
        clientOptionsFrom(port, timeoutMs, attempts));
    net::LookupCallResult r = client.lookup(keys);
    if (r.status != net::CallStatus::Ok) {
        std::fprintf(stderr, "lookup failed: %s\n",
                     net::callStatusName(r.status));
        return 1;
    }
    for (size_t i = 0; i < r.results.size(); ++i) {
        const net::WireLookup &w = r.results[i];
        if (w.found)
            std::printf("%s -> next-hop %u (matched /%u)\n",
                        tokens[i].c_str(), w.nextHop,
                        w.matchedLength);
        else
            std::printf("%s -> no route\n", tokens[i].c_str());
    }
    std::printf("generation %llu\n",
                static_cast<unsigned long long>(r.generation));
    return 0;
}

int
rpcUpdate(int argc, char **argv, UpdateKind kind)
{
    const bool announce = kind == UpdateKind::Announce;
    uint64_t port = 0, timeoutMs = 1000, attempts = 4;
    uint64_t nextHop = 0, ttlMs = 0;
    std::string prefixToken;
    telemetry::FlagTable flags(
        announce ? "chisel_tool announce" : "chisel_tool withdraw",
        announce ? "Announce a route through the RPC service"
                 : "Withdraw a route through the RPC service");
    registerClientFlags(flags, &port, &timeoutMs, &attempts);
    flags.stringFlag("prefix", "CIDR prefix", &prefixToken);
    if (announce)
        flags.u64Flag("next-hop", "next hop id", &nextHop)
            .u64Flag("ttl-ms", "route TTL (0 = config default)",
                     &ttlMs);
    if (!flags.parseStrict(argc, argv))
        return flags.helpRequested() ? 0 : 2;
    if (prefixToken.empty() || port == 0) {
        std::fprintf(stderr, "need --port and --prefix\n");
        return 2;
    }

    Update u;
    u.kind = kind;
    if (!parsePrefixFlag(prefixToken, u.prefix))
        return 2;
    u.nextHop = static_cast<NextHop>(nextHop);
    u.ttlMs = static_cast<uint32_t>(ttlMs);

    net::ServiceClient client(
        clientOptionsFrom(port, timeoutMs, attempts));
    net::UpdateCallResult r = client.update({u});
    if (r.status != net::CallStatus::Ok) {
        std::fprintf(stderr, "%s failed: %s\n",
                     announce ? "announce" : "withdraw",
                     net::callStatusName(r.status));
        return 1;
    }
    const net::WireAck &a = r.acks.at(0);
    std::printf("%s %s: %s (seq %llu, durable through %llu)\n",
                announce ? "announce" : "withdraw",
                prefixToken.c_str(),
                a.acked ? "acked durable" : "NOT acked",
                static_cast<unsigned long long>(a.seq),
                static_cast<unsigned long long>(r.durableSeq));
    return a.acked ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "gen-table") == 0)
        return genTable(argc, argv);
    if (std::strcmp(argv[1], "gen-trace") == 0)
        return genTrace(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return info(argc, argv);
    if (std::strcmp(argv[1], "lookup") == 0) {
        // Flag-style arguments select the RPC client; positional
        // arguments keep the historic local benchmark.
        if (argc > 2 && std::strncmp(argv[2], "--", 2) == 0)
            return rpcLookup(argc, argv);
        return lookupBench(argc, argv);
    }
    if (std::strcmp(argv[1], "serve") == 0)
        return serveCmd(argc, argv);
    if (std::strcmp(argv[1], "announce") == 0)
        return rpcUpdate(argc, argv, UpdateKind::Announce);
    if (std::strcmp(argv[1], "withdraw") == 0)
        return rpcUpdate(argc, argv, UpdateKind::Withdraw);
    if (std::strcmp(argv[1], "replay") == 0)
        return replay(argc, argv);
    if (std::strcmp(argv[1], "snapshot") == 0)
        return snapshotCmd(argc, argv);
    if (std::strcmp(argv[1], "recover") == 0)
        return recoverCmd(argc, argv);
    if (std::strcmp(argv[1], "journal-dump") == 0)
        return journalDump(argc, argv);
    return usage();
}
