/**
 * @file
 * chisel_tool: a small command-line utility around the library —
 * generate synthetic tables and traces, inspect tables, and run a
 * lookup benchmark, so downstream users can produce and exchange
 * workload files without writing code.
 *
 * Usage:
 *   example_chisel_tool gen-table  <prefixes> <out.txt> [seed] [v6]
 *   example_chisel_tool gen-trace  <table.txt> <updates> <out.txt> [seed]
 *   example_chisel_tool info       <table.txt>
 *   example_chisel_tool lookup     <table.txt> <queries>
 *   example_chisel_tool replay     <table.txt> <trace.txt> [journal]
 *   example_chisel_tool snapshot   <table.txt> <image>
 *   example_chisel_tool recover    <table.txt> <journal|-> [image]
 *   example_chisel_tool journal-dump <journal>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/engine.hh"
#include "persist/journal.hh"
#include "persist/recovery.hh"
#include "persist/snapshot.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "route/updates.hh"
#include "sim/stats.hh"

namespace {

using namespace chisel;

int
usage()
{
    std::fprintf(stderr,
        "usage:\n"
        "  chisel_tool gen-table <prefixes> <out.txt> [seed] [v6]\n"
        "  chisel_tool gen-trace <table.txt> <updates> <out.txt> [seed]\n"
        "  chisel_tool info      <table.txt>\n"
        "  chisel_tool lookup    <table.txt> <queries>\n"
        "  chisel_tool replay    <table.txt> <trace.txt> [journal]\n"
        "  chisel_tool snapshot  <table.txt> <image>\n"
        "  chisel_tool recover   <table.txt> <journal|-> [image]\n"
        "  chisel_tool journal-dump <journal>\n");
    return 2;
}

ChiselConfig
configFor(const RoutingTable &table)
{
    ChiselConfig cfg;
    cfg.keyWidth = table.maxLength() > 32 ? 128 : 32;
    return cfg;
}

int
genTable(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    size_t n = std::strtoull(argv[2], nullptr, 10);
    uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    bool v6 = argc > 5 && std::strcmp(argv[5], "v6") == 0;

    RoutingTable table = generateScaledTable(n, v6 ? 128 : 32, seed);
    std::ofstream out(argv[3]);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", argv[3]);
        return 1;
    }
    writeTable(out, table);
    std::printf("wrote %zu routes to %s\n", table.size(), argv[3]);
    return 0;
}

int
genTrace(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    size_t n = std::strtoull(argv[3], nullptr, 10);
    uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    unsigned width = table.maxLength() > 32 ? 128 : 32;
    UpdateTraceGenerator gen(table, TraceProfile{}, width, seed);
    auto trace = gen.generate(n);
    std::ofstream out(argv[4]);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", argv[4]);
        return 1;
    }
    writeTrace(out, trace);
    std::printf("wrote %zu updates to %s\n", trace.size(), argv[4]);
    return 0;
}

int
info(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    std::printf("%zu routes, max length %u\n", table.size(),
                table.maxLength());
    auto hist = table.lengthHistogram();
    for (unsigned l = 0; l <= table.maxLength(); ++l) {
        if (hist[l])
            std::printf("  /%-3u %zu\n", l, hist[l]);
    }
    ChiselConfig cfg;
    cfg.keyWidth = table.maxLength() > 32 ? 128 : 32;
    ChiselEngine engine(table, cfg);
    auto s = engine.storage();
    std::printf("Chisel plan %s: %.2f Mbits on-chip, %zu spilled\n",
                engine.plan().str().c_str(), s.totalMbits(),
                engine.spillCount());
    return 0;
}

int
lookupBench(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    size_t queries = std::strtoull(argv[3], nullptr, 10);

    unsigned width = table.maxLength() > 32 ? 128 : 32;
    ChiselConfig cfg;
    cfg.keyWidth = width;
    ChiselEngine engine(table, cfg);
    auto keys = generateLookupKeys(table, 65536, width, 0.9, 7);

    StopWatch watch;
    uint64_t hits = 0;
    for (size_t i = 0; i < queries; ++i)
        hits += engine.lookup(keys[i & 65535]).found;
    double secs = watch.seconds();
    std::printf("%zu lookups in %.2f s: %.2f Mlps, %.1f%% hits\n",
                queries, secs, queries / secs / 1e6,
                100.0 * hits / queries);
    return 0;
}

int
replay(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    // Lenient parse: malformed lines are reported and skipped so one
    // bad byte in a long feed doesn't abort the replay.
    ReadReport report;
    RoutingTable table = readTableFile(argv[2], &report);
    std::ifstream in(argv[3]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[3]);
        return 1;
    }
    auto trace = readTrace(in, &report);
    if (!report.ok())
        std::printf("input: %zu malformed line(s) skipped of %zu\n",
                    report.skipped, report.lines);

    ChiselConfig cfg = configFor(table);
    ChiselEngine engine(table, cfg);

    // Optional write-ahead journal: each update is made durable
    // before it mutates the engine, so "recover" can rebuild this
    // exact state after a crash (docs/persistence.md).
    std::unique_ptr<persist::UpdateJournal> journal;
    if (argc > 4)
        journal = std::make_unique<persist::UpdateJournal>(
            argv[4], configFingerprint(cfg));

    StopWatch watch;
    for (const auto &u : trace) {
        uint64_t seq = journal ? journal->append(u) : 0;
        UpdateOutcome out = engine.apply(u);
        if (journal)
            journal->appendOutcome(seq, out);
    }
    if (journal)
        journal->sync();
    double secs = watch.seconds();
    const auto &s = engine.updateStats();
    std::printf("%zu updates in %.2f s (%.0f/s), incremental "
                "%.3f%%\n",
                trace.size(), secs, trace.size() / secs,
                100.0 * s.incrementalFraction());
    if (journal)
        std::printf("journaled %llu records to %s\n",
                    static_cast<unsigned long long>(
                        journal->recordsWritten()),
                    argv[4]);
    return 0;
}

int
snapshotCmd(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    RoutingTable table = readTableFile(argv[2]);
    ChiselConfig cfg = configFor(table);
    ChiselEngine engine(table, cfg);
    size_t bytes = persist::saveSnapshot(argv[3], engine, 0);
    std::printf("wrote %zu-byte snapshot of %zu routes to %s "
                "(%llu Bloomier setups avoided on warm restart)\n",
                bytes, engine.routeCount(), argv[3],
                static_cast<unsigned long long>(
                    engine.bloomierSetups()));
    return 0;
}

int
recoverCmd(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    persist::RecoveryOptions opts;
    opts.initialTable = readTableFile(argv[2]);
    opts.config = configFor(opts.initialTable);
    if (std::strcmp(argv[3], "-") != 0)
        opts.journalPath = argv[3];
    if (argc > 4)
        opts.snapshotPath = argv[4];

    persist::RecoveryReport rec = persist::recoverEngine(opts);
    std::printf("source=%s fallbacks=%llu journal-records=%llu "
                "replayed=%llu last-seq=%llu torn-tail=%s\n",
                persist::recoverySourceName(rec.source),
                static_cast<unsigned long long>(rec.fallbacks),
                static_cast<unsigned long long>(rec.journalRecords),
                static_cast<unsigned long long>(rec.recordsReplayed),
                static_cast<unsigned long long>(rec.lastSeq),
                rec.journalTornTail ? "yes" : "no");
    if (!rec.snapshotError.empty())
        std::printf("snapshot unusable: %s\n",
                    rec.snapshotError.c_str());
    if (!rec.previousSnapshotError.empty())
        std::printf("previous snapshot unusable: %s\n",
                    rec.previousSnapshotError.c_str());
    std::printf("%zu routes recovered, %llu Bloomier setups paid\n",
                rec.engine->routeCount(),
                static_cast<unsigned long long>(
                    rec.engine->bloomierSetups()));
    std::printf("audit: %s (%llu missing, %llu mismatched, %llu "
                "phantom)\n",
                rec.auditPassed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rec.auditMissing),
                static_cast<unsigned long long>(rec.auditMismatched),
                static_cast<unsigned long long>(rec.auditPhantom));
    return rec.auditPassed ? 0 : 1;
}

int
journalDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    // Fingerprint 0 skips the identity check: a dump tool inspects
    // whatever is on disk, it does not enforce whose journal it is.
    persist::JournalScan scan = persist::scanJournal(argv[2], 0);
    if (!scan.headerOk) {
        std::fprintf(stderr, "unreadable journal: %s\n",
                     scan.error.c_str());
        return 1;
    }
    std::printf("journal %s: fingerprint=%016llx records=%zu "
                "last-seq=%llu torn-tail=%s\n",
                argv[2],
                static_cast<unsigned long long>(scan.fingerprint),
                scan.records.size(),
                static_cast<unsigned long long>(scan.lastSeq),
                scan.truncatedTail ? "yes" : "no");
    for (const persist::JournalRecord &rec : scan.records) {
        unsigned long long seq = rec.seq;
        switch (rec.type) {
          case persist::JournalRecord::Type::Update: {
            const char *kind =
                rec.update.kind == UpdateKind::Announce ? "announce"
                : rec.update.kind == UpdateKind::Expire ? "expire"
                                                        : "withdraw";
            if (rec.update.kind == UpdateKind::Announce)
                std::printf("%8llu  update     %-8s %s -> %u ttl=%u\n",
                            seq, kind, rec.update.prefix.str().c_str(),
                            rec.update.nextHop, rec.update.ttlMs);
            else
                std::printf("%8llu  update     %-8s %s\n", seq, kind,
                            rec.update.prefix.str().c_str());
            break;
          }
          case persist::JournalRecord::Type::Outcome:
            std::printf("%8llu  outcome    %s status=%u retries=%u "
                        "overflows=%u slowpath=%u/%u parity=%u\n",
                        seq,
                        updateClassName(
                            static_cast<UpdateClass>(rec.cls)),
                        rec.status, rec.setupRetries,
                        rec.tcamOverflows, rec.slowPathInserts,
                        rec.slowPathRejections, rec.parityRecoveries);
            break;
          case persist::JournalRecord::Type::SnapshotMark:
            std::printf("%8llu  snapshot-mark\n", seq);
            break;
          case persist::JournalRecord::Type::Housekeeping:
            std::printf("%8llu  housekeep  %s\n", seq,
                        rec.housekeeping ==
                                persist::JournalRecord::
                                    HousekeepingKind::PurgeDirty
                            ? "purge-dirty"
                            : "?");
            break;
          case persist::JournalRecord::Type::ResizeMark:
            std::printf("%8llu  resize-mark spill=%zu slowpath=%zu "
                        "min-cell=%zu dirty-budget=%zu ttl-default=%llu\n",
                        seq, rec.resizeConfig.spillCapacity,
                        rec.resizeConfig.slowPathCapacity,
                        rec.resizeConfig.minCellCapacity,
                        rec.resizeConfig.dirtyBudgetPerCell,
                        static_cast<unsigned long long>(
                            rec.resizeConfig.defaultTtlMs));
            break;
        }
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "gen-table") == 0)
        return genTable(argc, argv);
    if (std::strcmp(argv[1], "gen-trace") == 0)
        return genTrace(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return info(argc, argv);
    if (std::strcmp(argv[1], "lookup") == 0)
        return lookupBench(argc, argv);
    if (std::strcmp(argv[1], "replay") == 0)
        return replay(argc, argv);
    if (std::strcmp(argv[1], "snapshot") == 0)
        return snapshotCmd(argc, argv);
    if (std::strcmp(argv[1], "recover") == 0)
        return recoverCmd(argc, argv);
    if (std::strcmp(argv[1], "journal-dump") == 0)
        return journalDump(argc, argv);
    return usage();
}
