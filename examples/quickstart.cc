/**
 * @file
 * Quickstart: build a Chisel LPM engine, look up keys, apply a few
 * BGP updates, and inspect the storage report.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/example_quickstart
 */

#include <cstdio>

#include "core/engine.hh"
#include "route/table.hh"

int
main()
{
    using namespace chisel;

    // 1. A routing table: prefixes with next hops.
    RoutingTable table;
    table.add(Prefix::fromCidr("10.0.0.0/8"), 1);
    table.add(Prefix::fromCidr("10.1.0.0/16"), 2);
    table.add(Prefix::fromCidr("10.1.2.0/24"), 3);
    table.add(Prefix::fromCidr("192.168.0.0/16"), 4);
    table.add(Prefix(), 0);   // Default route.

    // 2. Build the engine (paper defaults: k=3, m/n=3, stride 4).
    ChiselEngine engine(table);
    std::printf("Engine built: %zu routes, %zu sub-cells, plan %s\n",
                engine.routeCount(), engine.cellCount(),
                engine.plan().str().c_str());

    // 3. Longest-prefix-match lookups.
    auto show = [&](const char *what, uint32_t addr) {
        auto r = engine.lookup(Key128::fromIpv4(addr));
        std::printf("  %-16s -> next hop %u (matched /%u%s, "
                    "%u memory accesses)\n",
                    what, r.nextHop, r.matchedLength,
                    r.fromDefault ? " default" : "",
                    r.memoryAccesses);
    };
    show("10.1.2.3", 0x0A010203);        // /24 wins.
    show("10.1.9.9", 0x0A010909);        // /16 wins.
    show("10.200.0.1", 0x0AC80001);      // /8 wins.
    show("192.168.77.1", 0xC0A84D01);    // The /16.
    show("8.8.8.8", 0x08080808);         // Default route.

    // 4. Incremental updates, classified as in the paper's Fig. 14.
    auto cls = engine.announce(Prefix::fromCidr("10.1.3.0/24"), 7);
    std::printf("announce 10.1.3.0/24 -> %s\n", updateClassName(cls));
    cls = engine.withdraw(Prefix::fromCidr("10.1.2.0/24"));
    std::printf("withdraw 10.1.2.0/24 -> %s\n", updateClassName(cls));
    cls = engine.announce(Prefix::fromCidr("10.1.2.0/24"), 9);
    std::printf("re-announce           -> %s (dirty-bit restore)\n",
                updateClassName(cls));
    show("10.1.2.3", 0x0A010203);

    // 5. On-chip storage accounting (next hops excluded, as in §5).
    auto s = engine.storage();
    std::printf("On-chip storage: Index %.2f Kb, Filter %.2f Kb, "
                "Bit-vector %.2f Kb\n",
                s.indexBits / 1024.0, s.filterBits / 1024.0,
                s.bitvectorBits / 1024.0);
    return 0;
}
