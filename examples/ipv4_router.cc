/**
 * @file
 * A full-scale IPv4 forwarding engine: load a BGP-sized table (from
 * a file, or synthesised), build Chisel, and forward a stream of
 * packets, reporting throughput, storage, power and a correctness
 * audit against the binary-trie oracle.
 *
 * Usage:
 *     example_ipv4_router [table.txt]
 *
 * The optional table file uses the reader format ("a.b.c.d/len nh"
 * per line).  Without it, a 150K-prefix synthetic BGP table is used.
 */

#include <cstdio>

#include "core/engine.hh"
#include "core/power_model.hh"
#include "route/reader.hh"
#include "route/synth.hh"
#include "sim/stats.hh"
#include "trie/binary_trie.hh"

int
main(int argc, char **argv)
{
    using namespace chisel;

    RoutingTable table;
    if (argc > 1) {
        table = readTableFile(argv[1]);
        std::printf("Loaded %zu routes from %s\n", table.size(),
                    argv[1]);
    } else {
        SynthProfile prof;
        prof.name = "router-demo";
        prof.prefixes = 150000;
        prof.lengthWeights = defaultIpv4LengthWeights();
        prof.seed = 2006;
        table = generateTable(prof);
        std::printf("Synthesised a %zu-prefix BGP-style table\n",
                    table.size());
    }

    StopWatch build_watch;
    ChiselEngine engine(table);
    std::printf("Chisel built in %.2f s: %zu sub-cells (%s), "
                "%zu spilled to TCAM\n",
                build_watch.seconds(), engine.cellCount(),
                engine.plan().str().c_str(), engine.spillCount());

    // Forward a packet stream.
    const size_t packets = 2000000;
    auto keys = generateLookupKeys(table, 65536, 32, 0.9, 99);
    StopWatch fwd_watch;
    uint64_t hits = 0;
    for (size_t i = 0; i < packets; ++i)
        hits += engine.lookup(keys[i & 65535]).found;
    double secs = fwd_watch.seconds();
    std::printf("Forwarded %zu packets in %.2f s: %.2f Mpps "
                "(software simulation; the eDRAM design point is "
                "200 Msps), hit rate %.1f%%\n",
                packets, secs, packets / secs / 1e6,
                100.0 * hits / packets);

    // Audit a sample against the oracle.
    BinaryTrie oracle(table);
    size_t audited = 0, wrong = 0;
    for (size_t i = 0; i < 65536; ++i) {
        auto a = oracle.lookup(keys[i], 32);
        auto b = engine.lookup(keys[i]);
        ++audited;
        if (a.has_value() != b.found ||
            (a && a->nextHop != b.nextHop))
            ++wrong;
    }
    std::printf("Oracle audit: %zu keys, %zu mismatches\n", audited,
                wrong);

    // Storage and power report.
    auto s = engine.storage();
    std::printf("On-chip storage: %.2f Mbits "
                "(Index %.2f + Filter %.2f + Bit-vector %.2f)\n",
                s.totalMbits(), s.indexBits / (1024.0 * 1024),
                s.filterBits / (1024.0 * 1024),
                s.bitvectorBits / (1024.0 * 1024));

    ChiselPowerModel power;
    StorageParams sp;
    auto p = power.worstCase(table.size(), sp, 200.0);
    std::printf("Worst-case power at 200 Msps (130nm eDRAM): "
                "%.2f W\n", p.totalWatts());
    return wrong == 0 ? 0 : 1;
}
